"""Interrupted-sweep integration: pooled run, kill, resume, identical result.

The interruption is realized as a bounded worker budget (``max_trials``),
which exercises exactly the state a SIGKILL leaves behind: a trial cache
holding the completed results and a checkpoint manifest marking them — the
runner writes the cache entry *before* the completion mark, so the manifest
can trail the cache but never lead it.
"""

from repro.runner import (
    SweepCheckpoint,
    SweepRunner,
    SweepSpec,
    checkpoint_path_for,
    seed_range,
)
from repro.simulator import SimulationConfig


def make_spec() -> SweepSpec:
    return SweepSpec(
        base=SimulationConfig(num_servers=9, num_clients=8, num_requests=150, utilization=0.6),
        grid={"strategy": ("C3", "LOR", "RR")},
        seeds=seed_range(4),
    )


class TestInterruptedPooledSweep:
    def test_resume_reexecutes_nothing_and_reproduces_the_digest(self, tmp_path):
        spec = make_spec()
        cache_dir = tmp_path / "cache"
        manifest = checkpoint_path_for(cache_dir, spec.key)

        # Leg 1: pooled sweep interrupted after a 5-trial budget.
        runner = SweepRunner(max_workers=2, cache_dir=cache_dir)
        partial = runner.run(
            spec, checkpoint=SweepCheckpoint.open(spec, manifest), max_trials=5
        )
        assert not partial.complete
        assert partial.executed == 5 and len(partial.trials) == 5
        assert SweepCheckpoint.load(manifest).describe_progress() == "5/12 trials complete"

        # Leg 2: a fresh runner and a freshly loaded manifest (what a new
        # process sees) finish the sweep, re-executing zero completed trials.
        resumed = SweepRunner(max_workers=2, cache_dir=cache_dir).run(
            spec, checkpoint=SweepCheckpoint.open(spec, manifest)
        )
        assert resumed.complete
        assert resumed.executed == 7 and resumed.cached == 5
        assert SweepCheckpoint.load(manifest).is_complete

        # Leg 3: resuming a finished sweep is a pure cache read.
        rerun = SweepRunner(max_workers=2, cache_dir=cache_dir).run(
            spec, checkpoint=SweepCheckpoint.open(spec, manifest)
        )
        assert rerun.executed == 0 and rerun.cached == 12
        assert rerun.digest() == resumed.digest()

        # The merged result is identical to one uninterrupted run —
        # trial-by-trial (modulo wall time) and by content digest.
        clean = SweepRunner(max_workers=2, cache_dir=tmp_path / "clean").run(spec)
        assert resumed.digest() == clean.digest()

        def stripped(result):
            payloads = []
            for trial in result.trials:
                payload = trial.to_dict()
                payload.pop("wall_time_s")
                payloads.append(payload)
            return payloads

        assert stripped(resumed) == stripped(clean)
        assert [a.to_dict() for a in resumed.aggregates()] == [
            a.to_dict() for a in clean.aggregates()
        ]

    def test_budget_zero_executes_nothing_but_keeps_the_manifest_valid(self, tmp_path):
        spec = make_spec()
        cache_dir = tmp_path / "cache"
        manifest = checkpoint_path_for(cache_dir, spec.key)
        runner = SweepRunner(max_workers=2, cache_dir=cache_dir)
        probe = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest), max_trials=0)
        assert probe.executed == 0 and len(probe.trials) == 0 and not probe.complete
        finished = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest))
        assert finished.complete and finished.executed == 12
