"""End-to-end integration tests asserting the paper's qualitative claims.

These are the "shape" checks of the reproduction: who wins, in which
direction, under scaled-down versions of the paper's scenarios.  Absolute
numbers are not compared (our substrate is a simulator, not EC2).
"""

import pytest

from repro.cluster import ClusterConfig, run_cluster
from repro.simulator import SimulationConfig, run_simulation


CLUSTER_KW = dict(
    num_nodes=10,
    num_generators=30,
    duration_ms=1_200.0,
    num_keys=2_000,
    seed=11,
)

SIM_KW = dict(num_servers=20, num_clients=60, num_requests=4_000, seed=11)


@pytest.fixture(scope="module")
def cluster_results():
    return {
        strategy: run_cluster(ClusterConfig(strategy=strategy, **CLUSTER_KW))
        for strategy in ("C3", "DS")
    }


@pytest.fixture(scope="module")
def simulator_results():
    return {
        strategy: run_simulation(
            SimulationConfig(strategy=strategy, fluctuation_interval_ms=500.0, **SIM_KW)
        )
        for strategy in ("C3", "LOR", "RR", "ORA")
    }


class TestClusterShape:
    """Figures 6–9: C3 vs Dynamic Snitching on the cluster substrate."""

    def test_c3_improves_median(self, cluster_results):
        assert cluster_results["C3"].read_summary.median <= cluster_results["DS"].read_summary.median * 1.05

    def test_c3_improves_p99(self, cluster_results):
        assert cluster_results["C3"].read_summary.p99 < cluster_results["DS"].read_summary.p99

    def test_c3_improves_tail_span(self, cluster_results):
        c3 = cluster_results["C3"].read_summary
        ds = cluster_results["DS"].read_summary
        assert c3.tail_span < ds.tail_span

    def test_c3_improves_throughput(self, cluster_results):
        assert cluster_results["C3"].throughput_rps > cluster_results["DS"].throughput_rps

    def test_all_operations_complete(self, cluster_results):
        for result in cluster_results.values():
            assert result.completed_requests > 0
            assert result.completed_requests >= 0.99 * result.issued_requests


class TestSimulatorShape:
    """Figure 14: strategy ordering under slow service-time fluctuations."""

    def test_c3_beats_lor_at_long_fluctuation_intervals(self, simulator_results):
        assert simulator_results["C3"].summary.p99 < simulator_results["LOR"].summary.p99

    def test_c3_beats_rate_limited_round_robin(self, simulator_results):
        assert simulator_results["C3"].summary.p99 < simulator_results["RR"].summary.p99

    def test_oracle_is_the_lower_bound(self, simulator_results):
        oracle_p99 = simulator_results["ORA"].summary.p99
        for strategy in ("C3", "LOR", "RR"):
            assert simulator_results[strategy].summary.p99 >= oracle_p99 * 0.9

    def test_c3_tracks_oracle_more_closely_than_lor(self, simulator_results):
        oracle_p99 = simulator_results["ORA"].summary.p99
        c3_gap = simulator_results["C3"].summary.p99 - oracle_p99
        lor_gap = simulator_results["LOR"].summary.p99 - oracle_p99
        assert c3_gap < lor_gap

    def test_every_strategy_completed_all_requests(self, simulator_results):
        for result in simulator_results.values():
            assert result.completed_requests == SIM_KW["num_requests"]
