"""Property-based tests over whole simulation runs (invariants, not values)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.simulator import SimulationConfig, run_simulation


class TestSimulationInvariants:
    @given(
        strategy=st.sampled_from(["C3", "LOR", "RR", "ORA", "RAND"]),
        seed=st.integers(min_value=0, max_value=1_000),
        interval=st.sampled_from([20.0, 100.0, 400.0]),
    )
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_request_completes_with_sane_latency(self, strategy, seed, interval):
        config = SimulationConfig(
            num_servers=9,
            num_clients=12,
            num_requests=400,
            strategy=strategy,
            seed=seed,
            fluctuation_interval_ms=interval,
        )
        result = run_simulation(config)
        # Conservation: everything issued eventually completed.
        assert result.completed_requests == config.num_requests
        # Latencies are physical: bounded below by the network round trip.
        assert result.latencies_ms.min() >= 2 * config.network_delay_ms - 1e-9
        # Percentiles are ordered.
        summary = result.summary
        assert summary.median <= summary.p95 <= summary.p99 <= summary.p999 <= summary.maximum
        # Per-server completions account for at least every data request
        # (duplicates can only add to the count).
        assert sum(result.per_server_completed.values()) >= result.completed_requests

    @given(utilization=st.sampled_from([0.3, 0.5, 0.7]))
    @settings(max_examples=3, deadline=None)
    def test_higher_utilization_never_reduces_mean_latency(self, utilization):
        """Mean latency grows (weakly) with utilisation for the same seed."""
        low = run_simulation(
            SimulationConfig(
                num_servers=9, num_clients=12, num_requests=600, strategy="LOR",
                utilization=utilization, seed=3,
            )
        )
        high = run_simulation(
            SimulationConfig(
                num_servers=9, num_clients=12, num_requests=600, strategy="LOR",
                utilization=min(utilization + 0.3, 1.0), seed=3,
            )
        )
        assert high.summary.mean >= low.summary.mean * 0.8
