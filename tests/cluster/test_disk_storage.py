"""Unit tests for the disk models and storage engine."""

import numpy as np
import pytest

from repro.cluster.disk import DiskModel, DiskProfile, HDD_PROFILE, SSD_PROFILE
from repro.cluster.storage import StorageEngine


class TestDiskProfiles:
    def test_ssd_faster_than_hdd(self):
        assert SSD_PROFILE.read_ms < HDD_PROFILE.read_ms
        assert SSD_PROFILE.seek_penalty_ms < HDD_PROFILE.seek_penalty_ms

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            DiskProfile("bad", read_ms=0.0, write_ms=1.0, seek_penalty_ms=0.0, compaction_read_factor=1.0, cache_hit_ms=0.1)
        with pytest.raises(ValueError):
            DiskProfile("bad", read_ms=1.0, write_ms=1.0, seek_penalty_ms=-1.0, compaction_read_factor=1.0, cache_hit_ms=0.1)
        with pytest.raises(ValueError):
            DiskProfile("bad", read_ms=1.0, write_ms=1.0, seek_penalty_ms=0.0, compaction_read_factor=0.5, cache_hit_ms=0.1)


class TestDiskModel:
    def _model(self, profile=HDD_PROFILE):
        return DiskModel(profile, rng=np.random.default_rng(0), deterministic=True)

    def test_cache_hit_is_fast(self):
        model = self._model()
        assert model.read_time(cache_hit=True) == HDD_PROFILE.cache_hit_ms

    def test_concurrency_adds_seek_penalty(self):
        model = self._model()
        idle = model.read_time(concurrent_reads=0)
        busy = model.read_time(concurrent_reads=5)
        assert busy == pytest.approx(idle + 5 * HDD_PROFILE.seek_penalty_ms)

    def test_compaction_multiplies_read_time(self):
        model = self._model()
        normal = model.read_time()
        compacting = model.read_time(compacting=True)
        assert compacting == pytest.approx(normal * HDD_PROFILE.compaction_read_factor)

    def test_size_factor_scales(self):
        model = self._model()
        assert model.read_time(size_factor=2.0) == pytest.approx(model.read_time(size_factor=1.0) * 2.0)

    def test_write_time_cheaper_than_read(self):
        model = self._model()
        assert model.write_time() < model.read_time()

    def test_random_read_times_have_expected_mean(self):
        model = DiskModel(HDD_PROFILE, rng=np.random.default_rng(1))
        samples = [model.read_time() for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(HDD_PROFILE.read_ms, rel=0.1)

    def test_counters(self):
        model = self._model()
        model.read_time()
        model.write_time()
        assert model.reads_sampled == 1 and model.writes_sampled == 1

    def test_validation(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.read_time(concurrent_reads=-1)
        with pytest.raises(ValueError):
            model.read_time(size_factor=0.0)
        with pytest.raises(ValueError):
            model.write_time(size_factor=-1.0)


class TestStorageEngine:
    def _engine(self, **kwargs):
        defaults = dict(cache_hit_probability=0.0, rng=np.random.default_rng(0), deterministic=True)
        defaults.update(kwargs)
        return StorageEngine(**defaults)

    def test_read_service_time_positive(self):
        engine = self._engine()
        assert engine.read_service_time(concurrent_reads=0) > 0

    def test_compaction_slows_reads_and_raises_iowait(self):
        engine = self._engine()
        normal = engine.read_service_time(0)
        engine.begin_compaction()
        compacting = engine.read_service_time(0)
        assert compacting > normal
        assert engine.iowait >= 0.6
        engine.end_compaction()
        assert engine.iowait < 0.6
        assert engine.compactions == 1

    def test_cache_hits_speed_up_reads(self):
        always_hit = self._engine(cache_hit_probability=1.0)
        never_hit = self._engine(cache_hit_probability=0.0)
        assert always_hit.read_service_time(0) < never_hit.read_service_time(0)

    def test_iowait_tracks_read_concurrency(self):
        engine = self._engine()
        idle_iowait = engine.iowait
        for _ in range(50):
            engine.read_service_time(concurrent_reads=16)
        assert engine.iowait > idle_iowait
        assert 0.0 <= engine.iowait <= 1.0

    def test_write_service_time(self):
        engine = self._engine()
        assert engine.write_service_time() > 0
        assert engine.writes_served == 1

    def test_record_size_scales_service(self):
        engine = self._engine()
        small = engine.read_service_time(0, record_size=1024)
        large = engine.read_service_time(0, record_size=4096)
        assert large > small

    def test_stats_shape(self):
        engine = self._engine()
        engine.read_service_time(0)
        stats = engine.stats()
        assert stats["reads_served"] == 1
        assert stats["disk_profile"] == "hdd"

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageEngine(cache_hit_probability=1.5)
