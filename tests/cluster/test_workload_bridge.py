"""Unit tests for the closed-loop generator bridge."""

import numpy as np
import pytest

from repro.cluster.coordinator import Coordinator
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode
from repro.cluster.ring import TokenRing
from repro.cluster.storage import StorageEngine
from repro.cluster.workload_bridge import ClosedLoopGenerator
from repro.simulator.engine import EventLoop
from repro.simulator.network import ConstantLatency
from repro.strategies import LeastOutstandingSelector
from repro.workloads.ycsb import YCSBWorkload


def build_stack(num_nodes=3):
    loop = EventLoop()
    metrics = ClusterMetrics()
    ring = TokenRing(list(range(num_nodes)), replication_factor=min(3, num_nodes))
    nodes = {}
    coordinator_holder = {}

    def route(request, feedback, service_time):
        loop.schedule(0.05, coordinator_holder["c"].on_remote_response, request, feedback, service_time)

    for node_id in range(num_nodes):
        storage = StorageEngine(cache_hit_probability=0.0, rng=np.random.default_rng(node_id), deterministic=True)
        nodes[node_id] = ClusterNode(loop, node_id, storage, concurrency=4, on_complete=route)
    coordinator = Coordinator(
        loop=loop,
        node_id=0,
        ring=ring,
        selector=LeastOutstandingSelector(rng=np.random.default_rng(5)),
        nodes=nodes,
        network=ConstantLatency(0.05),
        metrics=metrics,
        read_repair_probability=0.0,
        rng=np.random.default_rng(6),
    )
    coordinator_holder["c"] = coordinator
    return loop, metrics, coordinator


class TestClosedLoopGenerator:
    def _generator(self, loop, coordinator, **kwargs):
        workload = YCSBWorkload(mix="read_only", num_keys=100, rng=np.random.default_rng(1))
        defaults = dict(generator_id=0, workload=workload, coordinator=coordinator)
        defaults.update(kwargs)
        return ClosedLoopGenerator(loop, **defaults)

    def test_closed_loop_issues_one_op_at_a_time(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator, max_operations=10)
        generator.start()
        loop.run_until_idle()
        assert generator.operations_issued == 10
        assert generator.operations_completed == 10
        assert metrics.operations_completed == 10

    def test_stop_issuing_at_deadline(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator, stop_issuing_at_ms=50.0)
        generator.start()
        loop.run_until_idle()
        assert generator.stopped
        assert generator.operations_completed == generator.operations_issued > 0

    def test_start_at_delays_first_operation(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator, start_at_ms=100.0, max_operations=3)
        generator.start()
        loop.run_until_idle()
        assert all(sample.completed_at >= 100.0 for sample in metrics.samples)

    def test_think_time_spaces_operations(self):
        loop, metrics, coordinator = build_stack()
        fast = self._generator(loop, coordinator, max_operations=5, think_time_ms=0.0)
        fast.start()
        loop.run_until_idle()
        fast_end = loop.now

        loop2, metrics2, coordinator2 = build_stack()
        slow = ClosedLoopGenerator(
            loop2,
            generator_id=1,
            workload=YCSBWorkload(mix="read_only", num_keys=100, rng=np.random.default_rng(1)),
            coordinator=coordinator2,
            max_operations=5,
            think_time_ms=50.0,
        )
        slow.start()
        loop2.run_until_idle()
        assert loop2.now > fast_end

    def test_mean_latency_and_stats(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator, max_operations=4, group_label="mygroup")
        generator.start()
        loop.run_until_idle()
        assert generator.mean_latency_ms > 0
        stats = generator.stats()
        assert stats["group"] == "mygroup"
        assert stats["completed"] == 4

    def test_group_label_defaults_to_workload_name(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator, max_operations=1)
        assert generator.group_label == "read_only"

    def test_manual_stop(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator)
        generator.start()
        generator.stop()
        loop.run_until_idle()
        assert generator.operations_issued <= 1

    def test_validation(self):
        loop, metrics, coordinator = build_stack()
        with pytest.raises(ValueError):
            self._generator(loop, coordinator, start_at_ms=-1.0)
        with pytest.raises(ValueError):
            self._generator(loop, coordinator, think_time_ms=-1.0)

    def test_mean_latency_zero_before_any_completion(self):
        loop, metrics, coordinator = build_stack()
        generator = self._generator(loop, coordinator)
        assert generator.mean_latency_ms == 0.0
