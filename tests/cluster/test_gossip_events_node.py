"""Unit tests for gossip, background events and the cluster node."""

import numpy as np
import pytest

from repro.cluster.events import CompactionProcess, GCPauseProcess
from repro.cluster.gossip import GossipService
from repro.cluster.node import ClusterNode
from repro.cluster.storage import StorageEngine
from repro.simulator.engine import EventLoop
from repro.simulator.request import Request, RequestKind


def make_node(loop, node_id=0, concurrency=2, on_complete=None, cache_hit=0.0):
    storage = StorageEngine(
        cache_hit_probability=cache_hit, rng=np.random.default_rng(node_id), deterministic=True
    )
    return ClusterNode(
        loop, node_id=node_id, storage=storage, concurrency=concurrency, on_complete=on_complete,
        rng=np.random.default_rng(node_id),
    )


def read_request(node_id=0, record_size=1024):
    return Request.create(client_id=99, replica_group=(node_id,), created_at=0.0, record_size=record_size)


class TestGossipService:
    def test_latest_iowait_defaults_to_zero(self):
        loop = EventLoop()
        gossip = GossipService(loop)
        assert gossip.latest_iowait("unknown") == 0.0

    def test_periodic_publication(self):
        loop = EventLoop()
        gossip = GossipService(loop, interval_ms=100.0)
        value = {"iowait": 0.1}
        gossip.register("n1", lambda: value["iowait"])
        gossip.start()
        loop.run(until=50.0)
        assert gossip.latest_iowait("n1") == pytest.approx(0.1)
        value["iowait"] = 0.8
        loop.run(until=250.0)
        assert gossip.latest_iowait("n1") == pytest.approx(0.8)

    def test_publication_is_delayed_by_interval(self):
        """The staleness that makes DS mis-rank peers."""
        loop = EventLoop()
        gossip = GossipService(loop, interval_ms=1000.0)
        value = {"iowait": 0.0}
        gossip.register("n1", lambda: value["iowait"])
        gossip.start()
        loop.run(until=10.0)
        value["iowait"] = 1.0
        loop.run(until=500.0)
        assert gossip.latest_iowait("n1") == 0.0  # still the stale value

    def test_manual_publish_and_clamping(self):
        loop = EventLoop()
        gossip = GossipService(loop)
        gossip.publish("n2", iowait=3.0)
        assert gossip.latest_iowait("n2") == 1.0
        assert gossip.staleness_ms("n2") == 0.0

    def test_snapshot_and_staleness_unknown(self):
        loop = EventLoop()
        gossip = GossipService(loop)
        gossip.publish("a", 0.2)
        assert gossip.snapshot() == {"a": 0.2}
        assert gossip.staleness_ms("ghost") == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipService(EventLoop(), interval_ms=0.0)


class TestBackgroundEvents:
    def test_compaction_process_toggles_nodes(self):
        loop = EventLoop()
        node = make_node(loop)
        process = CompactionProcess(
            loop, [node], mean_interarrival_ms=50.0, mean_duration_ms=20.0, rng=np.random.default_rng(0)
        )
        process.start()
        loop.run(until=2000.0)
        assert process.compactions_started > 0
        assert node.storage.compactions == process.compactions_started

    def test_gc_pause_process_pauses_nodes(self):
        loop = EventLoop()
        node = make_node(loop)
        events = []
        process = GCPauseProcess(
            loop, [node], mean_interarrival_ms=50.0, mean_pause_ms=10.0,
            rng=np.random.default_rng(1), on_event=lambda n, t, d: events.append(t),
        )
        process.start()
        loop.run(until=1000.0)
        assert process.pauses > 0
        assert node.gc_pauses == process.pauses
        assert len(events) == process.pauses

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            CompactionProcess(loop, [], mean_interarrival_ms=0.0)
        with pytest.raises(ValueError):
            GCPauseProcess(loop, [], mean_pause_ms=0.0)


class TestClusterNode:
    def test_read_completes_with_feedback(self):
        loop = EventLoop()
        completions = []
        node = make_node(loop, on_complete=lambda r, f, st: completions.append((r, f, st)))
        node.enqueue(read_request())
        loop.run_until_idle()
        assert len(completions) == 1
        request, feedback, service_time = completions[0]
        assert request.completed_at is None  # the coordinator marks completion
        assert feedback.server_id == 0
        assert service_time > 0
        assert node.reads_completed == 1

    def test_write_faster_than_read(self):
        loop = EventLoop()
        times = {}

        def on_complete(request, feedback, service_time):
            times[request.kind] = service_time

        node = make_node(loop, on_complete=on_complete)
        node.enqueue(read_request())
        write = Request.create(client_id=1, replica_group=(0,), created_at=0.0, kind=RequestKind.WRITE)
        node.enqueue(write)
        loop.run_until_idle()
        assert times[RequestKind.WRITE] < times[RequestKind.READ]

    def test_concurrency_bound(self):
        loop = EventLoop()
        node = make_node(loop, concurrency=2)
        for _ in range(5):
            node.enqueue(read_request())
        assert node.in_service == 2
        assert node.queue_length == 3
        assert node.pending_requests == 5

    def test_gc_pause_stalls_service(self):
        loop = EventLoop()
        completions = []
        node = make_node(loop, on_complete=lambda r, f, st: completions.append(loop.now))
        node.begin_gc_pause()
        node.enqueue(read_request())
        loop.run(until=50.0)
        assert completions == []
        node.end_gc_pause()
        loop.run_until_idle()
        assert len(completions) == 1

    def test_slowdown_scales_service_times(self):
        loop = EventLoop()
        durations = []
        node = make_node(loop, on_complete=lambda r, f, st: durations.append(st))
        node.enqueue(read_request())
        loop.run_until_idle()
        baseline = durations[-1]
        node.set_slowdown(4.0)
        node.enqueue(read_request())
        loop.run_until_idle()
        assert durations[-1] == pytest.approx(baseline * 4.0, rel=0.3)
        node.clear_slowdown()
        assert node.slowdown == 1.0

    def test_current_service_time_reflects_conditions(self):
        loop = EventLoop()
        node = make_node(loop)
        base = node.current_service_time_ms
        node.begin_compaction()
        assert node.current_service_time_ms > base
        node.end_compaction()
        node.begin_gc_pause()
        assert node.current_service_time_ms > base
        node.end_gc_pause()

    def test_feedback_queue_size_counts_pending(self):
        loop = EventLoop()
        feedbacks = []
        node = make_node(loop, concurrency=1, on_complete=lambda r, f, st: feedbacks.append(f))
        for _ in range(3):
            node.enqueue(read_request())
        loop.run_until_idle()
        assert [fb.queue_size for fb in feedbacks] == [2, 1, 0]

    def test_stats_shape(self):
        loop = EventLoop()
        node = make_node(loop)
        node.enqueue(read_request())
        loop.run_until_idle()
        stats = node.stats()
        assert stats["completed"] == 1 and stats["reads"] == 1
        assert "storage" in stats

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            ClusterNode(loop, 0, StorageEngine(), concurrency=0)
        node = make_node(loop)
        with pytest.raises(ValueError):
            node.set_slowdown(0.0)
