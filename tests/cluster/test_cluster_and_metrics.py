"""Integration-level tests for the cluster assembly and its metrics."""

import pytest

from repro.cluster import (
    CassandraCluster,
    ClusterConfig,
    ClusterMetrics,
    GeneratorGroup,
    run_cluster,
)

FAST = dict(
    num_nodes=5,
    num_generators=8,
    duration_ms=400.0,
    num_keys=500,
    seed=3,
    compaction_interarrival_ms=5_000.0,
    gc_interarrival_ms=5_000.0,
)


class TestClusterMetrics:
    def test_operation_recording(self):
        metrics = ClusterMetrics(window_ms=100.0)
        metrics.record_issue()
        metrics.record_operation(4.0, True, 50.0, group="g")
        metrics.record_load("n1", 50.0)
        result = metrics.result(duration_ms=100.0, strategy="X")
        assert result.completed_requests == 1
        assert result.read_latencies_ms.tolist() == [4.0]
        assert result.per_server_completed == {"n1": 1}
        assert result.strategy == "X"

    def test_latency_filters(self):
        metrics = ClusterMetrics()
        metrics.record_operation(1.0, True, 10.0, group="a")
        metrics.record_operation(2.0, False, 20.0, group="a")
        metrics.record_operation(3.0, True, 30.0, group="b")
        assert metrics.latencies(reads_only=True).tolist() == [1.0, 3.0]
        assert metrics.latencies(group="a").tolist() == [1.0, 2.0]
        times, values = metrics.latency_series(group="b")
        assert times.tolist() == [30.0] and values.tolist() == [3.0]

    def test_copy_kinds_counted(self):
        metrics = ClusterMetrics()
        metrics.record_copy("read_repair")
        metrics.record_copy("speculative")
        metrics.record_copy("write_replica")
        assert metrics.read_repairs == 1
        assert metrics.speculative_retries == 1
        assert metrics.copies_issued == 3

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ClusterMetrics().record_operation(-1.0, True, 0.0)


class TestClusterConfig:
    def test_disk_profile_selection(self):
        assert ClusterConfig(disk="hdd").disk_profile.name == "hdd"
        assert ClusterConfig(disk="ssd").disk_profile.name == "ssd"

    def test_default_generator_group(self):
        config = ClusterConfig(num_generators=12, workload_mix="read_only")
        groups = config.groups()
        assert len(groups) == 1
        assert groups[0].count == 12 and groups[0].mix == "read_only"

    def test_explicit_groups_win(self):
        groups = [GeneratorGroup(count=2, mix="read_heavy"), GeneratorGroup(count=3, mix="update_heavy")]
        config = ClusterConfig(generator_groups=groups)
        assert len(config.groups()) == 2

    def test_copy(self):
        config = ClusterConfig().copy(strategy="DS", seed=4)
        assert config.strategy == "DS" and config.seed == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=2, replication_factor=3)
        with pytest.raises(ValueError):
            ClusterConfig(duration_ms=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(disk="floppy")
        with pytest.raises(ValueError):
            GeneratorGroup(count=0)

    def test_generator_group_label_defaults_to_mix(self):
        assert GeneratorGroup(count=1, mix="read_only").label == "read_only"


class TestCassandraClusterRuns:
    @pytest.mark.parametrize("strategy", ["C3", "DS", "LOR", "RAND"])
    def test_strategies_complete_operations(self, strategy):
        result = run_cluster(ClusterConfig(strategy=strategy, **FAST))
        assert result.completed_requests > 50
        assert result.read_summary.median > 0
        assert result.throughput_rps > 0

    def test_reproducible_with_same_seed(self):
        a = run_cluster(ClusterConfig(strategy="C3", **FAST))
        b = run_cluster(ClusterConfig(strategy="C3", **FAST))
        assert a.completed_requests == b.completed_requests
        assert a.read_summary.mean == pytest.approx(b.read_summary.mean)

    def test_node_count_and_structures(self):
        cluster = CassandraCluster(ClusterConfig(strategy="C3", **FAST))
        assert len(cluster.nodes) == FAST["num_nodes"]
        assert len(cluster.coordinators) == FAST["num_nodes"]
        assert len(cluster.generators) == FAST["num_generators"]
        assert len(cluster.ring) == FAST["num_nodes"]

    def test_generators_bound_round_robin_to_coordinators(self):
        cluster = CassandraCluster(ClusterConfig(strategy="C3", **FAST))
        bound = {g.coordinator.node_id for g in cluster.generators}
        assert len(bound) == min(FAST["num_generators"], FAST["num_nodes"])

    def test_update_heavy_mix_produces_writes(self):
        result = run_cluster(ClusterConfig(strategy="C3", workload_mix="update_heavy", **FAST))
        assert result.write_latencies_ms.size > 0
        assert result.read_latencies_ms.size > 0

    def test_generator_groups_with_staggered_start(self):
        groups = [
            GeneratorGroup(count=4, mix="read_heavy", label="readers"),
            GeneratorGroup(count=4, mix="update_heavy", start_at_ms=200.0, label="updaters"),
        ]
        config = ClusterConfig(strategy="C3", generator_groups=groups, **FAST)
        result = run_cluster(config)
        samples = result.extra["operation_samples"]
        reader_times = [s.completed_at for s in samples if s.group == "readers"]
        updater_times = [s.completed_at for s in samples if s.group == "updaters"]
        assert reader_times and updater_times
        assert min(updater_times) >= 200.0
        assert min(reader_times) < 200.0

    def test_ssd_is_faster_than_hdd(self):
        hdd = run_cluster(ClusterConfig(strategy="C3", disk="hdd", **FAST))
        ssd = run_cluster(ClusterConfig(strategy="C3", disk="ssd", **FAST))
        assert ssd.read_summary.median < hdd.read_summary.median

    def test_node_load_recorded_for_every_node(self):
        result = run_cluster(ClusterConfig(strategy="C3", **FAST))
        assert len(result.per_server_completed) == FAST["num_nodes"]

    def test_speculative_retry_config_enables_policy(self):
        config = ClusterConfig(strategy="DS", speculative_retry_percentile=50.0, **FAST)
        cluster = CassandraCluster(config)
        assert all(c.speculative_retry is not None for c in cluster.coordinators.values())
        result = cluster.run()
        assert result.completed_requests > 0

    def test_extra_contains_node_stats(self):
        result = run_cluster(ClusterConfig(strategy="C3", **FAST))
        assert len(result.extra["node_stats"]) == FAST["num_nodes"]
        assert result.extra["generators"] == FAST["num_generators"]
