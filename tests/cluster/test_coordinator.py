"""Unit tests for the coordinator (read/write path, read repair, speculation)."""

import numpy as np
import pytest

from repro.cluster.coordinator import Coordinator, SpeculativeRetryPolicy
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode
from repro.cluster.ring import TokenRing
from repro.cluster.storage import StorageEngine
from repro.core.config import C3Config
from repro.simulator.engine import EventLoop
from repro.simulator.network import ConstantLatency
from repro.strategies import C3Selector, LeastOutstandingSelector
from repro.workloads.ycsb import Operation


class MiniCluster:
    """A three-node cluster with a single coordinator under test."""

    def __init__(self, selector=None, read_repair=0.0, spec_policy=None, num_nodes=3, slow_nodes=()):
        self.loop = EventLoop()
        self.metrics = ClusterMetrics()
        self.ring = TokenRing(list(range(num_nodes)), replication_factor=min(3, num_nodes))
        self.nodes = {}
        for node_id in range(num_nodes):
            storage = StorageEngine(
                cache_hit_probability=0.0, rng=np.random.default_rng(node_id), deterministic=True
            )
            node = ClusterNode(
                self.loop, node_id, storage, concurrency=4, on_complete=self._route,
                rng=np.random.default_rng(node_id),
            )
            if node_id in slow_nodes:
                node.set_slowdown(10.0)
            self.nodes[node_id] = node
        self.coordinator = Coordinator(
            loop=self.loop,
            node_id=0,
            ring=self.ring,
            selector=selector or LeastOutstandingSelector(rng=np.random.default_rng(7)),
            nodes=self.nodes,
            network=ConstantLatency(0.1),
            metrics=self.metrics,
            read_repair_probability=read_repair,
            speculative_retry=spec_policy,
            rng=np.random.default_rng(9),
        )
        self.completed = []

    def _route(self, request, feedback, service_time):
        self.loop.schedule(0.1, self.coordinator.on_remote_response, request, feedback, service_time)

    def execute(self, key=1, is_read=True, record_size=1024, group_label="g"):
        op = Operation(key=key, is_read=is_read, record_size=record_size)
        return self.coordinator.execute(op, lambda req, lat: self.completed.append((req, lat)), group_label)


class TestReadPath:
    def test_read_completes_and_records_metrics(self):
        cluster = MiniCluster()
        request = cluster.execute(key=5)
        cluster.loop.run_until_idle()
        assert len(cluster.completed) == 1
        assert cluster.metrics.operations_completed == 1
        assert cluster.metrics.operations_issued == 1
        assert request.server_id in request.replica_group

    def test_latency_includes_network_and_service(self):
        cluster = MiniCluster()
        cluster.execute()
        cluster.loop.run_until_idle()
        _, latency = cluster.completed[0]
        assert latency > 0.2  # at least the two network hops

    def test_group_label_propagates_to_samples(self):
        cluster = MiniCluster()
        cluster.execute(group_label="readers")
        cluster.loop.run_until_idle()
        assert cluster.metrics.samples[0].group == "readers"

    def test_multiple_reads_all_complete(self):
        cluster = MiniCluster()
        for key in range(20):
            cluster.execute(key=key)
        cluster.loop.run_until_idle()
        assert len(cluster.completed) == 20
        assert cluster.coordinator.pending_operations == 0


class TestReadRepair:
    def test_read_repair_fans_out_to_all_replicas(self):
        cluster = MiniCluster(read_repair=1.0)
        cluster.execute(key=3)
        cluster.loop.run_until_idle()
        total_received = sum(node.requests_received for node in cluster.nodes.values())
        assert total_received == 3  # RF copies
        assert cluster.metrics.read_repairs == 2
        assert cluster.metrics.operations_completed == 1

    def test_no_read_repair_for_writes(self):
        cluster = MiniCluster(read_repair=1.0)
        cluster.execute(key=3, is_read=False)
        cluster.loop.run_until_idle()
        assert cluster.metrics.read_repairs == 0


class TestWritePath:
    def test_write_replicated_to_all_replicas(self):
        cluster = MiniCluster()
        cluster.execute(key=7, is_read=False)
        cluster.loop.run_until_idle()
        total_received = sum(node.requests_received for node in cluster.nodes.values())
        assert total_received == 3
        assert cluster.metrics.operations_completed == 1
        # One primary + RF-1 replica copies.
        assert cluster.metrics.copies_issued == 2

    def test_write_latency_is_first_ack(self):
        cluster = MiniCluster()
        cluster.execute(key=7, is_read=False)
        cluster.loop.run_until_idle()
        _, latency = cluster.completed[0]
        write_service = cluster.nodes[0].storage.disk.profile.write_ms
        assert latency < 10 * write_service + 1.0


class TestSpeculativeRetry:
    def test_policy_threshold_warms_up(self):
        policy = SpeculativeRetryPolicy(percentile=99.0, min_samples=5)
        assert policy.threshold_ms() is None
        for latency in (1.0, 2.0, 3.0, 4.0, 100.0):
            policy.record(latency)
        assert policy.threshold_ms() is not None
        assert policy.threshold_ms() > 4.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SpeculativeRetryPolicy(percentile=0.0)
        with pytest.raises(ValueError):
            SpeculativeRetryPolicy(min_samples=10, history=5)

    def test_speculation_fires_against_slow_replica(self):
        policy = SpeculativeRetryPolicy(percentile=50.0, min_samples=5)
        for latency in (1.0, 1.0, 1.0, 1.0, 1.0):
            policy.record(latency)
        # Node 1 and 2 are extremely slow; reads that land there trigger
        # speculation to another replica.
        cluster = MiniCluster(spec_policy=policy, slow_nodes=(1, 2))
        for key in range(30):
            cluster.execute(key=key)
        cluster.loop.run_until_idle()
        assert len(cluster.completed) == 30
        assert cluster.coordinator.speculations_fired > 0
        assert cluster.metrics.speculative_retries == cluster.coordinator.speculations_fired


class TestBackpressurePath:
    def test_backpressured_reads_complete_via_retry(self):
        config = C3Config(initial_rate=1.0, rate_delta_ms=10.0)
        cluster = MiniCluster(selector=C3Selector(config))
        for key in range(12):
            cluster.execute(key=key)
        cluster.loop.run_until_idle()
        assert len(cluster.completed) == 12
        assert cluster.metrics.backpressure_events > 0
        assert cluster.coordinator.pending_operations == 0

    def test_stats_shape(self):
        cluster = MiniCluster()
        cluster.execute()
        cluster.loop.run_until_idle()
        stats = cluster.coordinator.stats()
        assert stats["operations"] == 1 and stats["reads"] == 1
        assert "selector" in stats
