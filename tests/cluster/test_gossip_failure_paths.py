"""Failure-path unit tests for the gossip bus.

Backfills direct coverage of the degenerate cases: unknown nodes, stale
entries, out-of-range published values, double starts, and late
registration joining the periodic cycle.
"""

from __future__ import annotations

import pytest

from repro.cluster.gossip import GossipService
from repro.simulator.engine import EventLoop


class TestConstructionAndUnknownNodes:
    def test_non_positive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match="interval_ms"):
            GossipService(loop, interval_ms=0.0)
        with pytest.raises(ValueError, match="interval_ms"):
            GossipService(loop, interval_ms=-5.0)

    def test_unknown_node_reads_are_safe_defaults(self):
        gossip = GossipService(EventLoop())
        assert gossip.latest_iowait("ghost") == 0.0
        assert gossip.staleness_ms("ghost") == float("inf")
        assert gossip.snapshot() == {}

    def test_registered_but_never_published_node_is_infinitely_stale(self):
        gossip = GossipService(EventLoop())
        gossip.register("a", lambda: 0.3)
        assert gossip.latest_iowait("a") == 0.0
        assert gossip.staleness_ms("a") == float("inf")


class TestPublishEdgeCases:
    def test_published_iowait_is_clamped_to_unit_interval(self):
        gossip = GossipService(EventLoop())
        gossip.publish("a", 5.0)
        assert gossip.latest_iowait("a") == 1.0
        gossip.publish("a", -2.0)
        assert gossip.latest_iowait("a") == 0.0

    def test_publish_without_source_defaults_to_zero(self):
        gossip = GossipService(EventLoop())
        gossip.publish("unregistered")
        assert gossip.latest_iowait("unregistered") == 0.0
        assert gossip.staleness_ms("unregistered") == 0.0

    def test_explicit_publish_overrides_the_source(self):
        gossip = GossipService(EventLoop())
        gossip.register("a", lambda: 0.25)
        gossip.publish("a", 0.9)
        assert gossip.latest_iowait("a") == 0.9
        gossip.publish("a")
        assert gossip.latest_iowait("a") == 0.25


class TestPeriodicCycle:
    def test_start_is_idempotent(self):
        loop = EventLoop()
        gossip = GossipService(loop, interval_ms=100.0)
        gossip.register("a", lambda: 0.1)
        gossip.register("b", lambda: 0.2)
        gossip.start()
        gossip.start()  # must not double the publish cycle
        loop.run(until=350.0)
        # Publishes at t = 0, 100, 200, 300: four rounds × two nodes.
        assert gossip.total_publishes == 8

    def test_staleness_is_bounded_by_the_interval(self):
        loop = EventLoop()
        gossip = GossipService(loop, interval_ms=100.0)
        gossip.register("a", lambda: 0.4)
        gossip.start()
        loop.run(until=550.0)
        assert gossip.staleness_ms("a") <= 100.0
        assert gossip.latest_iowait("a") == 0.4

    def test_late_registration_joins_the_next_cycle(self):
        loop = EventLoop()
        gossip = GossipService(loop, interval_ms=100.0)
        gossip.register("a", lambda: 0.1)
        gossip.start()
        loop.run(until=50.0)
        gossip.register("late", lambda: 0.7)
        assert gossip.latest_iowait("late") == 0.0
        loop.run(until=150.0)
        assert gossip.latest_iowait("late") == 0.7
        assert gossip.staleness_ms("late") <= 100.0

    def test_source_changes_propagate_on_the_next_publish(self):
        loop = EventLoop()
        gossip = GossipService(loop, interval_ms=100.0)
        state = {"iowait": 0.1}
        gossip.register("a", lambda: state["iowait"])
        gossip.start()
        loop.run(until=10.0)
        assert gossip.latest_iowait("a") == 0.1
        state["iowait"] = 0.8
        # Until the next cycle the bus still serves the stale value — the
        # propagation delay Dynamic Snitching suffers from (§2.3).
        assert gossip.latest_iowait("a") == 0.1
        loop.run(until=110.0)
        assert gossip.latest_iowait("a") == 0.8
