"""Unit tests for the token ring."""

import hashlib
import json

import pytest

from repro.cluster.ring import TokenRing, _hash_key

#: sha256 over the sorted-JSON placement map of keys 0..255 on a 5-node
#: RF=3 ring.  Pins the *entire* placement function — token spacing, key
#: hashing, bisect + wraparound — so any change to data placement is a
#: deliberate, reviewed digest bump.
_GOLDEN_PLACEMENT_DIGEST = "0c774539c4d1e8e1025579479e1115e5c7e753f759035d72dca642151b1ed235"


class TestTokenRing:
    def test_replicas_are_distinct_and_rf_sized(self):
        ring = TokenRing(list(range(10)), replication_factor=3)
        for key in range(200):
            group = ring.replicas_for(key)
            assert len(group) == 3
            assert len(set(group)) == 3

    def test_primary_is_first_replica(self):
        ring = TokenRing(list(range(7)), replication_factor=3)
        for key in range(100):
            assert ring.primary_for(key) == ring.replicas_for(key)[0]

    def test_same_key_maps_to_same_replicas(self):
        ring = TokenRing(list(range(5)), replication_factor=2)
        assert ring.replicas_for("user:42") == ring.replicas_for("user:42")

    def test_replica_groups_are_consecutive_on_the_ring(self):
        nodes = ["n0", "n1", "n2", "n3"]
        ring = TokenRing(nodes, replication_factor=2)
        groups = ring.replica_groups()
        assert ("n0", "n1") in groups and ("n3", "n0") in groups
        assert len(groups) == 4

    def test_ownership_is_roughly_balanced(self):
        ring = TokenRing(list(range(8)), replication_factor=3)
        counts = {node: 0 for node in range(8)}
        for key in range(8000):
            counts[ring.primary_for(key)] += 1
        # Evenly spaced tokens + md5 key hashing → each node owns ~1/8.
        for count in counts.values():
            assert 0.5 * 1000 < count < 1.6 * 1000

    def test_ownership_fraction(self):
        ring = TokenRing(list(range(4)))
        assert ring.ownership_fraction(2) == pytest.approx(0.25)
        with pytest.raises(KeyError):
            ring.ownership_fraction("ghost")

    def test_every_node_appears_in_rf_groups(self):
        ring = TokenRing(list(range(6)), replication_factor=3)
        membership = {node: 0 for node in range(6)}
        for group in ring.replica_groups():
            for node in group:
                membership[node] += 1
        assert all(count == 3 for count in membership.values())

    def test_contains_and_len(self):
        ring = TokenRing(["a", "b", "c"])
        assert "a" in ring and "z" not in ring
        assert len(ring) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenRing([])
        with pytest.raises(ValueError):
            TokenRing(["a", "a"])
        with pytest.raises(ValueError):
            TokenRing(["a", "b"], replication_factor=3)
        with pytest.raises(ValueError):
            TokenRing(["a", "b"], replication_factor=0)

    def test_rf_one(self):
        ring = TokenRing(["a", "b", "c"], replication_factor=1)
        assert all(len(ring.replicas_for(k)) == 1 for k in range(20))

    def test_wraparound_placement(self):
        """Keys hashing past the last token wrap to the ring's first node,
        and groups anchored at the last node wrap through index 0."""
        ring = TokenRing(list(range(4)), replication_factor=3)
        tokens = ring._tokens
        past_last = next(k for k in range(10_000) if _hash_key(k) > tokens[-1])
        assert ring.primary_for(past_last) == ring.nodes[0]
        assert ring.replicas_for(past_last) == (0, 1, 2)
        in_last_segment = next(
            k for k in range(10_000) if tokens[-2] < _hash_key(k) <= tokens[-1]
        )
        assert ring.primary_for(in_last_segment) == ring.nodes[-1]
        # The group clockwise from the last node crosses the ring origin.
        assert ring.replicas_for(in_last_segment) == (3, 0, 1)

    def test_replication_factor_exceeding_nodes_raises(self):
        with pytest.raises(ValueError, match=r"replication_factor"):
            TokenRing(["a", "b", "c"], replication_factor=4)

    def test_golden_placement_digest(self):
        ring = TokenRing([f"node{i}" for i in range(5)], replication_factor=3)
        placements = {str(key): list(ring.replicas_for(key)) for key in range(256)}
        digest = hashlib.sha256(json.dumps(placements, sort_keys=True).encode()).hexdigest()
        assert digest == _GOLDEN_PLACEMENT_DIGEST
