"""Failure-path unit tests for the coordinator.

Backfills direct coverage of the paths the happy-path suite never hits:
speculation running out of fresh replicas, timers racing completions, stale
responses for already-completed operations, and multi-copy hedging
(``max_extra > 1``) re-arming its timer.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.coordinator import Coordinator, SpeculativeRetryPolicy
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode
from repro.cluster.ring import TokenRing
from repro.cluster.storage import StorageEngine
from repro.controls.hedging import QuantileHedging
from repro.core.feedback import ServerFeedback
from repro.simulator.engine import EventLoop
from repro.simulator.network import ConstantLatency
from repro.simulator.request import Request
from repro.strategies import LeastOutstandingSelector
from repro.workloads.ycsb import Operation


def make_cluster(spec_policy=None, read_repair=0.0, num_nodes=3, slow_nodes=(), slowdown=50.0):
    """A small cluster with one coordinator under test (returns (loop, coord, nodes, metrics, completed))."""
    loop = EventLoop()
    metrics = ClusterMetrics()
    ring = TokenRing(list(range(num_nodes)), replication_factor=min(3, num_nodes))
    completed = []
    nodes = {}
    coordinator_box = []

    def route(request, feedback, service_time):
        loop.schedule(0.1, coordinator_box[0].on_remote_response, request, feedback, service_time)

    for node_id in range(num_nodes):
        storage = StorageEngine(
            cache_hit_probability=0.0, rng=np.random.default_rng(node_id), deterministic=True
        )
        node = ClusterNode(
            loop, node_id, storage, concurrency=4, on_complete=route,
            rng=np.random.default_rng(node_id),
        )
        if node_id in slow_nodes:
            node.set_slowdown(slowdown)
        nodes[node_id] = node
    coordinator = Coordinator(
        loop=loop,
        node_id=0,
        ring=ring,
        selector=LeastOutstandingSelector(rng=np.random.default_rng(7)),
        nodes=nodes,
        network=ConstantLatency(0.1),
        metrics=metrics,
        read_repair_probability=read_repair,
        speculative_retry=spec_policy,
        rng=np.random.default_rng(9),
    )
    coordinator_box.append(coordinator)

    def execute(key=1, is_read=True):
        op = Operation(key=key, is_read=is_read, record_size=1024)
        return coordinator.execute(op, lambda req, lat: completed.append((req, lat)))

    return loop, coordinator, nodes, metrics, completed, execute


def warmed_policy(max_extra=1, threshold=0.5):
    policy = QuantileHedging(quantile=0.5, max_extra=max_extra, min_samples=5, history=100)
    for _ in range(10):
        policy.record(threshold)
    return policy


class TestSpeculationExhaustsReplicas:
    def test_speculation_with_no_fresh_replica_is_a_safe_noop(self):
        # RF = num_nodes = 2: one primary + one speculative target exhausts
        # the group; a second hedge finds no candidate and must not blow up
        # or issue a copy to an already-used replica.
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=warmed_policy(max_extra=3), num_nodes=2,
            slow_nodes=(0, 1), slowdown=200.0,
        )
        execute(key=1)
        loop.run_until_idle()
        assert len(completed) == 1
        # At most one extra copy exists (the single non-primary replica).
        assert coord.speculations_fired <= 1
        total_received = sum(node.requests_received for node in nodes.values())
        assert total_received == 1 + coord.speculations_fired

    def test_speculative_targets_are_distinct_replicas(self):
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=warmed_policy(max_extra=2), num_nodes=3,
            slow_nodes=(0, 1, 2), slowdown=500.0,
        )
        execute(key=5)
        loop.run_until_idle()
        assert len(completed) == 1
        # max_extra=2 on a 3-replica group: both extras fired, each to a
        # different replica, so every node saw exactly one copy.
        assert coord.speculations_fired == 2
        assert [node.requests_received for node in nodes.values()] == [1, 1, 1]


class TestSpeculationTimerRaces:
    def test_completion_cancels_the_pending_speculation_timer(self):
        # Fast nodes: the read completes long before the (warmed) threshold,
        # and the cancelled timer must not fire a stale speculation.
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=warmed_policy(threshold=10_000.0)
        )
        execute(key=2)
        loop.run_until_idle()
        assert len(completed) == 1
        assert coord.speculations_fired == 0
        assert metrics.speculative_retries == 0

    def test_speculate_on_completed_operation_is_a_noop(self):
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=warmed_policy(threshold=10_000.0)
        )
        request = execute(key=3)
        loop.run_until_idle()
        assert len(completed) == 1
        coord._speculate(request.request_id)  # stale timer replay
        assert coord.speculations_fired == 0

    def test_speculate_on_unknown_operation_is_a_noop(self):
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=warmed_policy()
        )
        coord._speculate(999_999)
        assert coord.speculations_fired == 0


class TestStaleAndDuplicateResponses:
    def test_response_for_untracked_copy_is_ignored(self):
        loop, coord, nodes, metrics, completed, execute = make_cluster()
        stray = Request.create(client_id=0, replica_group=(0, 1, 2), created_at=0.0)
        stray.mark_dispatched(0.0, 1)
        coord.on_remote_response(stray, ServerFeedback(queue_size=0, service_time=1.0), 1.0)
        assert completed == []
        assert metrics.operations_completed == 0

    def test_read_repair_stragglers_complete_the_operation_once(self):
        loop, coord, nodes, metrics, completed, execute = make_cluster(read_repair=1.0)
        execute(key=4)
        loop.run_until_idle()
        # All three copies answered, the operation completed exactly once.
        assert sum(node.requests_received for node in nodes.values()) == 3
        assert len(completed) == 1
        assert metrics.operations_completed == 1
        assert coord.pending_operations == 0


class TestPolicyGating:
    def test_cold_policy_never_speculates(self):
        policy = SpeculativeRetryPolicy(percentile=99.0, min_samples=50)
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=policy, slow_nodes=(0, 1, 2)
        )
        for key in range(10):
            execute(key=key)
        loop.run_until_idle()
        assert len(completed) == 10
        # 10 < min_samples: the threshold never materialised.
        assert coord.speculations_fired == 0

    def test_writes_never_speculate(self):
        loop, coord, nodes, metrics, completed, execute = make_cluster(
            spec_policy=warmed_policy(), slow_nodes=(0, 1, 2), slowdown=200.0
        )
        execute(key=6, is_read=False)
        loop.run_until_idle()
        assert len(completed) == 1
        assert coord.speculations_fired == 0
