"""Unit tests for record-size models and the YCSB-style workload."""

import numpy as np
import pytest

from repro.workloads.records import FixedRecordSize, ZipfSkewedRecordSize
from repro.workloads.ycsb import WORKLOAD_MIXES, WorkloadMix, YCSBWorkload


class TestFixedRecordSize:
    def test_constant_sample(self):
        model = FixedRecordSize(1024)
        assert all(model.sample() == 1024 for _ in range(5))
        assert model.mean() == 1024.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedRecordSize(0)


class TestZipfSkewedRecordSize:
    def test_samples_within_bounds(self):
        model = ZipfSkewedRecordSize(rng=np.random.default_rng(0))
        sizes = [model.sample() for _ in range(500)]
        assert all(model.num_fields * model.min_field_bytes <= s <= model.max_record_bytes for s in sizes)

    def test_favours_shorter_records(self):
        model = ZipfSkewedRecordSize(rng=np.random.default_rng(1))
        sizes = np.array([model.sample() for _ in range(2000)])
        midpoint = (model.num_fields * model.min_field_bytes + model.max_record_bytes) / 2
        assert np.median(sizes) < midpoint

    def test_mean_estimate_positive_and_bounded(self):
        model = ZipfSkewedRecordSize()
        assert 0 < model.mean() <= model.max_record_bytes

    def test_field_sampler(self):
        model = ZipfSkewedRecordSize(rng=np.random.default_rng(2))
        fields = [model.sample_field() for _ in range(200)]
        assert all(model.min_field_bytes <= f <= model.max_field_bytes for f in fields)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSkewedRecordSize(num_fields=0)
        with pytest.raises(ValueError):
            ZipfSkewedRecordSize(min_field_bytes=10, max_field_bytes=5)
        with pytest.raises(ValueError):
            ZipfSkewedRecordSize(num_fields=10, min_field_bytes=100, max_record_bytes=500)
        with pytest.raises(ValueError):
            ZipfSkewedRecordSize(theta=2.0)


class TestWorkloadMixes:
    def test_paper_mixes_present(self):
        assert WORKLOAD_MIXES["read_heavy"].read_fraction == 0.95
        assert WORKLOAD_MIXES["update_heavy"].read_fraction == 0.50
        assert WORKLOAD_MIXES["read_only"].read_fraction == 1.00

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix("broken", 1.5)


class TestYCSBWorkload:
    def test_read_fraction_respected(self):
        workload = YCSBWorkload(mix="update_heavy", num_keys=1000, rng=np.random.default_rng(0))
        ops = list(workload.operations(4000))
        read_fraction = sum(op.is_read for op in ops) / len(ops)
        assert read_fraction == pytest.approx(0.5, abs=0.05)

    def test_read_only_mix_has_no_writes(self):
        workload = YCSBWorkload(mix="read_only", num_keys=100, rng=np.random.default_rng(1))
        assert all(op.is_read for op in workload.operations(500))

    def test_keys_within_space(self):
        workload = YCSBWorkload(num_keys=50, rng=np.random.default_rng(2))
        assert all(0 <= op.key < 50 for op in workload.operations(500))

    def test_record_sizes_from_model(self):
        workload = YCSBWorkload(
            num_keys=10, record_sizes=FixedRecordSize(2048), rng=np.random.default_rng(3)
        )
        assert all(op.record_size == 2048 for op in workload.operations(20))

    def test_uniform_key_distribution_option(self):
        workload = YCSBWorkload(num_keys=100, key_distribution="uniform", rng=np.random.default_rng(4))
        keys = {op.key for op in workload.operations(400)}
        assert len(keys) > 50

    def test_mix_object_accepted(self):
        workload = YCSBWorkload(mix=WorkloadMix("custom", 0.25), num_keys=10)
        assert workload.name == "custom"

    def test_operations_generated_counter(self):
        workload = YCSBWorkload(num_keys=10, rng=np.random.default_rng(5))
        list(workload.operations(7))
        assert workload.operations_generated == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            YCSBWorkload(mix="nonexistent")
        with pytest.raises(ValueError):
            YCSBWorkload(key_distribution="weird")
        with pytest.raises(ValueError):
            list(YCSBWorkload(num_keys=10).operations(-1))
