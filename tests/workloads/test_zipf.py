"""Unit tests for the Zipfian and uniform key generators."""

import numpy as np
import pytest

from repro.workloads.zipf import UniformKeyGenerator, ZipfianGenerator


class TestZipfianGenerator:
    def test_keys_within_range(self):
        generator = ZipfianGenerator(1000, rng=np.random.default_rng(0))
        keys = generator.sample(2000)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_skew_concentrates_mass_on_few_keys(self):
        generator = ZipfianGenerator(10_000, theta=0.99, rng=np.random.default_rng(1))
        keys = generator.sample(20_000)
        _, counts = np.unique(keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_fraction = counts[: max(1, len(counts) // 10)].sum() / counts.sum()
        # With theta=0.99 the hottest ~10% of touched keys carry most traffic.
        assert top_fraction > 0.5

    def test_unscrambled_ranks_are_monotone_popular(self):
        generator = ZipfianGenerator(1000, scrambled=False, rng=np.random.default_rng(2))
        keys = generator.sample(20_000)
        unique, counts = np.unique(keys, return_counts=True)
        freq = dict(zip(unique, counts))
        assert freq.get(0, 0) > freq.get(100, 0)

    def test_scrambling_spreads_popular_keys(self):
        scrambled = ZipfianGenerator(1000, scrambled=True, rng=np.random.default_rng(3))
        keys = scrambled.sample(5000)
        unique, counts = np.unique(keys, return_counts=True)
        hottest_key = unique[np.argmax(counts)]
        assert hottest_key != 0  # rank 0 is hashed elsewhere

    def test_popularity_decreases_with_rank(self):
        generator = ZipfianGenerator(100)
        assert generator.popularity(0) > generator.popularity(10) > generator.popularity(99)

    def test_popularity_sums_to_one(self):
        generator = ZipfianGenerator(200)
        total = sum(generator.popularity(r) for r in range(200))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_single_key_space(self):
        generator = ZipfianGenerator(1, rng=np.random.default_rng(0))
        assert generator.next_key() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)
        with pytest.raises(ValueError):
            ZipfianGenerator(10).popularity(10)
        with pytest.raises(ValueError):
            ZipfianGenerator(10).sample(-1)


class TestUniformKeyGenerator:
    def test_keys_within_range(self):
        generator = UniformKeyGenerator(50, rng=np.random.default_rng(0))
        keys = generator.sample(1000)
        assert keys.min() >= 0 and keys.max() < 50

    def test_roughly_uniform(self):
        generator = UniformKeyGenerator(10, rng=np.random.default_rng(1))
        keys = generator.sample(10_000)
        _, counts = np.unique(keys, return_counts=True)
        assert counts.min() > 800

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformKeyGenerator(0)
