"""Unit tests for the baseline selectors (LOR, ORA, RAND, LRT, P2C, WRAND)."""

import numpy as np
import pytest

from repro.core.feedback import ServerFeedback
from repro.strategies import (
    LeastOutstandingSelector,
    LeastResponseTimeSelector,
    OracleSelector,
    PowerOfTwoSelector,
    RandomSelector,
    WeightedRandomSelector,
)


class TestLeastOutstanding:
    def test_prefers_server_with_fewest_outstanding(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(0))
        d1 = selector.submit("r1", ("a", "b"), 0.0)
        d2 = selector.submit("r2", ("a", "b"), 0.0)
        # The two requests must go to different servers.
        assert {d1.server_id, d2.server_id} == {"a", "b"}

    def test_response_frees_capacity(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(0))
        d1 = selector.submit("r1", ("a", "b"), 0.0)
        selector.on_response(d1.server_id, None, 1.0, 1.0)
        assert selector.outstanding(d1.server_id) == 0

    def test_duplicate_sends_counted(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(0))
        selector.on_duplicate_send("a", 0.0)
        assert selector.outstanding("a") == 1

    def test_timeout_decrements(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(0))
        d = selector.submit("r", ("a",), 0.0)
        selector.on_timeout(d.server_id, 1.0)
        assert selector.outstanding(d.server_id) == 0

    def test_ties_broken_randomly(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(42))
        chosen = {selector.choose(("a", "b", "c"), 0.0) for _ in range(60)}
        assert len(chosen) > 1


class TestOracle:
    def test_chooses_lowest_queue_times_service(self):
        state = {"a": (10, 4.0), "b": (1, 4.0), "c": (0, 100.0)}
        selector = OracleSelector(server_state_fn=lambda s: state[s])
        assert selector.choose(("a", "b", "c"), 0.0) == "b"

    def test_accounts_for_service_time(self):
        state = {"fast_long_queue": (5, 1.0), "slow_empty": (0, 50.0)}
        selector = OracleSelector(server_state_fn=lambda s: state[s])
        assert selector.choose(tuple(state), 0.0) == "fast_long_queue"

    def test_requires_state_fn(self):
        with pytest.raises(ValueError):
            OracleSelector(server_state_fn=None)

    def test_invalid_service_time_raises(self):
        selector = OracleSelector(server_state_fn=lambda s: (1, 0.0))
        with pytest.raises(ValueError):
            selector.choose(("a",), 0.0)


class TestRandom:
    def test_uniform_coverage(self):
        selector = RandomSelector(rng=np.random.default_rng(0))
        counts = {"a": 0, "b": 0, "c": 0}
        for _ in range(600):
            counts[selector.choose(("a", "b", "c"), 0.0)] += 1
        assert all(count > 120 for count in counts.values())


class TestLeastResponseTime:
    def test_prefers_lowest_smoothed_response_time(self):
        selector = LeastResponseTimeSelector(alpha=1.0, rng=np.random.default_rng(0))
        selector.on_response("slow", None, 50.0, 1.0)
        selector.on_response("fast", None, 2.0, 1.0)
        assert selector.choose(("slow", "fast"), 2.0) == "fast"

    def test_unsampled_servers_explored_first(self):
        selector = LeastResponseTimeSelector(rng=np.random.default_rng(0))
        selector.on_response("known", None, 5.0, 1.0)
        assert selector.choose(("known", "unknown"), 2.0) == "unknown"

    def test_smoothed_value_accessor(self):
        selector = LeastResponseTimeSelector(alpha=0.5)
        selector.on_response("a", None, 10.0, 1.0)
        selector.on_response("a", None, 0.0, 2.0)
        assert selector.smoothed_response_time("a") == pytest.approx(5.0)


class TestPowerOfTwo:
    def test_single_member_group(self):
        selector = PowerOfTwoSelector(rng=np.random.default_rng(0))
        assert selector.choose(("only",), 0.0) == "only"

    def test_prefers_less_loaded_of_sampled_pair(self):
        selector = PowerOfTwoSelector(rng=np.random.default_rng(0))
        for _ in range(5):
            selector.record_send("a", 0.0)
        counts = {"a": 0, "b": 0}
        for _ in range(100):
            counts[selector.choose(("a", "b"), 0.0)] += 1
        assert counts["b"] > counts["a"]

    def test_feedback_updates_load_estimate(self):
        selector = PowerOfTwoSelector(alpha=1.0, rng=np.random.default_rng(0))
        selector.record_response("a", ServerFeedback(queue_size=9, service_time=1.0), 1.0, 1.0)
        assert selector.load_estimate("a") == pytest.approx(9.0)

    def test_outstanding_counts_balanced_by_responses(self):
        selector = PowerOfTwoSelector(rng=np.random.default_rng(0))
        selector.record_send("a", 0.0)
        selector.record_response("a", None, 1.0, 1.0)
        assert selector.load_estimate("a") == 0.0


class TestWeightedRandom:
    def test_invalid_signal_rejected(self):
        with pytest.raises(ValueError):
            WeightedRandomSelector(signal="nonsense")

    def test_prefers_low_cost_servers(self):
        selector = WeightedRandomSelector(signal="outstanding", rng=np.random.default_rng(0))
        for _ in range(20):
            selector.record_send("loaded", 0.0)
        counts = {"loaded": 0, "idle": 0}
        for _ in range(300):
            counts[selector.choose(("loaded", "idle"), 0.0)] += 1
        assert counts["idle"] > counts["loaded"]

    @pytest.mark.parametrize("signal", ["outstanding", "queue", "response_time"])
    def test_all_signals_work(self, signal):
        selector = WeightedRandomSelector(signal=signal, rng=np.random.default_rng(0))
        decision = selector.submit("r", ("a", "b"), 0.0)
        selector.on_response(decision.server_id, ServerFeedback(queue_size=1, service_time=1.0), 2.0, 1.0)
        assert selector.cost(decision.server_id) >= 0.0
