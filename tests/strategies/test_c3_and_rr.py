"""Unit tests for the C3 selector adapter and the rate-limited round-robin."""


from repro.core.config import C3Config
from repro.core.feedback import ServerFeedback
from repro.strategies import C3Selector, RoundRobinSelector


class TestC3Selector:
    def _selector(self, **overrides):
        defaults = dict(initial_rate=2.0, rate_delta_ms=10.0, concurrency_weight=1.0)
        defaults.update(overrides)
        return C3Selector(C3Config(**defaults))

    def test_submit_and_response_round_trip(self):
        selector = self._selector()
        decision = selector.submit("r", ("a", "b"), 0.0)
        assert decision.sent
        released = selector.on_response(decision.server_id, ServerFeedback(1, 2.0), 3.0, 1.0)
        assert released == []
        assert selector.scheduler.scorer.total_outstanding() == 0

    def test_backpressure_and_release_via_response(self):
        selector = self._selector(initial_rate=1.0)
        assert selector.submit("r1", ("a",), 0.0).sent
        blocked = selector.submit("r2", ("a",), 0.0)
        assert blocked.backpressured
        assert selector.pending_backlog() == 1
        released = selector.on_response("a", ServerFeedback(1, 2.0), 3.0, 15.0)
        assert released == [("r2", "a")]
        assert selector.pending_backlog() == 0

    def test_drain_backlog_direct(self):
        selector = self._selector(initial_rate=1.0)
        selector.submit("r1", ("a",), 0.0)
        selector.submit("r2", ("a",), 0.0)
        assert selector.drain_backlog(0.0) == []
        released = selector.drain_backlog(25.0)
        assert released == [("r2", "a")]

    def test_next_retry_ms(self):
        selector = self._selector(initial_rate=1.0)
        selector.submit("r1", ("a",), 0.0)
        selector.submit("r2", ("a",), 0.0)
        assert selector.next_retry_ms(0.0) > 0.0
        selector.drain_backlog(25.0)
        assert selector.next_retry_ms(25.0) is None

    def test_duplicate_send_tracked_in_outstanding(self):
        selector = self._selector()
        selector.on_duplicate_send("a", 0.0)
        assert selector.scheduler.scorer.outstanding("a") == 1
        selector.on_response("a", None, 1.0, 1.0)
        assert selector.scheduler.scorer.outstanding("a") == 0

    def test_rate_history_available_when_enabled(self):
        selector = C3Selector(C3Config(initial_rate=2.0), record_rate_history=True)
        selector.submit("r", ("a",), 0.0)
        assert selector.rate_history("a") == []
        assert "a" in selector.sending_rates()

    def test_stats_shape(self):
        selector = self._selector()
        selector.submit("r", ("a",), 0.0)
        stats = selector.stats()
        assert stats["submitted"] == 1 and stats["sent"] == 1

    def test_rate_control_disabled_never_backpressures(self):
        selector = C3Selector(C3Config(rate_control_enabled=False, initial_rate=1.0))
        decisions = [selector.submit(f"r{i}", ("a",), 0.0) for i in range(10)]
        assert all(d.sent for d in decisions)


class TestRoundRobinSelector:
    def test_rotates_through_replicas(self):
        selector = RoundRobinSelector(C3Config(initial_rate=100.0))
        order = [selector.submit(i, ("a", "b", "c"), 0.0).server_id for i in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_separate_cursor_per_group(self):
        selector = RoundRobinSelector(C3Config(initial_rate=100.0))
        first_group = selector.submit(0, ("a", "b"), 0.0).server_id
        other_group = selector.submit(1, ("x", "y"), 0.0).server_id
        assert first_group == "a" and other_group == "x"

    def test_skips_rate_limited_replica(self):
        selector = RoundRobinSelector(C3Config(initial_rate=1.0, rate_delta_ms=10.0))
        first = selector.submit(0, ("a", "b"), 0.0)
        second = selector.submit(1, ("a", "b"), 0.0)
        assert {first.server_id, second.server_id} == {"a", "b"}
        third = selector.submit(2, ("a", "b"), 0.0)
        assert third.backpressured

    def test_backlog_released_after_window(self):
        selector = RoundRobinSelector(C3Config(initial_rate=1.0, rate_delta_ms=10.0))
        selector.submit(0, ("a",), 0.0)
        blocked = selector.submit(1, ("a",), 0.0)
        assert blocked.backpressured
        released = selector.on_response("a", None, 1.0, 15.0)
        assert [req for req, _ in released] == [1]
        assert selector.pending_backlog() == 0

    def test_unlimited_variant_never_backpressures(self):
        selector = RoundRobinSelector(C3Config(initial_rate=1.0), rate_limited=False)
        decisions = [selector.submit(i, ("a",), 0.0) for i in range(5)]
        assert all(d.sent for d in decisions)
        assert selector.drain_backlog(0.0) == []

    def test_next_retry_none_when_empty(self):
        selector = RoundRobinSelector(C3Config())
        assert selector.next_retry_ms(0.0) is None

    def test_stats(self):
        selector = RoundRobinSelector(C3Config(initial_rate=1.0))
        selector.submit(0, ("a",), 0.0)
        selector.submit(1, ("a",), 0.0)
        stats = selector.stats()
        assert stats["submitted"] == 2 and stats["backpressured"] == 1
