"""Unit tests for the Dynamic Snitching model."""

import numpy as np
import pytest

from repro.strategies.dynamic_snitch import DynamicSnitchSelector


def make_selector(**overrides):
    defaults = dict(update_interval_ms=100.0, rng=np.random.default_rng(0))
    defaults.update(overrides)
    return DynamicSnitchSelector(**defaults)


class TestScoring:
    def test_prefers_lower_latency_peer_after_update(self):
        selector = make_selector()
        for _ in range(5):
            selector.record_response("slow", None, 50.0, 0.0)
            selector.record_response("fast", None, 2.0, 0.0)
        # Force a recomputation by moving past the update interval.
        assert selector.choose(("slow", "fast"), now=200.0) == "fast"

    def test_scores_are_stale_between_recomputations(self):
        """The weakness §2.3 highlights: scores only move at fixed intervals."""
        selector = make_selector()
        selector.record_response("a", None, 1.0, 0.0)
        selector.record_response("b", None, 100.0, 0.0)
        assert selector.choose(("a", "b"), now=150.0) == "a"
        recomputations = selector.score_recomputations
        # New information arrives making "a" terrible...
        for _ in range(10):
            selector.record_response("a", None, 500.0, 151.0)
        # ...but within the same interval the choice does not change.
        assert selector.choose(("a", "b"), now=200.0) == "a"
        assert selector.score_recomputations == recomputations
        # After the interval elapses the ranking flips.
        assert selector.choose(("a", "b"), now=260.0) == "b"

    def test_iowait_dominates_latency(self):
        iowait = {"compacting": 0.9, "idle": 0.0}
        selector = make_selector(iowait_fn=lambda s: iowait[s], iowait_weight=100.0)
        # "compacting" has better latency history but high gossiped iowait.
        for _ in range(5):
            selector.record_response("compacting", None, 1.0, 0.0)
            selector.record_response("idle", None, 10.0, 0.0)
        assert selector.choose(("compacting", "idle"), now=200.0) == "idle"

    def test_history_reset_after_reset_interval(self):
        selector = make_selector(reset_interval_ms=1_000.0)
        selector.record_response("a", None, 50.0, 0.0)
        selector.choose(("a",), now=150.0)
        selector.choose(("a",), now=1_500.0)
        assert selector.history_resets >= 1

    def test_score_recomputation_counter(self):
        selector = make_selector()
        selector.record_response("a", None, 1.0, 0.0)
        selector.choose(("a",), now=150.0)
        selector.choose(("a",), now=160.0)
        selector.choose(("a",), now=300.0)
        assert selector.score_recomputations == 2

    def test_badness_threshold_prefers_static_first_replica(self):
        selector = make_selector(badness_threshold=0.5)
        for _ in range(5):
            selector.record_response("static_first", None, 10.0, 0.0)
            selector.record_response("slightly_better", None, 9.0, 0.0)
        # The dynamic best is within the threshold of the static choice, so
        # the static (first-listed) replica is used.
        assert selector.choose(("static_first", "slightly_better"), now=200.0) == "static_first"

    def test_unknown_peers_score_zero(self):
        selector = make_selector()
        assert selector.score("never-seen") == 0.0


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DynamicSnitchSelector(update_interval_ms=0.0)
        with pytest.raises(ValueError):
            DynamicSnitchSelector(reset_interval_ms=0.0)
        with pytest.raises(ValueError):
            DynamicSnitchSelector(badness_threshold=1.0)

    def test_stats_shape(self):
        selector = make_selector()
        selector.record_response("a", None, 1.0, 0.0)
        stats = selector.stats()
        assert stats["tracked_peers"] == 1
        assert "score_recomputations" in stats
