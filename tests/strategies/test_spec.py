"""Tests for the strategy registry and the StrategySpec API.

Three layers of guarantees:

* **Registry** — every strategy registers exactly once, aliases resolve,
  duplicates are rejected, unknown names/params fail with a did-you-mean
  suggestion instead of a deep ``TypeError``.
* **Spec canonicalization** — parse/format round-trips, every accepted
  spelling (bare name, spec string, mapping, StrategySpec) of the same
  configuration normalizes to the same canonical string and digest
  (pinned), and defaults are dropped.
* **Byte-identity** — configs built from bare strategy names produce the
  exact payloads, cache keys, and simulation digests they produced before
  the registry redesign (pinned pre-redesign hashes), and parameterized
  specs are behaviourally identical to the legacy ``c3_config`` escape
  hatch.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import C3Config
from repro.runner.spec import config_to_payload, content_hash
from repro.simulator import SimulationConfig, run_simulation
from repro.strategies import (
    STRATEGY_NAMES,
    C3Selector,
    StrategySpec,
    get_strategy,
    make_selector,
    resolve_strategy,
    strategy_names,
)
from repro.strategies.registry import StrategyInfo, _register


def fake_state(server_id):
    return (1.0, 4.0)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_strategy_names_matches_legacy_tuple(self):
        assert strategy_names() == ("C3", "ORA", "LOR", "RR", "RAND", "LRT", "P2C", "WRAND", "DS")
        assert STRATEGY_NAMES == strategy_names()

    @pytest.mark.parametrize("alias,canonical", [
        ("ORACLE", "ORA"),
        ("least_outstanding", "LOR"),
        ("Round_Robin", "RR"),
        ("random", "RAND"),
        ("LEAST_RESPONSE_TIME", "LRT"),
        ("power_of_two", "P2C"),
        ("weighted_random", "WRAND"),
        ("dynamic_snitch", "DS"),
        ("c3", "C3"),
    ])
    def test_aliases_resolve_case_insensitively(self, alias, canonical):
        assert resolve_strategy(alias).name == canonical

    def test_unknown_name_has_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'C3'"):
            resolve_strategy("c33")

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid names: C3, ORA, LOR"):
            resolve_strategy("definitely-not-a-strategy")

    def test_duplicate_name_rejected(self):
        info = get_strategy("LOR")
        with pytest.raises(ValueError, match="already registered"):
            _register(dataclasses.replace(info))

    def test_duplicate_alias_rejected(self):
        info = get_strategy("LOR")
        with pytest.raises(ValueError, match="already registered"):
            _register(dataclasses.replace(info, name="LOR2", aliases=("RANDOM",)))

    def test_every_registration_has_description_and_params(self):
        for name in strategy_names():
            info = get_strategy(name)
            assert isinstance(info, StrategyInfo)
            assert info.description
            assert dataclasses.is_dataclass(info.params_cls)

    def test_param_aliases_reported_per_field(self):
        info = get_strategy("C3")
        assert info.aliases_for("gamma") == ("cubic_c",)
        assert info.aliases_for("score_exponent") == ("b",)
        assert info.aliases_for("beta") == ()


# ---------------------------------------------------------------------------
# Spec parsing and canonicalization
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_bare_name_stays_bare(self):
        assert StrategySpec.parse("C3").canonical() == "C3"
        assert StrategySpec.parse("lor").canonical() == "LOR"

    def test_params_parse_and_canonicalize(self):
        spec = StrategySpec.parse("c3:cubic_c=2e-4")
        assert spec.name == "C3"
        assert spec.params_dict == {"gamma": 0.0002}
        assert spec.canonical() == "C3:gamma=0.0002"

    def test_default_valued_params_are_dropped(self):
        assert StrategySpec.parse("c3:score_exponent=3.0") == StrategySpec.parse("C3")
        assert StrategySpec.parse("c3:b=3") == StrategySpec.parse("C3")
        assert StrategySpec.parse("ds:iowait_weight=100") == StrategySpec.parse("DS")

    def test_params_sorted_in_canonical_form(self):
        a = StrategySpec.parse("c3:beta=0.5,b=2")
        b = StrategySpec.parse("c3:b=2,beta=0.5")
        assert a == b
        assert a.canonical() == "C3:beta=0.5,score_exponent=2.0"

    def test_mapping_form(self):
        spec = StrategySpec.parse({"name": "c3", "params": {"cubic_c": 2e-4}})
        assert spec == StrategySpec.parse("c3:cubic_c=2e-4")

    def test_mapping_form_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            StrategySpec.parse({"name": "c3", "param": {}})

    def test_spec_passthrough_is_idempotent(self):
        spec = StrategySpec.parse("rr:rate_limited=false")
        assert StrategySpec.parse(spec) == spec

    def test_unknown_param_has_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'cubic_c'"):
            StrategySpec.parse("c3:cubicc=1e-4")

    def test_unknown_param_lists_valid_params(self):
        with pytest.raises(ValueError, match="valid parameters"):
            StrategySpec.parse("lrt:alhpa=0.5")

    def test_strategy_with_no_params_rejects_any_param(self):
        with pytest.raises(ValueError, match=r"valid parameters: \(none\)"):
            StrategySpec.parse("lor:alpha=0.5")

    def test_malformed_pairs_rejected(self):
        with pytest.raises(ValueError, match="expected KEY=VALUE"):
            StrategySpec.parse("c3:beta")
        with pytest.raises(ValueError, match="no parameters"):
            StrategySpec.parse("c3:")
        with pytest.raises(ValueError, match="repeated"):
            StrategySpec.parse("c3:beta=0.4,beta=0.5")

    def test_alias_and_target_together_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            StrategySpec.parse("c3:cubic_c=1e-4,gamma=2e-4")

    def test_value_type_coercion_and_rejection(self):
        assert StrategySpec.parse("c3:b=2").params_dict == {"score_exponent": 2.0}
        with pytest.raises(ValueError, match="expects"):
            StrategySpec.parse("c3:beta=fast")
        with pytest.raises(ValueError, match="boolean"):
            StrategySpec.parse("c3:beta=true")

    def test_non_finite_floats_rejected_at_parse_time(self):
        # repr(nan)/repr(inf) are not JSON, so accepting them would break
        # the parse(canonical()) round trip and poison stored configs.
        for bad in ("lrt:alpha=NaN", "c3:beta=Infinity", "c3:gamma=-Infinity"):
            with pytest.raises(ValueError, match="must be finite"):
                StrategySpec.parse(bad)

    def test_value_validation_happens_at_parse_time(self):
        with pytest.raises(ValueError, match="beta"):
            StrategySpec.parse("c3:beta=2")
        with pytest.raises(ValueError, match="signal"):
            StrategySpec.parse("wrand:signal=bogus")
        with pytest.raises(ValueError, match="badness_threshold"):
            StrategySpec.parse("ds:badness_threshold=1.5")


#: Valid example values per (strategy, param) for the round-trip suite.
_PARAM_VALUES = {
    "C3": {
        "score_exponent": (1.0, 2.0, 4.0),
        "concurrency_weight": (0.0, 1.0, 150.0),
        "beta": (0.1, 0.5, 0.9),
        "gamma": (2e-4, 8e-4, 1.5),
        "initial_rate": (1.0, 100.0),
        "rate_control_enabled": (True, False),
        "max_rate": (50.0, 1000.0),
    },
    "RR": {
        "rate_limited": (True, False),
        "initial_rate": (5.0, 50.0),
        "beta": (0.1, 0.8),
    },
    "LRT": {"alpha": (0.1, 0.5, 0.99)},
    "P2C": {"alpha": (0.1, 0.5, 0.99)},
    "WRAND": {"signal": ("outstanding", "queue", "response_time"), "alpha": (0.25, 0.75)},
    "DS": {
        "update_interval_ms": (50.0, 250.0),
        "iowait_weight": (1.0, 10.0, 200.0),
        "badness_threshold": (0.0, 0.2, 0.9),
        "history_size": (10, 500),
    },
}


@st.composite
def strategy_specs(draw):
    """A random valid (strategy, params) choice drawn from the table above."""
    name = draw(st.sampled_from(sorted(_PARAM_VALUES)))
    pool = _PARAM_VALUES[name]
    keys = draw(st.lists(st.sampled_from(sorted(pool)), unique=True, max_size=len(pool)))
    params = {key: draw(st.sampled_from(pool[key])) for key in keys}
    return name, params


class TestSpecProperties:
    @settings(max_examples=150, deadline=None)
    @given(strategy_specs())
    def test_canonical_round_trip(self, case):
        name, params = case
        spec = StrategySpec.of(name, params)
        reparsed = StrategySpec.parse(spec.canonical())
        assert reparsed == spec
        assert reparsed.canonical() == spec.canonical()

    @settings(max_examples=150, deadline=None)
    @given(strategy_specs())
    def test_digest_is_spelling_independent(self, case):
        name, params = case
        spec = StrategySpec.of(name, params)
        # Same configuration via string, mapping, and lower-case spellings.
        assert StrategySpec.parse(spec.canonical()).digest() == spec.digest()
        assert StrategySpec.parse({"name": name.lower(), "params": params}).digest() == spec.digest()

    @settings(max_examples=150, deadline=None)
    @given(strategy_specs())
    def test_config_normalization_matches_spec(self, case):
        name, params = case
        spec = StrategySpec.of(name, params)
        config = SimulationConfig(strategy={"name": name, "params": params})
        assert config.strategy == spec.canonical()
        assert config.strategy_spec == spec

    def test_pinned_spec_digests(self):
        # Digest stability contract: these pins only move if the canonical
        # form or hashing scheme changes, which invalidates every cache.
        assert StrategySpec.parse("C3").digest() == (
            "88195afd91f230da97fe6548cc7bf87cac57440ace5321756b9ebbca4fc72495"
        )
        assert StrategySpec.parse("c3:cubic_c=2e-4").digest() == (
            "911465971e4b05cfad66308eb856c7bc6dac18a5c56966c32e5c2293de29c368"
        )
        assert StrategySpec.parse("LOR").digest() == (
            "db996231b88ecae96b497f553c10e38ac7d9058e96fcf216140d285c0ae5c9e9"
        )
        assert StrategySpec.parse("rr:rate_limited=false").digest() == (
            "578285dd19762e7a7a16e06df437ec8195431a99f3f9285a5c37eeec09e3adda"
        )


# ---------------------------------------------------------------------------
# Byte-identity with the pre-registry era
# ---------------------------------------------------------------------------


class TestBareNameByteIdentity:
    #: content_hash(config_to_payload(...)) captured BEFORE the registry
    #: redesign: bare-name configs must keep their exact cache keys.
    PRE_REDESIGN_PAYLOAD_HASHES = {
        "default": (
            dict(),
            "89cb3c7f04920724ead6817b4b1a5d9ce5382824be1963bdce9862a201b02ad2",
        ),
        "lor_small": (
            dict(num_servers=9, num_clients=10, num_requests=300, utilization=0.6,
                 strategy="LOR", seed=7),
            "4440ec4e27fe900d4682708b7d627f0ed14c139bcd1f04f5788e03f49785fe1d",
        ),
        "rr_interval": (
            dict(num_servers=9, num_clients=10, num_requests=250, utilization=0.7,
                 strategy="RR", seed=11, fluctuation_interval_ms=50.0),
            "e00f92ad3000f2751d6473c06bff7cb903966494103cf5ab7cf124be59d3fb83",
        ),
    }

    @pytest.mark.parametrize("label", sorted(PRE_REDESIGN_PAYLOAD_HASHES))
    def test_payload_hash_unchanged(self, label):
        overrides, expected = self.PRE_REDESIGN_PAYLOAD_HASHES[label]
        payload = config_to_payload(SimulationConfig(**overrides))
        assert content_hash(payload) == expected, (
            f"cache key for bare-name config {label!r} drifted from its "
            "pre-redesign value — every cached sweep trial would be invalidated"
        )

    def test_strategy_field_stays_a_plain_name(self):
        assert config_to_payload(SimulationConfig())["strategy"] == "C3"
        assert config_to_payload(SimulationConfig(strategy="c3"))["strategy"] == "C3"

    def test_spec_equivalent_to_c3_config_escape_hatch(self):
        # A parameterized spec must reproduce the legacy c3_config path
        # measurement-for-measurement: same selector configuration, same RNG
        # draws, same latencies.  (The full digests differ only by design —
        # they include the strategy label, which the spec run reports in its
        # parameterized canonical form.)
        base = dict(num_servers=9, num_clients=10, num_requests=200, utilization=0.6, seed=3)
        via_spec = run_simulation(SimulationConfig(strategy="c3:b=2,beta=0.4", **base))
        via_config = run_simulation(
            SimulationConfig(
                strategy="C3",
                c3_config=C3Config(score_exponent=2.0, beta=0.4).with_clients(10),
                **base,
            )
        )
        assert via_spec.strategy == "C3:beta=0.4,score_exponent=2.0"
        assert np.array_equal(via_spec.latencies_ms, via_config.latencies_ms)
        assert via_spec.summary.as_dict() == via_config.summary.as_dict()
        assert via_spec.completed_requests == via_config.completed_requests
        assert via_spec.backpressure_events == via_config.backpressure_events

    def test_spec_params_change_the_measurement(self):
        base = dict(num_servers=9, num_clients=10, num_requests=200, utilization=0.9, seed=3)
        default = run_simulation(SimulationConfig(strategy="C3", **base))
        ranked_only = run_simulation(
            SimulationConfig(strategy="C3:rate_control_enabled=false", **base)
        )
        assert default.digest() != ranked_only.digest()


# ---------------------------------------------------------------------------
# Building from specs
# ---------------------------------------------------------------------------


class TestSpecBuild:
    def test_c3_params_applied_over_base_config(self):
        selector = StrategySpec.parse("c3:cubic_c=2e-4,b=2").build(
            c3_config=C3Config().with_clients(40)
        )
        assert isinstance(selector, C3Selector)
        assert selector.config.gamma == 0.0002
        assert selector.config.score_exponent == 2.0
        assert selector.config.concurrency_weight == 40.0  # base kept where unset

    def test_make_selector_accepts_spec_strings(self):
        selector = make_selector("rr:rate_limited=false")
        assert selector.rate_limited is False

    def test_make_selector_kwargs_validated_with_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'signal'"):
            make_selector("WRAND", signall="queue", rng=np.random.default_rng(0))

    def test_make_selector_kwargs_override_spec_params(self):
        selector = make_selector("lrt:alpha=0.5", alpha=0.25)
        assert selector.alpha == 0.25

    def test_oracle_still_requires_state_fn(self):
        with pytest.raises(ValueError, match="requires server_state_fn"):
            StrategySpec.parse("ORA").build()
        assert StrategySpec.parse("oracle").build(server_state_fn=fake_state) is not None

    def test_simulation_runs_with_param_specs(self):
        result = run_simulation(
            SimulationConfig(
                num_servers=9, num_clients=8, num_requests=150, utilization=0.6,
                strategy="ds:badness_threshold=0.2", seed=1,
            )
        )
        assert result.completed_requests == 150
        assert result.strategy == "DS:badness_threshold=0.2"
