"""Unit tests for the strategy factory and the selector interface contract."""

import numpy as np
import pytest

from repro.core.config import C3Config
from repro.strategies import (
    STRATEGY_NAMES,
    C3Selector,
    DynamicSnitchSelector,
    LeastOutstandingSelector,
    OracleSelector,
    RoundRobinSelector,
    make_selector,
)
from repro.strategies.base import SelectorDecision


def fake_state(server_id):
    return (1.0, 4.0)


class TestFactory:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_every_registered_name_builds(self, name):
        selector = make_selector(
            name,
            config=C3Config(),
            rng=np.random.default_rng(0),
            server_state_fn=fake_state,
            iowait_fn=lambda s: 0.0,
        )
        assert selector is not None

    def test_name_is_case_insensitive(self):
        assert isinstance(make_selector("c3"), C3Selector)
        assert isinstance(make_selector("lor"), LeastOutstandingSelector)

    def test_aliases(self):
        assert isinstance(make_selector("dynamic_snitch"), DynamicSnitchSelector)
        assert isinstance(make_selector("round_robin"), RoundRobinSelector)
        assert isinstance(make_selector("oracle", server_state_fn=fake_state), OracleSelector)

    def test_oracle_requires_state_fn(self):
        with pytest.raises(ValueError):
            make_selector("ORA")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_selector("definitely-not-a-strategy")

    def test_config_forwarded_to_c3(self):
        config = C3Config(score_exponent=2.0)
        selector = make_selector("C3", config=config)
        assert selector.config.score_exponent == 2.0


class TestSelectorContract:
    """Every selector obeys the submit/on_response interface contract."""

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_submit_returns_group_member_or_backpressure(self, name):
        selector = make_selector(
            name,
            config=C3Config(initial_rate=100.0),
            rng=np.random.default_rng(1),
            server_state_fn=fake_state,
            iowait_fn=lambda s: 0.0,
        )
        group = ("a", "b", "c")
        decision = selector.submit("request", group, now=0.0)
        assert isinstance(decision, SelectorDecision)
        assert decision.sent
        assert decision.server_id in group

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_on_response_returns_list(self, name):
        selector = make_selector(
            name,
            config=C3Config(initial_rate=100.0),
            rng=np.random.default_rng(1),
            server_state_fn=fake_state,
            iowait_fn=lambda s: 0.0,
        )
        decision = selector.submit("request", ("a", "b"), now=0.0)
        released = selector.on_response(decision.server_id, None, 3.0, now=1.0)
        assert isinstance(released, list)

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_stats_returns_dict(self, name):
        selector = make_selector(
            name,
            config=C3Config(),
            rng=np.random.default_rng(1),
            server_state_fn=fake_state,
            iowait_fn=lambda s: 0.0,
        )
        assert isinstance(selector.stats(), dict)

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_empty_group_rejected(self, name):
        selector = make_selector(
            name,
            config=C3Config(),
            rng=np.random.default_rng(1),
            server_state_fn=fake_state,
            iowait_fn=lambda s: 0.0,
        )
        with pytest.raises(ValueError):
            selector.submit("request", (), now=0.0)
