"""Tests for the selector base classes and default behaviours."""

import pytest

from repro.strategies.base import ReplicaSelector, SelectorDecision, StatefulSelector


class MinimalSelector(StatefulSelector):
    """The smallest possible strategy: always pick the first replica."""

    name = "FIRST"

    def choose(self, replica_group, now):
        return replica_group[0]


class BrokenSelector(StatefulSelector):
    """A strategy that violates the contract by returning a non-member."""

    def choose(self, replica_group, now):
        return "not-in-group"


class TestSelectorDecision:
    def test_sent_property(self):
        assert SelectorDecision(server_id="a").sent
        assert not SelectorDecision(server_id=None, backpressured=True).sent

    def test_defaults(self):
        decision = SelectorDecision(server_id="a")
        assert decision.retry_after_ms == 0.0
        assert decision.backpressured is False


class TestStatefulSelectorDefaults:
    def test_submit_uses_choose(self):
        selector = MinimalSelector()
        decision = selector.submit("r", ("x", "y"), 0.0)
        assert decision.server_id == "x"
        assert selector.requests_submitted == 1

    def test_choose_must_return_group_member(self):
        with pytest.raises(ValueError):
            BrokenSelector().submit("r", ("a", "b"), 0.0)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            MinimalSelector().submit("r", (), 0.0)

    def test_on_response_returns_empty_list_and_counts(self):
        selector = MinimalSelector()
        selector.submit("r", ("x",), 0.0)
        assert selector.on_response("x", None, 1.0, 1.0) == []
        assert selector.responses_received == 1

    def test_default_backlog_behaviour(self):
        selector = MinimalSelector()
        assert selector.drain_backlog(0.0) == []
        assert selector.pending_backlog() == 0
        assert selector.next_retry_ms(0.0) is None

    def test_default_hooks_are_noops(self):
        selector = MinimalSelector()
        selector.on_timeout("x", 0.0)
        selector.on_duplicate_send("x", 0.0)
        assert selector.stats()["submitted"] == 0

    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            ReplicaSelector()
