"""Unit tests for the EWMA primitives."""

import math

import pytest

from repro.core.ewma import EWMA, TimeDecayedEWMA


class TestEWMA:
    def test_first_sample_seeds_value(self):
        ewma = EWMA(alpha=0.5)
        assert not ewma.initialized
        ewma.update(10.0)
        assert ewma.value == 10.0
        assert ewma.initialized

    def test_smoothing_formula(self):
        ewma = EWMA(alpha=0.25)
        ewma.update(100.0)
        ewma.update(0.0)
        assert ewma.value == pytest.approx(0.25 * 0.0 + 0.75 * 100.0)

    def test_alpha_one_tracks_latest_sample(self):
        ewma = EWMA(alpha=1.0)
        for value in (5.0, 9.0, 2.0):
            ewma.update(value)
            assert ewma.value == value

    def test_initial_value_is_respected(self):
        ewma = EWMA(alpha=0.5, initial=40.0)
        assert ewma.value == 40.0
        ewma.update(0.0)
        assert ewma.value == pytest.approx(20.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)

    def test_nan_rejected(self):
        ewma = EWMA()
        with pytest.raises(ValueError):
            ewma.update(float("nan"))

    def test_count_tracks_updates(self):
        ewma = EWMA()
        for i in range(7):
            ewma.update(float(i))
        assert ewma.count == 7

    def test_reset_clears_state(self):
        ewma = EWMA()
        ewma.update(3.0)
        ewma.reset()
        assert not ewma.initialized
        assert ewma.value == 0.0
        assert ewma.count == 0

    def test_reset_with_seed_value(self):
        ewma = EWMA()
        ewma.update(3.0)
        ewma.reset(7.0)
        assert ewma.value == 7.0

    def test_value_defaults_to_zero(self):
        assert EWMA().value == 0.0

    def test_converges_to_constant_input(self):
        ewma = EWMA(alpha=0.3)
        for _ in range(200):
            ewma.update(42.0)
        assert ewma.value == pytest.approx(42.0)


class TestTimeDecayedEWMA:
    def test_first_sample_seeds_value(self):
        ewma = TimeDecayedEWMA(tau=50.0)
        ewma.update(12.0, now=0.0)
        assert ewma.value == 12.0

    def test_long_gap_nearly_replaces_value(self):
        ewma = TimeDecayedEWMA(tau=10.0)
        ewma.update(100.0, now=0.0)
        ewma.update(0.0, now=1000.0)
        assert ewma.value == pytest.approx(0.0, abs=1e-6)

    def test_short_gap_changes_value_slowly(self):
        ewma = TimeDecayedEWMA(tau=1000.0)
        ewma.update(100.0, now=0.0)
        ewma.update(0.0, now=1.0)
        assert ewma.value > 90.0

    def test_weight_matches_exponential_formula(self):
        tau, dt = 20.0, 5.0
        ewma = TimeDecayedEWMA(tau=tau)
        ewma.update(10.0, now=0.0)
        ewma.update(30.0, now=dt)
        weight = 1.0 - math.exp(-dt / tau)
        assert ewma.value == pytest.approx(weight * 30.0 + (1 - weight) * 10.0)

    def test_zero_gap_still_moves_value(self):
        ewma = TimeDecayedEWMA(tau=100.0)
        ewma.update(0.0, now=5.0)
        ewma.update(100.0, now=5.0)
        assert ewma.value > 0.0

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            TimeDecayedEWMA(tau=0.0)

    def test_nan_rejected(self):
        ewma = TimeDecayedEWMA()
        with pytest.raises(ValueError):
            ewma.update(float("nan"), now=0.0)

    def test_reset(self):
        ewma = TimeDecayedEWMA()
        ewma.update(5.0, now=1.0)
        ewma.reset()
        assert not ewma.initialized
        assert ewma.count == 0
