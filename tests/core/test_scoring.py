"""Unit tests for the replica-ranking scorer."""

import pytest

from repro.core.config import C3Config
from repro.core.feedback import ServerFeedback
from repro.core.scoring import ReplicaScorer, cubic_score


class TestCubicScore:
    def test_reduces_to_response_time_when_queue_is_one(self):
        # Ψ = R - 1/μ̄ + q̂³/μ̄; with q̂ = 1 the last two terms cancel.
        assert cubic_score(response_time=7.0, queue_estimate=1.0, service_time=4.0) == pytest.approx(7.0)

    def test_cubic_growth_in_queue(self):
        # Isolate the queue term by adding back the constant -1/μ̄ offset.
        service = 4.0
        s1 = cubic_score(0.0, 2.0, service) + service
        s2 = cubic_score(0.0, 4.0, service) + service
        assert s2 / s1 == pytest.approx(8.0)

    def test_slower_server_scores_worse_at_equal_queue(self):
        fast = cubic_score(0.0, 5.0, 4.0)
        slow = cubic_score(0.0, 5.0, 20.0)
        assert slow > fast

    def test_figure4_equal_score_point(self):
        # A queue of 20 at the 20 ms server equals a queue of 20·(20/4)^(1/3)
        # at the 4 ms server under the cubic score (queue-dominated regime).
        q_fast = 20.0 * (20.0 / 4.0) ** (1.0 / 3.0)
        slow = cubic_score(0.0, 20.0, 20.0) + 20.0
        fast = cubic_score(0.0, q_fast, 4.0) + 4.0
        assert fast == pytest.approx(slow, rel=1e-6)

    def test_linear_exponent_matches_linear_formula(self):
        score = cubic_score(0.0, 10.0, 4.0, exponent=1.0)
        assert score == pytest.approx(-4.0 + 10.0 * 4.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cubic_score(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            cubic_score(0.0, -1.0, 1.0)


class TestReplicaScorerState:
    def test_outstanding_tracking(self):
        scorer = ReplicaScorer()
        scorer.on_send("a", now=0.0)
        scorer.on_send("a", now=0.0)
        scorer.on_send("b", now=0.0)
        assert scorer.outstanding("a") == 2
        assert scorer.outstanding("b") == 1
        assert scorer.total_outstanding() == 3
        scorer.on_response("a", None, response_time=1.0, now=1.0)
        assert scorer.outstanding("a") == 1

    def test_response_never_drops_outstanding_below_zero(self):
        scorer = ReplicaScorer()
        scorer.on_response("a", None, response_time=1.0, now=1.0)
        assert scorer.outstanding("a") == 0

    def test_feedback_updates_ewmas(self):
        scorer = ReplicaScorer(C3Config(ewma_alpha=1.0))
        fb = ServerFeedback(queue_size=6, service_time=8.0)
        scorer.on_send("a", 0.0)
        scorer.on_response("a", fb, response_time=12.0, now=1.0)
        stats = scorer.stats_for("a")
        assert stats.queue_size.value == 6.0
        assert stats.service_time.value == 8.0
        assert stats.response_time.value == 12.0
        assert stats.feedback_count == 1

    def test_response_without_feedback_still_updates_response_time(self):
        scorer = ReplicaScorer(C3Config(ewma_alpha=1.0))
        scorer.on_send("a", 0.0)
        scorer.on_response("a", None, response_time=9.0, now=1.0)
        stats = scorer.stats_for("a")
        assert stats.response_time.value == 9.0
        assert stats.feedback_count == 0

    def test_negative_response_time_rejected(self):
        scorer = ReplicaScorer()
        with pytest.raises(ValueError):
            scorer.on_response("a", None, response_time=-1.0, now=0.0)

    def test_timeout_decrements_and_optionally_penalises(self):
        scorer = ReplicaScorer(C3Config(ewma_alpha=1.0))
        scorer.on_send("a", 0.0)
        scorer.on_timeout("a", penalty_ms=500.0)
        assert scorer.outstanding("a") == 0
        assert scorer.stats_for("a").response_time.value == 500.0

    def test_reset_server_forgets_state(self):
        scorer = ReplicaScorer()
        scorer.on_send("a", 0.0)
        scorer.reset_server("a")
        assert "a" not in scorer.known_servers
        assert scorer.outstanding("a") == 0

    def test_snapshot_contains_all_servers(self):
        scorer = ReplicaScorer()
        scorer.on_send("a", 0.0)
        scorer.on_send("b", 0.0)
        snap = scorer.snapshot()
        assert set(snap) == {"a", "b"}
        assert snap["a"]["outstanding"] == 1


class TestReplicaScorerQueueEstimate:
    def test_queue_estimate_includes_concurrency_compensation(self):
        config = C3Config(concurrency_weight=10.0, ewma_alpha=1.0)
        scorer = ReplicaScorer(config)
        scorer.on_send("a", 0.0)
        scorer.on_send("a", 0.0)
        # q̂ = 1 + os·w + q̄ = 1 + 2·10 + 0
        assert scorer.queue_estimate("a") == pytest.approx(21.0)

    def test_queue_estimate_includes_feedback(self):
        config = C3Config(concurrency_weight=1.0, ewma_alpha=1.0)
        scorer = ReplicaScorer(config)
        scorer.on_send("a", 0.0)
        scorer.on_response("a", ServerFeedback(queue_size=5, service_time=2.0), 3.0, 1.0)
        assert scorer.queue_estimate("a") == pytest.approx(1.0 + 0.0 + 5.0)

    def test_unknown_server_has_baseline_estimate(self):
        scorer = ReplicaScorer()
        assert scorer.queue_estimate("never-seen") == pytest.approx(1.0)


class TestReplicaScorerRanking:
    def _loaded_scorer(self):
        config = C3Config(ewma_alpha=1.0, concurrency_weight=1.0)
        scorer = ReplicaScorer(config)
        # Server "fast": low queue, low service time.
        scorer.on_send("fast", 0.0)
        scorer.on_response("fast", ServerFeedback(queue_size=1, service_time=2.0), 3.0, 1.0)
        # Server "slow": long queue, high service time.
        scorer.on_send("slow", 0.0)
        scorer.on_response("slow", ServerFeedback(queue_size=10, service_time=10.0), 40.0, 1.0)
        return scorer

    def test_rank_prefers_lower_score(self):
        scorer = self._loaded_scorer()
        assert scorer.rank(["slow", "fast"]) == ["fast", "slow"]
        assert scorer.best(["slow", "fast"]) == "fast"

    def test_scores_mapping_matches_score(self):
        scorer = self._loaded_scorer()
        scores = scorer.scores(["fast", "slow"])
        assert scores["fast"] == pytest.approx(scorer.score("fast"))
        assert scores["slow"] == pytest.approx(scorer.score("slow"))

    def test_outstanding_requests_push_ranking_away(self):
        config = C3Config(ewma_alpha=1.0, concurrency_weight=5.0)
        scorer = ReplicaScorer(config)
        for server in ("a", "b"):
            scorer.on_send(server, 0.0)
            scorer.on_response(server, ServerFeedback(queue_size=2, service_time=4.0), 5.0, 1.0)
        # Pile outstanding requests onto "a".
        for _ in range(5):
            scorer.on_send("a", 2.0)
        assert scorer.best(["a", "b"]) == "b"

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ReplicaScorer().rank([])

    def test_ranking_is_deterministic_for_equal_scores(self):
        scorer = ReplicaScorer()
        first = scorer.rank(["x", "y", "z"])
        second = scorer.rank(["z", "y", "x"])
        assert first == second

    def test_higher_demand_client_ranks_shared_server_worse(self):
        """The concurrency-compensation property from §3.1."""
        config = C3Config(ewma_alpha=1.0, concurrency_weight=3.0)
        light, heavy = ReplicaScorer(config), ReplicaScorer(config)
        feedback = ServerFeedback(queue_size=4, service_time=4.0)
        for scorer in (light, heavy):
            scorer.on_send("s", 0.0)
            scorer.on_response("s", feedback, 6.0, 1.0)
        for _ in range(4):
            heavy.on_send("s", 2.0)
        assert heavy.score("s") > light.score("s")


class TestDenseLayout:
    """The dense-array restructuring: vectorized scores and kernel views."""

    @staticmethod
    def _random_scorer(rng, num_servers, config=None):
        scorer = ReplicaScorer(config or C3Config(ewma_alpha=0.7, concurrency_weight=2.0))
        for _ in range(200):
            sid = int(rng.integers(num_servers))
            scorer.on_send(sid, float(rng.random()))
            if rng.random() < 0.8:
                feedback = ServerFeedback(
                    queue_size=float(rng.integers(0, 30)),
                    service_time=float(rng.uniform(0.001, 25.0)),
                )
                scorer.on_response(sid, feedback, float(rng.uniform(0.0, 50.0)), 1.0)
        return scorer

    def test_scores_array_bitwise_equals_scalar_scores(self):
        """The vectorized group scoring must be *bitwise* equal to the scalar
        loop — golden digests ride on these scores, and ``rank`` switches
        between the two paths purely on group width."""
        np = pytest.importorskip("numpy")
        for seed in range(20):
            rng = np.random.default_rng(seed)
            scorer = self._random_scorer(rng, num_servers=24)
            group = list(range(24))
            vectorized = scorer.scores_array(group).tolist()
            scalar = [scorer.score(sid) for sid in group]
            assert vectorized == scalar  # exact, not approx

    def test_wide_rank_matches_narrow_rank(self):
        """rank's vectorization threshold is a pure performance knob."""
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(3)
        scorer = self._random_scorer(rng, num_servers=40)
        group = list(range(40))
        wide = scorer.rank(group)
        # Rebuild the expected order from scalar scores with the same
        # decorate-sort contract rank applies.
        decorated = sorted(
            (scorer.score(sid), scorer.outstanding(sid), f"int:{sid!r}", k)
            for k, sid in enumerate(group)
        )
        assert wide == [group[d[3]] for d in decorated]

    def test_kernel_state_returns_live_views_for_integer_ids(self):
        scorer = ReplicaScorer()
        state = scorer.kernel_state(4)
        assert state is not None
        rt_val, rt_cnt = state[0], state[1]
        # Views are live: a scorer-method update is immediately visible.
        scorer.on_response(2, None, 12.5, 0.0)
        assert rt_val[2] == 12.5 and rt_cnt[2] == 1
        # And a direct array write is visible through the scorer API.
        out = state[6]
        out[1] += 3
        assert scorer.outstanding(1) == 3

    def test_kernel_state_refuses_non_identity_slots(self):
        scorer = ReplicaScorer()
        scorer.on_send("west-1", 0.0)  # first-contact slot 0 is not server 0
        assert scorer.kernel_state(3) is None

    def test_kernel_restore_folds_counter_deltas(self):
        scorer = ReplicaScorer()
        scorer.on_send(0, 0.0)
        scorer.kernel_restore(sends=10, responses=7, score_evaluations=42)
        assert scorer.counters.sends == 11
        assert scorer.counters.responses == 7
        assert scorer.counters.score_evaluations == 42
