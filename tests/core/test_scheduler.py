"""Unit tests for the C3 scheduler (Algorithms 1 and 2)."""

import pytest

from repro.core.config import C3Config
from repro.core.feedback import ServerFeedback
from repro.core.scheduler import C3Scheduler


def make_scheduler(**overrides) -> C3Scheduler:
    defaults = dict(initial_rate=2.0, rate_delta_ms=10.0, concurrency_weight=1.0)
    defaults.update(overrides)
    return C3Scheduler(C3Config(**defaults))


class TestSubmit:
    def test_submit_selects_a_group_member(self):
        scheduler = make_scheduler()
        decision = scheduler.submit("req", ("a", "b", "c"), now=0.0)
        assert decision.sent
        assert decision.server_id in ("a", "b", "c")
        assert decision.ranking and set(decision.ranking) == {"a", "b", "c"}

    def test_submit_empty_group_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler().submit("req", (), now=0.0)

    def test_submit_increments_outstanding(self):
        scheduler = make_scheduler()
        decision = scheduler.submit("req", ("a", "b"), now=0.0)
        assert scheduler.scorer.outstanding(decision.server_id) == 1

    def test_submit_prefers_better_scored_replica(self):
        scheduler = make_scheduler(ewma_alpha=1.0)
        # Teach the scorer that "slow" has a long queue and high service time.
        scheduler.scorer.on_send("slow", 0.0)
        scheduler.scorer.on_response("slow", ServerFeedback(queue_size=20, service_time=20.0), 50.0, 1.0)
        scheduler.scorer.on_send("fast", 0.0)
        scheduler.scorer.on_response("fast", ServerFeedback(queue_size=1, service_time=2.0), 3.0, 1.0)
        decision = scheduler.submit("req", ("slow", "fast"), now=2.0)
        assert decision.server_id == "fast"

    def test_backpressure_when_all_replicas_rate_limited(self):
        scheduler = make_scheduler(initial_rate=1.0)
        group = ("a", "b")
        # Exhaust both servers' windows.
        sent = [scheduler.submit(f"r{i}", group, now=0.0) for i in range(2)]
        assert all(d.sent for d in sent)
        blocked = scheduler.submit("r-extra", group, now=0.0)
        assert blocked.backpressured and not blocked.sent
        assert blocked.retry_after_ms > 0.0
        assert scheduler.pending_backlog() == 1
        assert scheduler.requests_backpressured == 1

    def test_rate_control_disabled_never_backpressures(self):
        scheduler = make_scheduler(rate_control_enabled=False, initial_rate=1.0)
        decisions = [scheduler.submit(f"r{i}", ("a",), now=0.0) for i in range(20)]
        assert all(d.sent for d in decisions)
        assert scheduler.pending_backlog() == 0


class TestOnResponse:
    def test_response_updates_scorer_and_rate_control(self):
        scheduler = make_scheduler()
        decision = scheduler.submit("req", ("a",), now=0.0)
        scheduler.on_response(decision.server_id, ServerFeedback(queue_size=2, service_time=3.0), 4.0, 5.0)
        assert scheduler.scorer.outstanding("a") == 0
        assert scheduler.responses_received == 1

    def test_response_releases_backlog(self):
        scheduler = make_scheduler(initial_rate=1.0)
        group = ("a",)
        first = scheduler.submit("r1", group, now=0.0)
        assert first.sent
        blocked = scheduler.submit("r2", group, now=0.0)
        assert blocked.backpressured
        # A window later the limiter refills; the response triggers a drain.
        released = scheduler.on_response("a", ServerFeedback(queue_size=1, service_time=2.0), 3.0, now=15.0)
        assert [(entry.request, server) for entry, server in released] == [("r2", "a")]
        assert scheduler.pending_backlog() == 0

    def test_drain_backlog_without_permits_keeps_requests(self):
        scheduler = make_scheduler(initial_rate=1.0)
        scheduler.submit("r1", ("a",), now=0.0)
        scheduler.submit("r2", ("a",), now=0.0)
        assert scheduler.pending_backlog() == 1
        assert scheduler.drain_backlog(now=0.0) == []
        assert scheduler.pending_backlog() == 1

    def test_next_backlog_retry_hint(self):
        scheduler = make_scheduler(initial_rate=1.0)
        scheduler.submit("r1", ("a",), now=0.0)
        scheduler.submit("r2", ("a",), now=0.0)
        hint = scheduler.next_backlog_retry_ms(now=0.0)
        assert hint is not None and hint > 0.0

    def test_next_backlog_retry_none_when_empty(self):
        assert make_scheduler().next_backlog_retry_ms(0.0) is None

    def test_on_timeout_decrements_outstanding(self):
        scheduler = make_scheduler()
        decision = scheduler.submit("req", ("a",), now=0.0)
        scheduler.on_timeout(decision.server_id, now=1.0)
        assert scheduler.scorer.outstanding("a") == 0


class TestStats:
    def test_stats_shape(self):
        scheduler = make_scheduler()
        scheduler.submit("r", ("a", "b"), now=0.0)
        stats = scheduler.stats()
        assert stats["submitted"] == 1
        assert stats["sent"] == 1
        assert "backlog" in stats and "scorer" in stats

    def test_sending_rates_exposed(self):
        scheduler = make_scheduler()
        scheduler.submit("r", ("a",), now=0.0)
        assert "a" in scheduler.sending_rates()
