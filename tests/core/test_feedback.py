"""Unit tests for the server feedback record."""

import pytest

from repro.core.feedback import ServerFeedback


class TestServerFeedback:
    def test_valid_feedback(self):
        fb = ServerFeedback(queue_size=3, service_time=4.0, server_id="s1")
        assert fb.queue_size == 3
        assert fb.service_time == 4.0
        assert fb.server_id == "s1"

    def test_service_rate_is_inverse_of_service_time(self):
        fb = ServerFeedback(queue_size=0, service_time=4.0)
        assert fb.service_rate == pytest.approx(0.25)

    def test_zero_queue_allowed(self):
        assert ServerFeedback(queue_size=0, service_time=1.0).queue_size == 0

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            ServerFeedback(queue_size=-1, service_time=1.0)

    def test_nonpositive_service_time_rejected(self):
        with pytest.raises(ValueError):
            ServerFeedback(queue_size=0, service_time=0.0)
        with pytest.raises(ValueError):
            ServerFeedback(queue_size=0, service_time=-2.0)

    def test_frozen(self):
        fb = ServerFeedback(queue_size=1, service_time=1.0)
        with pytest.raises(AttributeError):
            fb.queue_size = 5

    def test_default_server_id_is_none(self):
        assert ServerFeedback(queue_size=1, service_time=1.0).server_id is None
