"""Property-based tests (hypothesis) for the core C3 data structures."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import C3Config
from repro.core.ewma import EWMA
from repro.core.feedback import ServerFeedback
from repro.core.rate_control import RateLimiter, cubic_rate
from repro.core.scheduler import C3Scheduler
from repro.core.scoring import ReplicaScorer, cubic_score

positive_floats = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestEWMAProperties:
    @given(st.lists(small_floats, min_size=1, max_size=50), st.floats(min_value=0.01, max_value=1.0))
    def test_value_stays_within_sample_bounds(self, samples, alpha):
        ewma = EWMA(alpha=alpha)
        for sample in samples:
            ewma.update(sample)
        assert min(samples) - 1e-9 <= ewma.value <= max(samples) + 1e-9

    @given(st.lists(small_floats, min_size=1, max_size=50))
    def test_count_matches_updates(self, samples):
        ewma = EWMA()
        for sample in samples:
            ewma.update(sample)
        assert ewma.count == len(samples)


class TestScoreProperties:
    @given(small_floats, positive_floats, positive_floats)
    def test_score_monotone_in_queue_estimate(self, response_time, service_time, queue):
        lower = cubic_score(response_time, queue, service_time)
        higher = cubic_score(response_time, queue + 1.0, service_time)
        assert higher >= lower

    @given(small_floats, positive_floats, st.floats(min_value=1.5, max_value=100.0))
    def test_score_monotone_in_service_time_for_long_queues(self, response_time, service_time, queue):
        """With q̂ > 1 a slower server (larger 1/μ) must never score better."""
        slower = cubic_score(response_time, queue, service_time * 2.0)
        faster = cubic_score(response_time, queue, service_time)
        assert slower >= faster

    @given(
        st.lists(st.tuples(st.integers(0, 30), positive_floats, small_floats), min_size=1, max_size=8)
    )
    def test_rank_is_a_permutation_and_best_has_min_score(self, server_specs):
        scorer = ReplicaScorer(C3Config(ewma_alpha=1.0))
        group = []
        for idx, (queue, service_time, response_time) in enumerate(server_specs):
            server_id = f"s{idx}"
            group.append(server_id)
            scorer.on_send(server_id, 0.0)
            scorer.on_response(
                server_id,
                ServerFeedback(queue_size=queue, service_time=service_time),
                response_time,
                1.0,
            )
        ranking = scorer.rank(group)
        assert sorted(ranking) == sorted(group)
        scores = scorer.scores(group)
        assert scores[ranking[0]] == min(scores.values())


class TestCubicRateProperties:
    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.1, max_value=500.0),
        st.floats(min_value=0.05, max_value=0.9),
        st.floats(min_value=1e-7, max_value=1.0),
    )
    def test_cubic_rate_is_monotone_in_elapsed_time(self, elapsed, r0, beta, gamma):
        assert cubic_rate(elapsed + 1.0, r0, beta, gamma) >= cubic_rate(elapsed, r0, beta, gamma)

    @given(st.floats(min_value=0.1, max_value=500.0), st.floats(min_value=0.05, max_value=0.9))
    def test_rate_at_zero_below_saturation(self, r0, beta):
        gamma = 1e-4
        assert cubic_rate(0.0, r0, beta, gamma) <= r0


class TestRateLimiterProperties:
    @given(
        st.floats(min_value=0.2, max_value=20.0),
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=100),
    )
    @settings(max_examples=50)
    def test_grants_never_exceed_rate_plus_carry_budget(self, rate, gaps):
        """Over any run, grants are bounded by the elapsed windows' budget."""
        delta = 10.0
        limiter = RateLimiter(rate=rate, delta_ms=delta)
        now = 0.0
        grants = 0
        for gap in gaps:
            now += gap
            if limiter.try_acquire(now):
                grants += 1
        windows_elapsed = int(now // delta) + 1
        budget = windows_elapsed * rate + max(rate, 1.0)
        assert grants <= budget + 1e-9


class TestSchedulerProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_of_requests(self, group_picks, group_count):
        """Every submitted request is either sent or sits in the backlog."""
        config = C3Config(initial_rate=2.0, rate_delta_ms=10.0)
        scheduler = C3Scheduler(config)
        groups = [tuple(f"s{g}_{i}" for i in range(3)) for g in range(group_count)]
        now = 0.0
        for pick in group_picks:
            group = groups[pick % group_count]
            scheduler.submit(object(), group, now)
            now += 0.5
        assert scheduler.requests_sent + scheduler.pending_backlog() == scheduler.requests_submitted

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_outstanding_counts_return_to_zero(self, n_requests):
        config = C3Config(initial_rate=1000.0)
        scheduler = C3Scheduler(config)
        group = ("a", "b", "c")
        sent_to = []
        for i in range(n_requests):
            decision = scheduler.submit(i, group, now=float(i))
            assert decision.sent
            sent_to.append(decision.server_id)
        for i, server in enumerate(sent_to):
            scheduler.on_response(server, ServerFeedback(queue_size=1, service_time=1.0), 1.0, 100.0 + i)
        assert scheduler.scorer.total_outstanding() == 0
