"""Unit tests for C3Config."""

import pytest

from repro.core.config import C3Config


class TestC3ConfigDefaults:
    def test_paper_defaults(self):
        config = C3Config()
        assert config.score_exponent == 3.0
        assert config.beta == 0.2
        assert config.rate_delta_ms == 20.0
        assert config.smax == 10.0
        assert config.saddle_duration_ms == 100.0

    def test_default_hysteresis_is_twice_rate_window(self):
        config = C3Config(rate_delta_ms=20.0)
        assert config.effective_hysteresis_ms == 40.0

    def test_explicit_hysteresis_wins(self):
        config = C3Config(hysteresis_ms=7.0)
        assert config.effective_hysteresis_ms == 7.0


class TestC3ConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"score_exponent": 0.0},
            {"concurrency_weight": -1.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"rate_delta_ms": 0.0},
            {"beta": 0.0},
            {"beta": 1.0},
            {"smax": 0.0},
            {"initial_rate": 0.0},
            {"min_rate": 0.0},
            {"max_rate": 0.01, "min_rate": 0.5},
            {"gamma": -1.0},
            {"hysteresis_ms": -1.0},
            {"rate_excess_tolerance": 0.5},
            {"rate_min_utilisation": 1.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            C3Config(**kwargs)


class TestC3ConfigHelpers:
    def test_with_clients_sets_concurrency_weight(self):
        config = C3Config().with_clients(120)
        assert config.concurrency_weight == 120.0

    def test_with_clients_returns_copy(self):
        base = C3Config()
        derived = base.with_clients(10)
        assert base.concurrency_weight == 1.0
        assert derived is not base

    def test_with_clients_rejects_negative(self):
        with pytest.raises(ValueError):
            C3Config().with_clients(-1)

    def test_copy_applies_overrides(self):
        config = C3Config().copy(beta=0.5, smax=3.0)
        assert config.beta == 0.5
        assert config.smax == 3.0

    def test_effective_gamma_uses_explicit_value(self):
        config = C3Config(gamma=0.123)
        assert config.effective_gamma(100.0) == 0.123

    def test_effective_gamma_scales_with_saturation_rate(self):
        config = C3Config(saddle_duration_ms=100.0)
        low = config.effective_gamma(10.0)
        high = config.effective_gamma(100.0)
        assert high > low > 0

    def test_derived_gamma_puts_inflection_at_half_saddle(self):
        config = C3Config(saddle_duration_ms=100.0, beta=0.2)
        rate = 50.0
        gamma = config.effective_gamma(rate)
        inflection = (config.beta * rate / gamma) ** (1.0 / 3.0)
        assert inflection == pytest.approx(50.0, rel=1e-6)
