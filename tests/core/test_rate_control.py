"""Unit tests for the CUBIC rate controller, limiter and trackers."""

import pytest

from repro.core.config import C3Config
from repro.core.rate_control import (
    CubicRateController,
    PerServerRateControl,
    RateLimiter,
    ReceiveRateTracker,
    cubic_rate,
)


class TestCubicRateFunction:
    def test_rate_at_inflection_equals_saturation_rate(self):
        r0, beta, gamma = 50.0, 0.2, 1e-4
        inflection = (beta * r0 / gamma) ** (1.0 / 3.0)
        assert cubic_rate(inflection, r0, beta, gamma) == pytest.approx(r0)

    def test_rate_at_zero_is_r0_times_one_minus_beta(self):
        r0, beta, gamma = 50.0, 0.2, 1e-4
        assert cubic_rate(0.0, r0, beta, gamma) == pytest.approx(r0 * (1.0 - beta))

    def test_monotonically_increasing(self):
        r0, beta, gamma = 20.0, 0.2, 1e-4
        samples = [cubic_rate(t, r0, beta, gamma) for t in range(0, 300, 10)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    def test_probing_region_exceeds_r0(self):
        r0, beta, gamma = 20.0, 0.2, 1e-4
        assert cubic_rate(500.0, r0, beta, gamma) > r0

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            cubic_rate(1.0, 1.0, 0.2, 0.0)

    def test_negative_saturation_rejected(self):
        with pytest.raises(ValueError):
            cubic_rate(1.0, -1.0, 0.2, 1.0)


class TestRateLimiter:
    def test_admits_up_to_rate_per_window(self):
        limiter = RateLimiter(rate=3.0, delta_ms=10.0)
        grants = [limiter.try_acquire(0.0) for _ in range(5)]
        assert grants == [True, True, True, False, False]

    def test_window_roll_replenishes(self):
        limiter = RateLimiter(rate=2.0, delta_ms=10.0)
        assert limiter.try_acquire(0.0)
        assert limiter.try_acquire(0.0)
        assert not limiter.try_acquire(5.0)
        assert limiter.try_acquire(10.0)

    def test_fractional_rate_eventually_grants(self):
        """Rates below one request per window must not starve forever."""
        limiter = RateLimiter(rate=0.25, delta_ms=10.0)
        assert not limiter.try_acquire(0.0)
        granted_at = None
        t = 0.0
        while t < 200.0:
            t += 10.0
            if limiter.try_acquire(t):
                granted_at = t
                break
        assert granted_at is not None and granted_at <= 50.0

    def test_unused_allowance_carries_bounded(self):
        limiter = RateLimiter(rate=2.0, delta_ms=10.0)
        # Skip many idle windows; the carried allowance is bounded by one
        # bucket (max(rate, 1)), so at most rate + carry permits are granted.
        grants = sum(limiter.try_acquire(1000.0) for _ in range(10))
        assert grants <= 4

    def test_time_until_available_zero_when_permits_left(self):
        limiter = RateLimiter(rate=2.0, delta_ms=10.0)
        assert limiter.time_until_available(0.0) == 0.0

    def test_time_until_available_after_exhaustion(self):
        limiter = RateLimiter(rate=1.0, delta_ms=10.0)
        assert limiter.try_acquire(2.0)
        wait = limiter.time_until_available(2.0)
        assert 0.0 < wait <= 10.0

    def test_rate_setter_validation(self):
        limiter = RateLimiter(rate=1.0)
        with pytest.raises(ValueError):
            limiter.rate = 0.0

    def test_clock_rewind_resets_window(self):
        limiter = RateLimiter(rate=1.0, delta_ms=10.0)
        limiter.try_acquire(100.0)
        # Rewinding the clock must not crash or starve.
        assert limiter.try_acquire(0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, delta_ms=0.0)


class TestReceiveRateTracker:
    def test_rate_reflects_responses_per_window(self):
        tracker = ReceiveRateTracker(delta_ms=10.0, alpha=1.0)
        for t in (1.0, 2.0, 3.0):
            tracker.record_response(t)
        # Roll into the next window so the previous one is folded in.
        assert tracker.rate(15.0) == pytest.approx(3.0)

    def test_rate_extrapolates_before_first_window_completes(self):
        tracker = ReceiveRateTracker(delta_ms=10.0)
        tracker.record_response(1.0)
        assert tracker.rate(2.0) > 0.0

    def test_idle_windows_decay_rate(self):
        tracker = ReceiveRateTracker(delta_ms=10.0, alpha=0.5)
        for t in (1.0, 2.0, 3.0, 4.0):
            tracker.record_response(t)
        busy = tracker.rate(15.0)
        idle = tracker.rate(200.0)
        assert idle < busy

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ReceiveRateTracker(delta_ms=0.0)


class TestCubicRateController:
    def _config(self, **kw) -> C3Config:
        defaults = dict(initial_rate=10.0, rate_delta_ms=10.0, min_rate=0.5)
        defaults.update(kw)
        return C3Config(**defaults)

    def test_initial_state(self):
        ctrl = CubicRateController(self._config(), "s")
        assert ctrl.srate == 10.0
        assert ctrl.within_rate(0.0)

    def test_decrease_when_server_falls_behind(self):
        config = self._config(hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        # Send at the limit but receive little: srate > rrate and the client
        # is demonstrably using its allowance => multiplicative decrease.
        now = 0.0
        for window in range(6):
            for _ in range(10):
                ctrl.try_acquire(now)
            now += 10.0
            ctrl.on_response(now)
        assert ctrl.decreases >= 1
        assert ctrl.srate < 10.0
        assert ctrl.saturation_rate >= ctrl.srate

    def test_no_decrease_for_light_sender(self):
        """A client sending well below its limit must not collapse its rate."""
        config = self._config(hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        now = 0.0
        for _ in range(50):
            ctrl.try_acquire(now)        # one send per window (10% of limit)
            now += 10.0
            ctrl.on_response(now)        # and its response arrives
        assert ctrl.decreases == 0
        assert ctrl.srate >= 10.0 or ctrl.increases >= 0

    def test_increase_when_receive_rate_exceeds_sending_rate(self):
        config = self._config(initial_rate=2.0, hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        now = 0.0
        # Burst of responses (e.g. a queue draining) => rrate > srate.
        for _ in range(8):
            for _ in range(4):
                ctrl.on_response(now)
            now += 10.0
        assert ctrl.increases >= 1
        assert ctrl.srate > 2.0

    def test_increase_step_capped_by_smax(self):
        config = self._config(initial_rate=2.0, smax=1.0, hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        before = ctrl.srate
        now = 0.0
        for _ in range(4):
            for _ in range(6):
                ctrl.on_response(now)
            now += 10.0
        # Each increase moves by at most smax.
        assert ctrl.srate <= before + ctrl.increases * config.smax + 1e-9

    def test_hysteresis_blocks_decrease_right_after_increase(self):
        config = self._config(initial_rate=2.0, hysteresis_ms=1_000.0)
        ctrl = CubicRateController(config, "s")
        now = 0.0
        # Trigger an increase first (the cubic curve anchored at the initial
        # rate needs to clear its saddle before increases register).
        for _ in range(12):
            for _ in range(5):
                ctrl.on_response(now)
            now += 10.0
        increases = ctrl.increases
        assert increases >= 1
        # Now saturate sends with no responses folding in: decrease should be
        # blocked by the hysteresis window.
        for _ in range(3):
            for _ in range(int(ctrl.srate)):
                ctrl.try_acquire(now)
            now += 10.0
            ctrl.on_response(now)
        assert ctrl.decreases == 0

    def test_rate_never_below_min_rate(self):
        config = self._config(min_rate=0.5, hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        now = 0.0
        for _ in range(40):
            for _ in range(int(max(1, ctrl.srate))):
                ctrl.try_acquire(now)
            now += 10.0
            ctrl.on_response(now)
        assert ctrl.srate >= 0.5

    def test_max_rate_cap_respected(self):
        config = self._config(initial_rate=2.0, max_rate=5.0, hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        now = 0.0
        for _ in range(30):
            for _ in range(10):
                ctrl.on_response(now)
            now += 10.0
        assert ctrl.srate <= 5.0

    def test_history_recorded_when_enabled(self):
        config = self._config(initial_rate=2.0, hysteresis_ms=0.0)
        ctrl = CubicRateController(config, "s")
        ctrl.record_history = True
        now = 0.0
        for _ in range(6):
            for _ in range(5):
                ctrl.on_response(now)
            now += 10.0
        assert len(ctrl.history) == ctrl.increases + ctrl.decreases
        assert all(event.server_id == "s" for event in ctrl.history)


class TestPerServerRateControl:
    def test_controllers_created_lazily(self, c3_config):
        control = PerServerRateControl(c3_config)
        assert len(control) == 0
        control.controller("a")
        assert "a" in control
        assert len(control) == 1

    def test_try_acquire_and_rates(self, c3_config):
        control = PerServerRateControl(c3_config)
        assert control.try_acquire("a", 0.0)
        assert control.rates() == {"a": c3_config.initial_rate}

    def test_earliest_availability_zero_when_any_server_free(self, c3_config):
        control = PerServerRateControl(c3_config)
        # Exhaust "a" but leave "b" untouched.
        while control.try_acquire("a", 0.0):
            pass
        assert control.earliest_availability(["a", "b"], 0.0) == 0.0

    def test_earliest_availability_positive_when_all_exhausted(self, c3_config):
        control = PerServerRateControl(c3_config)
        for server in ("a", "b"):
            while control.try_acquire(server, 0.0):
                pass
        assert control.earliest_availability(["a", "b"], 0.0) > 0.0

    def test_record_history_propagates(self, c3_config):
        control = PerServerRateControl(c3_config, record_history=True)
        assert control.controller("x").record_history is True
