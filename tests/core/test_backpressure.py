"""Unit tests for the backpressure queues."""

import pytest

from repro.core.backpressure import BacklogEntry, BacklogQueue, BackpressureQueues


class TestBacklogQueue:
    def test_push_pop_fifo(self):
        queue = BacklogQueue("g")
        for i in range(3):
            queue.push(BacklogEntry(request=i, replica_group=("a",), enqueued_at=float(i)))
        assert [queue.pop(now=10.0).request for _ in range(3)] == [0, 1, 2]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BacklogQueue("g").pop()

    def test_wait_time_accounting(self):
        queue = BacklogQueue("g")
        queue.push(BacklogEntry(request="r", replica_group=("a",), enqueued_at=5.0))
        queue.pop(now=15.0)
        assert queue.mean_wait_ms == pytest.approx(10.0)

    def test_mean_wait_zero_when_nothing_dequeued(self):
        assert BacklogQueue("g").mean_wait_ms == 0.0

    def test_max_depth_tracked(self):
        queue = BacklogQueue("g")
        for i in range(4):
            queue.push(BacklogEntry(request=i, replica_group=("a",), enqueued_at=0.0))
        queue.pop(0.0)
        assert queue.max_depth == 4

    def test_requeue_front_preserves_order_and_counts_attempts(self):
        queue = BacklogQueue("g")
        queue.push(BacklogEntry(request="first", replica_group=("a",), enqueued_at=0.0))
        queue.push(BacklogEntry(request="second", replica_group=("a",), enqueued_at=0.0))
        entry = queue.pop(0.0)
        queue.requeue_front(entry)
        assert queue.peek().request == "first"
        assert queue.peek().attempts == 1

    def test_drain_empties_queue(self):
        queue = BacklogQueue("g")
        for i in range(3):
            queue.push(BacklogEntry(request=i, replica_group=("a",), enqueued_at=0.0))
        drained = queue.drain()
        assert len(drained) == 3
        assert len(queue) == 0

    def test_bool_and_len(self):
        queue = BacklogQueue("g")
        assert not queue
        queue.push(BacklogEntry(request=1, replica_group=("a",), enqueued_at=0.0))
        assert queue and len(queue) == 1


class TestBackpressureQueues:
    def test_group_key_is_order_insensitive(self):
        assert BackpressureQueues.group_key(["a", "b"]) == BackpressureQueues.group_key(["b", "a"])

    def test_group_key_empty_rejected(self):
        with pytest.raises(ValueError):
            BackpressureQueues.group_key([])

    def test_enqueue_creates_per_group_queues(self):
        queues = BackpressureQueues()
        queues.enqueue("r1", ("a", "b"), now=0.0)
        queues.enqueue("r2", ("b", "c"), now=0.0)
        queues.enqueue("r3", ("b", "a"), now=0.0)
        assert queues.pending() == 3
        assert len(queues.queues()) == 2
        assert queues.backpressure_events == 3

    def test_drain_ready_releases_placeable_entries(self):
        queues = BackpressureQueues()
        queues.enqueue("r1", ("a",), now=0.0)
        queues.enqueue("r2", ("a",), now=0.0)
        released = queues.drain_ready(now=1.0, can_place=lambda entry, now: "a")
        assert [entry.request for entry, _ in released] == ["r1", "r2"]
        assert queues.pending() == 0

    def test_drain_ready_stops_at_blocked_head(self):
        queues = BackpressureQueues()
        queues.enqueue("r1", ("a",), now=0.0)
        queues.enqueue("r2", ("a",), now=0.0)
        released = queues.drain_ready(now=1.0, can_place=lambda entry, now: None)
        assert released == []
        assert queues.pending() == 2

    def test_drain_ready_respects_max_requests(self):
        queues = BackpressureQueues()
        for i in range(5):
            queues.enqueue(i, ("a",), now=0.0)
        released = queues.drain_ready(now=1.0, can_place=lambda e, n: "a", max_requests=2)
        assert len(released) == 2
        assert queues.pending() == 3

    def test_one_blocked_group_does_not_block_others(self):
        """Per-replica-group isolation (§4)."""
        queues = BackpressureQueues()
        queues.enqueue("blocked", ("a", "b"), now=0.0)
        queues.enqueue("free", ("c", "d"), now=0.0)

        def can_place(entry, now):
            return "c" if "c" in entry.replica_group else None

        released = queues.drain_ready(now=1.0, can_place=can_place)
        assert [entry.request for entry, _ in released] == ["free"]
        assert queues.pending() == 1

    def test_stats_aggregation(self):
        queues = BackpressureQueues()
        queues.enqueue("r1", ("a",), now=0.0)
        queues.enqueue("r2", ("b",), now=0.0)
        queues.drain_ready(now=4.0, can_place=lambda e, n: e.replica_group[0])
        stats = queues.stats()
        assert stats["groups"] == 2
        assert stats["pending"] == 0
        assert stats["total_enqueued"] == 2
        assert stats["total_dequeued"] == 2
        assert stats["backpressure_events"] == 2
        assert stats["mean_wait_ms"] == pytest.approx(4.0)
