"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "c3-repro" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig14" in out

    def test_run_light_experiment(self, capsys):
        assert main(["run", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "cubic" in out

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "LOR",
                "--servers", "9",
                "--clients", "10",
                "--requests", "300",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LOR" in out and "p99" in out

    def test_cluster_command(self, capsys):
        code = main(
            [
                "cluster",
                "--strategy", "C3",
                "--nodes", "5",
                "--generators", "6",
                "--duration", "300",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "C3" in out and "throughput" in out


class TestScaleMode:
    def test_simulate_accepts_metrics_mode(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "C3",
                "--servers", "9",
                "--clients", "10",
                "--requests", "300",
                "--metrics-mode", "streaming",
            ]
        )
        assert code == 0
        assert "p99" in capsys.readouterr().out

    def test_simulate_rejects_unknown_metrics_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--metrics-mode", "bogus"])
        assert "invalid choice" in capsys.readouterr().err

    def test_scale_command_reports_fixed_memory_histogram(self, capsys):
        code = main(
            [
                "scale",
                "--servers", "9",
                "--clients", "10",
                "--requests", "1000",
                "--utilization", "0.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming histogram:" in out
        assert "buckets" in out
        assert "digest:" in out

    def test_scale_compare_exact_checks_the_bound(self, capsys):
        code = main(
            [
                "scale",
                "--servers", "9",
                "--clients", "10",
                "--requests", "1500",
                "--utilization", "0.6",
                "--compare-exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all percentiles within the histogram error bound" in out

    def test_scale_rejects_bad_relative_error(self, capsys):
        assert main(["scale", "--requests", "10", "--relative-error", "2.0"]) == 2
        assert "histogram_relative_error" in capsys.readouterr().err

    def test_sweep_streaming_prints_pooled_column(self, capsys):
        code = main(
            [
                "sweep",
                "--strategy", "C3",
                "--utilization", "0.6",
                "--servers", "9",
                "--clients", "8",
                "--requests", "200",
                "--num-seeds", "2",
                "--serial",
                "--no-cache",
                "--metrics-mode", "streaming",
            ]
        )
        assert code == 0
        assert "pooled p99.9" in capsys.readouterr().out
