"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "c3-repro" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig14" in out

    def test_run_light_experiment(self, capsys):
        assert main(["run", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "cubic" in out

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "LOR",
                "--servers", "9",
                "--clients", "10",
                "--requests", "300",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LOR" in out and "p99" in out

    def test_cluster_command(self, capsys):
        code = main(
            [
                "cluster",
                "--strategy", "C3",
                "--nodes", "5",
                "--generators", "6",
                "--duration", "300",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "C3" in out and "throughput" in out
