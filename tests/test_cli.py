"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "c3-repro" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig14" in out

    def test_run_light_experiment(self, capsys):
        assert main(["run", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "cubic" in out

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "LOR",
                "--servers", "9",
                "--clients", "10",
                "--requests", "300",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LOR" in out and "p99" in out

    def test_cluster_command(self, capsys):
        code = main(
            [
                "cluster",
                "--strategy", "C3",
                "--nodes", "5",
                "--generators", "6",
                "--duration", "300",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "C3" in out and "throughput" in out


class TestScaleMode:
    def test_simulate_accepts_metrics_mode(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "C3",
                "--servers", "9",
                "--clients", "10",
                "--requests", "300",
                "--metrics-mode", "streaming",
            ]
        )
        assert code == 0
        assert "p99" in capsys.readouterr().out

    def test_simulate_rejects_unknown_metrics_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--metrics-mode", "bogus"])
        assert "invalid choice" in capsys.readouterr().err

    def test_scale_command_reports_fixed_memory_histogram(self, capsys):
        code = main(
            [
                "scale",
                "--servers", "9",
                "--clients", "10",
                "--requests", "1000",
                "--utilization", "0.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming histogram:" in out
        assert "buckets" in out
        assert "digest:" in out

    def test_scale_compare_exact_checks_the_bound(self, capsys):
        code = main(
            [
                "scale",
                "--servers", "9",
                "--clients", "10",
                "--requests", "1500",
                "--utilization", "0.6",
                "--compare-exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all percentiles within the histogram error bound" in out

    def test_scale_rejects_bad_relative_error(self, capsys):
        assert main(["scale", "--requests", "10", "--relative-error", "2.0"]) == 2
        assert "histogram_relative_error" in capsys.readouterr().err

    def test_sweep_streaming_prints_pooled_column(self, capsys):
        code = main(
            [
                "sweep",
                "--strategy", "C3",
                "--utilization", "0.6",
                "--servers", "9",
                "--clients", "8",
                "--requests", "200",
                "--num-seeds", "2",
                "--serial",
                "--no-cache",
                "--metrics-mode", "streaming",
            ]
        )
        assert code == 0
        assert "pooled p99.9" in capsys.readouterr().out


class TestStrategyRegistryCLI:
    def test_strategies_subcommand_lists_registry(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        # Canonical names, aliases, and param defaults all come from the
        # registry — including the paper-notation param aliases.
        for name in ("C3", "ORA", "LOR", "RR", "RAND", "LRT", "P2C", "WRAND", "DS"):
            assert name in out
        assert "DYNAMIC_SNITCH" in out
        assert "gamma (cubic_c)" in out
        assert "score_exponent (b)" in out
        assert "spec grammar" in out

    def test_simulate_accepts_param_spec(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "c3:cubic_c=2e-4",
                "--servers", "9",
                "--clients", "8",
                "--requests", "200",
            ]
        )
        assert code == 0
        assert "C3:gamma=0.0002" in capsys.readouterr().out

    def test_simulate_rejects_unknown_strategy_cleanly(self, capsys):
        assert main(["simulate", "--strategy", "c33", "--requests", "10"]) == 2
        err = capsys.readouterr().err
        assert "unknown strategy" in err and "did you mean 'C3'" in err

    def test_simulate_rejects_unknown_param_cleanly(self, capsys):
        assert main(["simulate", "--strategy", "c3:cubicc=1e-4", "--requests", "10"]) == 2
        assert "did you mean 'cubic_c'" in capsys.readouterr().err

    def test_cluster_rejects_unknown_strategy_cleanly(self, capsys):
        assert main(["cluster", "--strategy", "bogus", "--duration", "50"]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_sweep_over_strategy_params(self, capsys, tmp_path):
        args = [
            "sweep",
            "--strategy", "c3:cubic_c=2e-4",
            "--strategy", "c3:cubic_c=8e-4",
            "--utilization", "0.6",
            "--servers", "9",
            "--clients", "8",
            "--requests", "150",
            "--num-seeds", "2",
            "--serial",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        # Two parameterizations of one strategy are two grid points, each
        # pooled/aggregated separately under its canonical spec string.
        assert "2 strategy" in first
        assert "C3:gamma=0.0002" in first and "C3:gamma=0.0008" in first
        assert "4 executed, 0 from cache" in first
        # The canonical spec is the cache identity: a rerun is fully cached.
        assert main(args) == 0
        assert "0 executed, 4 from cache" in capsys.readouterr().out

    def test_sweep_rejects_unknown_param_cleanly(self, capsys):
        assert main(["sweep", "--strategy", "c3:bogus=1", "--serial"]) == 2
        assert "unknown parameter 'bogus'" in capsys.readouterr().err
