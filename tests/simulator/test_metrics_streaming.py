"""Scale-mode (streaming) metrics: collector behavior and result semantics.

The contract: switching ``metrics_mode`` changes how latencies are
*collected*, never what the simulation *does* — counters, duration and
load series stay identical between modes on the same seed; percentiles
agree within the histogram error bound; memory stays O(buckets) with no
per-request latency list; and streaming results have their own
deterministic digest, distinct from exact mode's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import quantile_within_bound
from repro.simulator import MetricsCollector, SimulationConfig, run_simulation
from repro.simulator.request import Request, RequestKind


def small_config(**overrides) -> SimulationConfig:
    params = dict(
        num_servers=9,
        num_clients=10,
        num_requests=400,
        utilization=0.6,
        strategy="C3",
        seed=7,
    )
    params.update(overrides)
    return SimulationConfig(**params)


class TestCollectorModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            MetricsCollector(metrics_mode="bogus")
        with pytest.raises(ValueError):
            SimulationConfig(metrics_mode="bogus")
        with pytest.raises(ValueError):
            SimulationConfig(histogram_relative_error=1.5)

    def test_streaming_collector_never_allocates_latency_lists(self):
        collector = MetricsCollector(metrics_mode="streaming")
        assert collector._latencies is None
        assert collector._read_latencies is None
        assert collector._write_latencies is None

    def test_exact_collector_has_no_histograms(self):
        collector = MetricsCollector()
        assert collector._histogram is None

    def test_streaming_memory_is_o_buckets_at_a_million_completions(self):
        """A 1M-completed-request streaming collector holds only buckets.

        Drives ``on_complete`` directly (no event loop) so the test runs in
        seconds: the collector-side guarantee — no per-request latency
        list, bucket count bounded by dynamic range — is exactly what makes
        million-request simulation runs practical.
        """
        collector = MetricsCollector(metrics_mode="streaming")
        rng = np.random.default_rng(1)
        latencies = rng.exponential(scale=8.0, size=1_000_000) + 0.25
        request = Request(
            request_id=0, client_id=0, replica_group=(0,), created_at=0.0, server_id=0
        )
        for i, latency in enumerate(latencies.tolist()):
            request.completed_at = latency  # created_at=0 → latency directly
            collector.on_complete(request, now=float(i % 1000))
        assert collector.completed_requests == 1_000_000
        assert collector._latencies is None  # still no list — O(buckets) only
        histogram = collector._histogram
        assert histogram is not None
        assert histogram.count == 1_000_000
        assert histogram.bucket_count < 1_500
        result = collector.result(duration_ms=1_000.0)
        for q in (0.5, 0.99, 0.999):
            assert quantile_within_bound(histogram, latencies, q)
        assert result.summary.count == 1_000_000

    def test_read_write_split_in_streaming_mode(self):
        collector = MetricsCollector(metrics_mode="streaming")
        read = Request(
            request_id=0, client_id=0, replica_group=(0,), created_at=0.0, server_id=0
        )
        read.completed_at = 5.0
        write = Request(
            request_id=1,
            client_id=0,
            replica_group=(0,),
            created_at=0.0,
            kind=RequestKind.WRITE,
            server_id=0,
        )
        write.completed_at = 9.0
        collector.on_complete(read, now=5.0)
        collector.on_complete(write, now=9.0)
        result = collector.result(duration_ms=10.0)
        assert result.read_latency_histogram.count == 1
        assert result.write_latency_histogram.count == 1
        assert result.read_summary.median == 5.0  # single value → exact


class TestModeEquivalence:
    def test_modes_do_not_change_simulation_dynamics(self):
        exact = run_simulation(small_config())
        streaming = run_simulation(small_config(metrics_mode="streaming"))
        assert streaming.completed_requests == exact.completed_requests
        assert streaming.issued_requests == exact.issued_requests
        assert streaming.duplicate_requests == exact.duplicate_requests
        assert streaming.backpressure_events == exact.backpressure_events
        assert streaming.duration_ms == exact.duration_ms
        assert streaming.per_server_completed == exact.per_server_completed
        for sid, series in exact.server_load_series.items():
            assert np.array_equal(streaming.server_load_series[sid], series)

    def test_streaming_percentiles_within_bound_of_exact(self):
        exact = run_simulation(small_config())
        streaming = run_simulation(small_config(metrics_mode="streaming"))
        histogram = streaming.latency_histogram
        for q in (0.5, 0.95, 0.99, 0.999):
            assert quantile_within_bound(histogram, exact.latencies_ms, q)

    def test_streaming_result_ships_no_latency_arrays(self):
        result = run_simulation(small_config(metrics_mode="streaming"))
        assert result.latencies_ms.size == 0
        assert result.read_latencies_ms.size == 0
        assert result.write_latencies_ms.size == 0
        assert result.metrics_mode == "streaming"
        assert result.latency_histogram is not None


class TestStreamingDigest:
    def test_streaming_digest_is_deterministic(self):
        config = small_config(metrics_mode="streaming")
        assert run_simulation(config).digest() == run_simulation(config).digest()

    def test_streaming_digest_differs_from_exact(self):
        exact = run_simulation(small_config())
        streaming = run_simulation(small_config(metrics_mode="streaming"))
        assert exact.digest() != streaming.digest()

    def test_streaming_digest_covers_seed_and_strategy(self):
        base = run_simulation(small_config(metrics_mode="streaming")).digest()
        other_seed = run_simulation(small_config(metrics_mode="streaming", seed=8)).digest()
        other_strategy = run_simulation(
            small_config(metrics_mode="streaming", strategy="LOR")
        ).digest()
        assert len({base, other_seed, other_strategy}) == 3

    def test_relative_error_changes_the_digest(self):
        a = run_simulation(small_config(metrics_mode="streaming"))
        b = run_simulation(small_config(metrics_mode="streaming", histogram_relative_error=0.05))
        assert a.digest() != b.digest()
