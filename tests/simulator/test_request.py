"""Unit tests for request records."""

import itertools

from repro.simulator.request import Request, RequestKind
from repro.simulator.simulation import ReplicaSelectionSimulation, SimulationConfig


class TestRequest:
    def test_create_assigns_unique_ids(self):
        a = Request.create(client_id=0, replica_group=(1, 2), created_at=0.0)
        b = Request.create(client_id=0, replica_group=(1, 2), created_at=0.0)
        assert a.request_id != b.request_id

    def test_latency_none_until_completed(self):
        request = Request.create(client_id=0, replica_group=(1,), created_at=5.0)
        assert request.latency is None
        request.mark_completed(12.5)
        assert request.latency == 7.5

    def test_mark_dispatched_records_server_and_attempts(self):
        request = Request.create(client_id=0, replica_group=(1, 2), created_at=0.0)
        request.mark_dispatched(1.0, server_id=2)
        assert request.server_id == 2
        assert request.dispatched_at == 1.0
        assert request.attempts == 1

    def test_queueing_delay(self):
        request = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        assert request.queueing_delay is None
        request.mark_dispatched(1.0, 1)
        request.started_service_at = 4.0
        assert request.queueing_delay == 3.0

    def test_duplicate_detection(self):
        parent = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        dup = Request.create(
            client_id=0, replica_group=(1,), created_at=0.0, parent_id=parent.request_id
        )
        assert not parent.is_duplicate
        assert dup.is_duplicate

    def test_replica_group_stored_as_tuple(self):
        request = Request.create(client_id=0, replica_group=[3, 4, 5], created_at=0.0)
        assert request.replica_group == (3, 4, 5)

    def test_default_kind_is_read(self):
        request = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        assert request.kind == RequestKind.READ

    def test_request_kinds_enumerated(self):
        assert set(RequestKind.ALL) == {"read", "write", "read_repair", "speculative"}

    def test_first_completion_wins(self):
        # Under hedging, a straggling response for an already-completed
        # request must not overwrite the winning timestamp.
        request = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        request.mark_completed(3.0)
        request.mark_completed(10.0)
        assert request.completed_at == 3.0
        assert request.latency == 3.0

    def test_create_honors_explicit_id_source(self):
        ids = itertools.count(100)
        a = Request.create(client_id=0, replica_group=(1,), created_at=0.0, id_source=ids)
        b = Request.create(client_id=0, replica_group=(1,), created_at=0.0, id_source=ids)
        assert (a.request_id, b.request_id) == (100, 101)


class TestPerSimulationRequestIds:
    """Request ids must be reproducible run-to-run within one process.

    Pooled sweep workers reuse a process across trials; with the old
    process-global counter the second trial's ids continued where the first
    stopped, so exported traces differed between serial and pooled runs.
    """

    CONFIG = dict(
        num_servers=6,
        replication_factor=3,
        num_clients=4,
        num_requests=60,
        fluctuation_enabled=False,
        strategy="LOR",
        seed=7,
    )

    @staticmethod
    def _run_and_capture_ids(config: SimulationConfig) -> list[int]:
        sim = ReplicaSelectionSimulation(config)
        seen: list[int] = []
        for client in sim.clients:
            original = client.on_request

            def wrapped(request, _original=original):
                seen.append(request.request_id)
                _original(request)

            client.on_request = wrapped
        sim.run()
        return seen

    def test_ids_identical_across_runs_in_one_process(self):
        config = SimulationConfig(**self.CONFIG)
        first = self._run_and_capture_ids(config)
        # Pollute the process-global counter the way unrelated work in a
        # pooled worker would; per-simulation ids must not care.
        for _ in range(500):
            Request.create(client_id="x", replica_group=(0,), created_at=0.0)
        second = self._run_and_capture_ids(config)
        assert first == second
        assert first[0] == 0  # each run's ids start from zero
