"""Unit tests for request records."""

from repro.simulator.request import Request, RequestKind


class TestRequest:
    def test_create_assigns_unique_ids(self):
        a = Request.create(client_id=0, replica_group=(1, 2), created_at=0.0)
        b = Request.create(client_id=0, replica_group=(1, 2), created_at=0.0)
        assert a.request_id != b.request_id

    def test_latency_none_until_completed(self):
        request = Request.create(client_id=0, replica_group=(1,), created_at=5.0)
        assert request.latency is None
        request.mark_completed(12.5)
        assert request.latency == 7.5

    def test_mark_dispatched_records_server_and_attempts(self):
        request = Request.create(client_id=0, replica_group=(1, 2), created_at=0.0)
        request.mark_dispatched(1.0, server_id=2)
        assert request.server_id == 2
        assert request.dispatched_at == 1.0
        assert request.attempts == 1

    def test_queueing_delay(self):
        request = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        assert request.queueing_delay is None
        request.mark_dispatched(1.0, 1)
        request.started_service_at = 4.0
        assert request.queueing_delay == 3.0

    def test_duplicate_detection(self):
        parent = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        dup = Request.create(
            client_id=0, replica_group=(1,), created_at=0.0, parent_id=parent.request_id
        )
        assert not parent.is_duplicate
        assert dup.is_duplicate

    def test_replica_group_stored_as_tuple(self):
        request = Request.create(client_id=0, replica_group=[3, 4, 5], created_at=0.0)
        assert request.replica_group == (3, 4, 5)

    def test_default_kind_is_read(self):
        request = Request.create(client_id=0, replica_group=(1,), created_at=0.0)
        assert request.kind == RequestKind.READ

    def test_request_kinds_enumerated(self):
        assert set(RequestKind.ALL) == {"read", "write", "read_repair", "speculative"}
