"""Integration-level tests for the flat simulation assembly."""

import pytest

from repro.simulator import DemandSkew, SimulationConfig, run_simulation
from repro.simulator.simulation import ReplicaSelectionSimulation

FAST = dict(num_servers=9, num_clients=12, num_requests=600, seed=2)


class TestSimulationConfig:
    def test_capacity_and_arrival_rate(self):
        config = SimulationConfig(
            num_servers=10,
            mean_service_time_ms=4.0,
            server_concurrency=4,
            utilization=0.5,
            fluctuation_multiplier=3.0,
        )
        # capacity = 10 servers * 4 slots * (1/4 ms) * 2 (mean rate factor)
        assert config.system_capacity_per_ms == pytest.approx(20.0)
        assert config.target_arrival_rate_per_ms == pytest.approx(10.0)

    def test_explicit_arrival_rate_override(self):
        config = SimulationConfig(arrival_rate_per_ms=3.0)
        assert config.target_arrival_rate_per_ms == 3.0

    def test_no_fluctuation_rate_factor(self):
        config = SimulationConfig(fluctuation_enabled=False)
        assert config.effective_rate_multiplier == 1.0

    def test_copy_with_overrides(self):
        config = SimulationConfig().copy(strategy="LOR", seed=9)
        assert config.strategy == "LOR" and config.seed == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_servers=2, replication_factor=3)
        with pytest.raises(ValueError):
            SimulationConfig(utilization=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(num_clients=0)


class TestRunSimulation:
    @pytest.mark.parametrize("strategy", ["C3", "LOR", "RR", "ORA", "RAND", "LRT", "P2C", "WRAND"])
    def test_every_strategy_completes_all_requests(self, strategy):
        config = SimulationConfig(strategy=strategy, **FAST)
        result = run_simulation(config)
        assert result.completed_requests == FAST["num_requests"]
        assert result.summary.count == FAST["num_requests"]
        assert result.summary.p999 >= result.summary.median > 0

    def test_same_seed_reproduces_latencies(self):
        a = run_simulation(SimulationConfig(strategy="C3", **FAST))
        b = run_simulation(SimulationConfig(strategy="C3", **FAST))
        assert a.summary.mean == pytest.approx(b.summary.mean)
        assert a.completed_requests == b.completed_requests

    def test_different_seeds_differ(self):
        a = run_simulation(SimulationConfig(strategy="LOR", **FAST))
        b = run_simulation(SimulationConfig(strategy="LOR", **{**FAST, "seed": 99}))
        assert a.summary.mean != pytest.approx(b.summary.mean)

    def test_server_load_is_tracked(self):
        result = run_simulation(SimulationConfig(strategy="LOR", **FAST))
        assert len(result.per_server_completed) > 0
        assert sum(result.per_server_completed.values()) >= result.completed_requests

    def test_read_repair_generates_duplicates(self):
        config = SimulationConfig(strategy="LOR", read_repair_probability=0.5, **FAST)
        result = run_simulation(config)
        assert result.duplicate_requests > 0

    def test_zero_read_repair_generates_none(self):
        config = SimulationConfig(strategy="LOR", read_repair_probability=0.0, **FAST)
        assert run_simulation(config).duplicate_requests == 0

    def test_demand_skew_accepted(self):
        config = SimulationConfig(
            strategy="C3", demand_skew=DemandSkew(0.25, 0.8), **FAST
        )
        result = run_simulation(config)
        assert result.completed_requests == FAST["num_requests"]

    def test_oracle_beats_random_on_tail(self):
        """Sanity check of the qualitative ordering the paper relies on."""
        shared = dict(num_servers=12, num_clients=20, num_requests=3000, seed=5, fluctuation_interval_ms=200.0)
        oracle = run_simulation(SimulationConfig(strategy="ORA", **shared))
        random_ = run_simulation(SimulationConfig(strategy="RAND", **shared))
        assert oracle.summary.p99 < random_.summary.p99

    def test_simulation_object_exposes_components(self):
        sim = ReplicaSelectionSimulation(SimulationConfig(strategy="C3", **FAST))
        assert len(sim.servers) == FAST["num_servers"]
        assert len(sim.clients) == FAST["num_clients"]
        assert len(sim.groups) == FAST["num_servers"]
        result = sim.run()
        assert result.strategy == "C3"
        assert result.extra["servers"] == FAST["num_servers"]
