"""Unit tests for the flat-simulator workload generation."""

import numpy as np
import pytest

from repro.simulator.engine import EventLoop
from repro.simulator.workload import (
    DemandSkew,
    PoissonArrivalProcess,
    WorkloadGenerator,
    replica_groups,
)


class _FakeClient:
    def __init__(self, client_id):
        self.client_id = client_id
        self.requests = []

    def on_request(self, request):
        self.requests.append(request)


class TestReplicaGroups:
    def test_group_count_equals_server_count(self):
        groups = replica_groups(10, 3)
        assert len(groups) == 10

    def test_groups_are_consecutive_and_wrap(self):
        groups = replica_groups(5, 3)
        assert groups[0] == (0, 1, 2)
        assert groups[4] == (4, 0, 1)

    def test_every_server_appears_rf_times(self):
        groups = replica_groups(8, 3)
        counts = {}
        for group in groups:
            for server in group:
                counts[server] = counts.get(server, 0) + 1
        assert all(count == 3 for count in counts.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            replica_groups(2, 3)
        with pytest.raises(ValueError):
            replica_groups(3, 0)


class TestDemandSkew:
    def test_probabilities_sum_to_one(self):
        skew = DemandSkew(client_fraction=0.2, demand_fraction=0.8)
        probs = skew.client_probabilities(10)
        assert probs.sum() == pytest.approx(1.0)

    def test_heavy_clients_receive_the_configured_share(self):
        skew = DemandSkew(client_fraction=0.2, demand_fraction=0.8)
        probs = skew.client_probabilities(10)
        assert probs[:2].sum() == pytest.approx(0.8)
        assert probs[2:].sum() == pytest.approx(0.2)

    def test_heavy_clients_have_higher_individual_probability(self):
        probs = DemandSkew(0.5, 0.8).client_probabilities(10)
        assert probs[0] > probs[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            DemandSkew(0.0)
        with pytest.raises(ValueError):
            DemandSkew(0.5, 1.0)
        with pytest.raises(ValueError):
            DemandSkew(0.5).client_probabilities(1)


class TestPoissonArrivalProcess:
    def test_generates_exact_count(self):
        loop = EventLoop()
        arrivals = []
        process = PoissonArrivalProcess(
            loop, rate_per_ms=1.0, total_arrivals=50, on_arrival=lambda: arrivals.append(loop.now),
            rng=np.random.default_rng(0),
        )
        process.start()
        loop.run_until_idle()
        assert len(arrivals) == 50
        assert process.generated == 50

    def test_mean_interarrival_matches_rate(self):
        loop = EventLoop()
        arrivals = []
        process = PoissonArrivalProcess(
            loop, rate_per_ms=2.0, total_arrivals=4000, on_arrival=lambda: arrivals.append(loop.now),
            rng=np.random.default_rng(1),
        )
        process.start()
        loop.run_until_idle()
        gaps = np.diff(np.array(arrivals))
        assert gaps.mean() == pytest.approx(0.5, rel=0.1)

    def test_zero_arrivals_is_a_noop(self):
        loop = EventLoop()
        process = PoissonArrivalProcess(loop, 1.0, 0, on_arrival=lambda: None)
        process.start()
        loop.run_until_idle()
        assert process.generated == 0

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            PoissonArrivalProcess(loop, 0.0, 1, lambda: None)


class TestWorkloadGenerator:
    def _build(self, loop, clients, skew=None, read_fraction=1.0, seed=0):
        groups = replica_groups(6, 3)
        return WorkloadGenerator(
            loop=loop,
            clients=clients,
            groups=groups,
            rate_per_ms=5.0,
            total_requests=300,
            demand_skew=skew,
            read_fraction=read_fraction,
            rng=np.random.default_rng(seed),
        )

    def test_all_requests_delivered_to_clients(self):
        loop = EventLoop()
        clients = [_FakeClient(i) for i in range(4)]
        generator = self._build(loop, clients)
        generator.start()
        loop.run_until_idle()
        assert sum(len(c.requests) for c in clients) == 300

    def test_requests_carry_valid_replica_groups(self):
        loop = EventLoop()
        clients = [_FakeClient(0)]
        generator = self._build(loop, clients)
        generator.start()
        loop.run_until_idle()
        for request in clients[0].requests:
            assert len(request.replica_group) == 3
            assert all(0 <= s < 6 for s in request.replica_group)

    def test_demand_skew_shifts_load_to_heavy_clients(self):
        loop = EventLoop()
        clients = [_FakeClient(i) for i in range(10)]
        generator = self._build(loop, clients, skew=DemandSkew(0.2, 0.8), seed=3)
        generator.start()
        loop.run_until_idle()
        heavy = sum(len(c.requests) for c in clients[:2])
        assert heavy > 0.6 * 300

    def test_read_fraction_produces_writes(self):
        loop = EventLoop()
        clients = [_FakeClient(0)]
        generator = self._build(loop, clients, read_fraction=0.5, seed=4)
        generator.start()
        loop.run_until_idle()
        kinds = {r.kind for r in clients[0].requests}
        assert kinds == {"read", "write"}

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            WorkloadGenerator(loop, [], [(0, 1, 2)], 1.0, 10)
        with pytest.raises(ValueError):
            WorkloadGenerator(loop, [_FakeClient(0)], [], 1.0, 10)
        with pytest.raises(ValueError):
            WorkloadGenerator(loop, [_FakeClient(0)], [(0,)], 1.0, 10, read_fraction=2.0)
