"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import EventLoop, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(5.0, order.append, "b")
        loop.schedule(1.0, order.append, "a")
        loop.schedule(9.0, order.append, "c")
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        loop = EventLoop()
        order = []
        for name in "abcd":
            loop.schedule(1.0, order.append, name)
        loop.run_until_idle()
        assert order == list("abcd")

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.5, lambda: seen.append(loop.now))
        loop.run_until_idle()
        assert seen == [3.5]
        assert loop.now == 3.5

    def test_schedule_at_absolute_time(self):
        loop = EventLoop(start_time=10.0)
        fired = []
        loop.schedule_at(12.0, fired.append, True)
        loop.run_until_idle()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        loop = EventLoop(start_time=5.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(1.0, lambda: None)

    def test_kwargs_passed_to_callback(self):
        loop = EventLoop()
        seen = {}
        loop.schedule(1.0, seen.update, value=42)
        loop.run_until_idle()
        assert seen == {"value": 42}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, fired.append, "x")
        event.cancel()
        loop.run_until_idle()
        assert fired == []

    def test_cancellation_does_not_affect_other_events(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, fired.append, "cancelled")
        loop.schedule(2.0, fired.append, "kept")
        event.cancel()
        loop.run_until_idle()
        assert fired == ["kept"]


class TestRun:
    def test_run_until_horizon_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "early")
        loop.schedule(100.0, fired.append, "late")
        loop.run(until=50.0)
        assert fired == ["early"]
        assert loop.now == 50.0
        loop.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_advances_clock_to_horizon_with_no_events(self):
        loop = EventLoop()
        loop.run(until=25.0)
        assert loop.now == 25.0

    def test_max_events_limit(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i + 1), fired.append, i)
        processed = loop.run(max_events=4)
        assert processed == 4
        assert len(fired) == 4

    def test_events_scheduled_during_run_are_processed(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                loop.schedule(1.0, chain, n + 1)

        loop.schedule(1.0, chain, 0)
        loop.run_until_idle()
        assert fired == list(range(6))

    def test_step_returns_false_on_empty_queue(self):
        assert EventLoop().step() is False

    def test_processed_and_pending_counters(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending_events == 2
        loop.run_until_idle()
        assert loop.processed_events == 2
        assert loop.pending_events == 0

    def test_reentrant_run_rejected(self):
        loop = EventLoop()

        def nested():
            with pytest.raises(SimulationError):
                loop.run()

        loop.schedule(1.0, nested)
        loop.run_until_idle()

    def test_clear_drops_pending_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "x")
        loop.clear()
        loop.run_until_idle()
        assert fired == []


class TestClearReuse:
    """Regression: clear() must reset bookkeeping so a loop can be reused."""

    def test_clear_resets_counters_and_seq(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None).cancel()
        loop.run_until_idle()
        loop.schedule(5.0, lambda: None)
        loop.clear()
        assert loop.pending_events == 0
        assert loop.live_pending_events == 0
        assert loop.processed_events == 0

        # The FIFO sequence restarts, so a reused loop keeps same-time
        # scheduling order starting from a clean slate.
        order = []
        for name in "abc":
            loop.schedule_at(loop.now + 1.0, order.append, name)
        loop.run_until_idle()
        assert order == ["a", "b", "c"]
        assert loop.processed_events == 3

    def test_clear_resets_cancelled_bookkeeping(self):
        loop = EventLoop()
        events = [loop.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        loop.clear()
        assert loop.pending_events == 0
        assert loop.live_pending_events == 0
        # Cancelling the stale handles after clear() must not corrupt the
        # dead-entry counter of subsequently scheduled work.
        for event in events:
            event.cancel()
        fired = []
        loop.schedule(1.0, fired.append, "fresh")
        assert loop.live_pending_events == 1
        loop.run_until_idle()
        assert fired == ["fresh"]

    def test_clear_inside_callback_leaves_loop_reusable(self):
        loop = EventLoop()
        fired = []

        def clearing():
            fired.append("clearing")
            loop.clear()

        loop.schedule(1.0, clearing)
        loop.schedule(2.0, fired.append, "dropped")
        loop.run_until_idle()
        assert fired == ["clearing"]

        loop.schedule(1.0, fired.append, "second-life")
        loop.run_until_idle()
        assert fired == ["clearing", "second-life"]

    def test_clear_inside_callback_keeps_reentrancy_guard(self):
        loop = EventLoop()
        seen = []

        def clearing_then_nesting():
            loop.clear()
            with pytest.raises(SimulationError):
                loop.run()  # the outer run() is still live
            seen.append("guarded")

        loop.schedule(1.0, clearing_then_nesting)
        loop.run_until_idle()
        assert seen == ["guarded"]


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        loop = EventLoop()
        keep, cancel = [], []
        for i in range(200):
            event = loop.schedule(float(i), lambda: None)
            (cancel if i % 4 else keep).append(event)
        for event in cancel:
            event.cancel()
        # >50% of a >=64-entry heap is dead: the heap must have shrunk.
        assert loop.pending_events < 200
        assert loop.live_pending_events == len(keep)

    def test_compaction_preserves_pending_semantics(self):
        loop = EventLoop()
        fired = []
        survivors = []
        for i in range(300):
            event = loop.schedule(float(i % 7), fired.append, i)
            if i % 5 == 0:
                survivors.append(i)
            else:
                event.cancel()
        loop.run_until_idle()
        assert sorted(fired) == survivors
        # Survivors fire in (time, seq) order.
        times = [(i % 7, i) for i in fired]
        assert times == sorted(times)

    def test_small_heaps_are_not_compacted(self):
        loop = EventLoop()
        events = [loop.schedule(float(i), lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        # Below COMPACT_MIN_SIZE, cancelled entries stay queued lazily.
        assert loop.pending_events == 10
        assert loop.live_pending_events == 1
