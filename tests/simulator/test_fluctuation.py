"""Unit tests for the service-time fluctuation processes."""

import numpy as np
import pytest

from repro.simulator.engine import EventLoop
from repro.simulator.fluctuation import BimodalFluctuation, LatencyInflation, TransientSlowdowns
from repro.simulator.server import SimServer


def make_servers(loop, count=4):
    return [
        SimServer(loop, server_id=i, base_service_time_ms=4.0, deterministic=True, rng=np.random.default_rng(i))
        for i in range(count)
    ]


class TestBimodalFluctuation:
    def test_servers_toggle_between_two_modes(self):
        loop = EventLoop()
        servers = make_servers(loop, count=6)
        fluct = BimodalFluctuation(loop, servers, interval_ms=10.0, rate_multiplier=3.0, rng=np.random.default_rng(0))
        fluct.start()
        loop.run(until=100.0)
        observed = {round(s.current_service_time_ms, 6) for s in servers}
        allowed = {round(4.0, 6), round(4.0 / 3.0, 6)}
        assert observed <= allowed

    def test_flip_count_grows_with_time(self):
        loop = EventLoop()
        servers = make_servers(loop, count=3)
        fluct = BimodalFluctuation(loop, servers, interval_ms=10.0, rng=np.random.default_rng(1))
        fluct.start()
        loop.run(until=95.0)
        # One flip per server per interval, including the initial one at t=0.
        assert fluct.flips == 3 * 10

    def test_mean_service_rate_factor(self):
        loop = EventLoop()
        fluct = BimodalFluctuation(loop, [], rate_multiplier=3.0)
        assert fluct.mean_service_rate_factor == 2.0

    def test_start_is_idempotent(self):
        loop = EventLoop()
        servers = make_servers(loop, count=1)
        fluct = BimodalFluctuation(loop, servers, interval_ms=10.0, rng=np.random.default_rng(2))
        fluct.start()
        fluct.start()
        loop.run(until=5.0)
        assert fluct.flips == 1

    def test_invalid_parameters(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            BimodalFluctuation(loop, [], interval_ms=0.0)
        with pytest.raises(ValueError):
            BimodalFluctuation(loop, [], rate_multiplier=0.0)
        with pytest.raises(ValueError):
            BimodalFluctuation(loop, [], fast_probability=1.5)


class TestLatencyInflation:
    def test_episode_slows_then_restores(self):
        loop = EventLoop()
        server = make_servers(loop, count=1)[0]
        inflation = LatencyInflation(loop, server, episodes=[(10.0, 20.0, 5.0)])
        inflation.start()
        loop.run(until=15.0)
        assert server.current_service_time_ms == pytest.approx(20.0)
        loop.run(until=25.0)
        assert server.current_service_time_ms == pytest.approx(4.0)

    def test_invalid_episode_rejected(self):
        loop = EventLoop()
        server = make_servers(loop, count=1)[0]
        with pytest.raises(ValueError):
            LatencyInflation(loop, server, episodes=[(10.0, 5.0, 2.0)])
        with pytest.raises(ValueError):
            LatencyInflation(loop, server, episodes=[(1.0, 2.0, 0.0)])


class TestHorizonEdgeAndLoopReuse:
    """Regression: a perturbation firing exactly at the run horizon used to
    leave servers' rate factors perturbed with no way to reset them, so an
    ``EventLoop`` reused via ``clear()`` ran its next scenario against
    degraded servers.  ``stop()`` is the fix: it cancels pending events and
    restores nominal speed."""

    def test_flip_at_horizon_then_stop_restores_nominal_rate(self):
        loop = EventLoop()
        servers = make_servers(loop, count=4)
        # seed 5: the flip at t=100 leaves at least one server in fast mode.
        fluct = BimodalFluctuation(loop, servers, interval_ms=100.0, rng=np.random.default_rng(5))
        fluct.start()
        loop.run(until=100.0)  # run() fires events scheduled exactly at the horizon
        assert any(s.current_service_time_ms != pytest.approx(4.0) for s in servers)
        loop.clear()
        fluct.stop()
        assert all(s.current_service_time_ms == pytest.approx(4.0) for s in servers)
        # The reused loop runs no stale flips: nothing changes speeds again.
        loop.run(until=500.0)
        assert all(s.current_service_time_ms == pytest.approx(4.0) for s in servers)

    def test_stopped_fluctuation_schedules_no_further_events(self):
        loop = EventLoop()
        servers = make_servers(loop, count=2)
        fluct = BimodalFluctuation(loop, servers, interval_ms=10.0, rng=np.random.default_rng(0))
        fluct.start()
        loop.run(until=25.0)
        fluct.stop()
        flips = fluct.flips
        loop.run(until=200.0)
        assert fluct.flips == flips
        assert loop.live_pending_events == 0

    def test_inflation_episode_straddling_horizon_is_reset_by_stop(self):
        loop = EventLoop()
        server = make_servers(loop, count=1)[0]
        # The episode's end lies beyond the horizon: pre-fix the server kept
        # its 5x multiplier forever after clear().
        inflation = LatencyInflation(loop, server, episodes=[(50.0, 150.0, 5.0)])
        inflation.start()
        loop.run(until=100.0)
        assert server.current_service_time_ms == pytest.approx(20.0)
        loop.clear()
        inflation.stop()
        assert server.current_service_time_ms == pytest.approx(4.0)
        assert inflation.active_episodes == 0

    def test_transient_slowdown_straddling_horizon_is_reset_by_stop(self):
        loop = EventLoop()
        servers = make_servers(loop, count=2)
        slowdowns = TransientSlowdowns(
            loop, servers, mean_interarrival_ms=5.0, mean_duration_ms=1000.0,
            slowdown_factor=4.0, rng=np.random.default_rng(1),
        )
        slowdowns.start()
        loop.run(until=50.0)
        assert any(s.current_service_time_ms == pytest.approx(16.0) for s in servers)
        loop.clear()
        slowdowns.stop()
        assert all(s.current_service_time_ms == pytest.approx(4.0) for s in servers)
        loop.run(until=500.0)
        assert all(s.current_service_time_ms == pytest.approx(4.0) for s in servers)

    def test_permanent_episode_supported(self):
        loop = EventLoop()
        server = make_servers(loop, count=1)[0]
        inflation = LatencyInflation(loop, server, episodes=[(10.0, None, 3.0)])
        inflation.start()
        loop.run(until=20.0)
        assert server.current_service_time_ms == pytest.approx(12.0)
        inflation.stop()
        assert server.current_service_time_ms == pytest.approx(4.0)


class TestTransientSlowdowns:
    def test_slowdowns_occur_and_recover(self):
        loop = EventLoop()
        servers = make_servers(loop, count=2)
        events = []
        slowdowns = TransientSlowdowns(
            loop,
            servers,
            mean_interarrival_ms=20.0,
            mean_duration_ms=5.0,
            slowdown_factor=4.0,
            rng=np.random.default_rng(3),
            on_event=lambda server, t, d: events.append((server.server_id, t)),
        )
        slowdowns.start()
        loop.run(until=500.0)
        assert slowdowns.events > 0
        assert len(events) == slowdowns.events

    def test_invalid_parameters(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            TransientSlowdowns(loop, [], mean_interarrival_ms=0.0)
        with pytest.raises(ValueError):
            TransientSlowdowns(loop, [], slowdown_factor=0.0)
