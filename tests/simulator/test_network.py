"""Unit tests for the network latency models."""

import numpy as np
import pytest

from repro.simulator.network import ConstantLatency, JitteredLatency, LognormalLatency


class TestConstantLatency:
    def test_one_way_delay_is_constant(self):
        model = ConstantLatency(0.25)
        assert all(model.one_way_delay() == 0.25 for _ in range(5))

    def test_round_trip_is_twice_one_way(self):
        assert ConstantLatency(0.3).round_trip_delay() == pytest.approx(0.6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestJitteredLatency:
    def test_samples_within_bounds(self):
        model = JitteredLatency(base_ms=1.0, jitter_ms=0.2, rng=np.random.default_rng(0))
        samples = [model.one_way_delay() for _ in range(200)]
        assert all(0.8 <= s <= 1.2 for s in samples)
        assert len(set(samples)) > 1

    def test_zero_jitter_is_constant(self):
        model = JitteredLatency(base_ms=1.0, jitter_ms=0.0)
        assert model.one_way_delay() == 1.0

    def test_jitter_larger_than_base_rejected(self):
        with pytest.raises(ValueError):
            JitteredLatency(base_ms=0.1, jitter_ms=0.5)


class TestLognormalLatency:
    def test_samples_positive(self):
        model = LognormalLatency(median_ms=0.5, sigma=0.5, rng=np.random.default_rng(1))
        samples = [model.one_way_delay() for _ in range(200)]
        assert all(s > 0 for s in samples)

    def test_median_roughly_matches(self):
        model = LognormalLatency(median_ms=2.0, sigma=0.4, rng=np.random.default_rng(2))
        samples = np.array([model.one_way_delay() for _ in range(4000)])
        assert np.median(samples) == pytest.approx(2.0, rel=0.1)

    def test_zero_sigma_is_constant(self):
        assert LognormalLatency(median_ms=1.5, sigma=0.0).one_way_delay() == 1.5

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LognormalLatency(median_ms=0.0)
        with pytest.raises(ValueError):
            LognormalLatency(median_ms=1.0, sigma=-1.0)
