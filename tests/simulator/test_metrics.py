"""Unit tests for metric collection and simulation results."""

import numpy as np
import pytest

from repro.simulator.metrics import MetricsCollector, SimulationResult, WindowedCounter
from repro.simulator.request import Request, RequestKind


def completed_request(server_id=0, created=0.0, completed=5.0, kind=RequestKind.READ, parent=None):
    request = Request.create(
        client_id=0, replica_group=(server_id,), created_at=created, kind=kind, parent_id=parent
    )
    request.mark_dispatched(created, server_id)
    request.mark_completed(completed)
    return request


class TestWindowedCounter:
    def test_counts_fall_into_correct_windows(self):
        counter = WindowedCounter(window_ms=100.0)
        for t in (10.0, 20.0, 150.0, 299.0):
            counter.record(t)
        assert list(counter.counts()) == [2, 1, 1]

    def test_horizon_pads_with_zero_windows(self):
        counter = WindowedCounter(window_ms=100.0)
        counter.record(50.0)
        assert len(counter.counts(horizon_ms=500.0)) == 5

    def test_series_returns_window_start_times(self):
        counter = WindowedCounter(window_ms=100.0)
        counter.record(250.0)
        times, counts = counter.series()
        assert list(times) == [0.0, 100.0, 200.0]
        assert list(counts) == [0, 0, 1]

    def test_total(self):
        counter = WindowedCounter()
        for t in range(5):
            counter.record(float(t))
        assert counter.total() == 5

    def test_empty_counts(self):
        assert WindowedCounter().counts().size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(window_ms=0.0)
        with pytest.raises(ValueError):
            WindowedCounter().record(-1.0)


class TestMetricsCollector:
    def test_latency_recorded_for_primary_requests_only(self):
        collector = MetricsCollector()
        primary = completed_request()
        dup = completed_request(parent=primary.request_id)
        collector.on_issue(primary)
        collector.on_issue(dup)
        collector.on_complete(primary, 5.0)
        collector.on_complete(dup, 6.0)
        result = collector.result(duration_ms=10.0)
        assert result.completed_requests == 1
        assert result.issued_requests == 1
        assert result.duplicate_requests == 1
        assert list(result.latencies_ms) == [5.0]

    def test_server_load_counts_every_completion(self):
        collector = MetricsCollector(window_ms=100.0)
        primary = completed_request(server_id=1)
        dup = completed_request(server_id=2, parent=primary.request_id)
        collector.on_complete(primary, 50.0)
        collector.on_complete(dup, 60.0)
        result = collector.result(duration_ms=100.0)
        assert result.per_server_completed == {1: 1, 2: 1}

    def test_read_and_write_latencies_split(self):
        collector = MetricsCollector()
        read = completed_request(kind=RequestKind.READ)
        write = completed_request(kind=RequestKind.WRITE, completed=9.0)
        for request in (read, write):
            collector.on_issue(request)
            collector.on_complete(request, request.completed_at)
        result = collector.result(10.0)
        assert list(result.read_latencies_ms) == [5.0]
        assert list(result.write_latencies_ms) == [9.0]

    def test_backpressure_counter(self):
        collector = MetricsCollector()
        collector.on_backpressure()
        collector.on_backpressure()
        assert collector.result(1.0).backpressure_events == 2


class TestSimulationResult:
    def _result(self):
        collector = MetricsCollector(window_ms=100.0)
        for i in range(10):
            request = completed_request(server_id=i % 2, created=i * 10.0, completed=i * 10.0 + 4.0)
            collector.on_issue(request)
            collector.on_complete(request, request.completed_at)
        return collector.result(duration_ms=1000.0, strategy="TEST")

    def test_throughput(self):
        result = self._result()
        assert result.throughput_rps == pytest.approx(10 / 1.0)

    def test_summary_percentiles(self):
        result = self._result()
        assert result.summary.median == pytest.approx(4.0)
        assert result.summary.count == 10

    def test_hottest_server(self):
        result = self._result()
        assert result.hottest_server() in (0, 1)
        series = result.hottest_server_series()
        assert series.sum() == result.per_server_completed[result.hottest_server()]

    def test_zero_duration_throughput(self):
        result = SimulationResult(
            latencies_ms=np.zeros(0),
            read_latencies_ms=np.zeros(0),
            write_latencies_ms=np.zeros(0),
            duration_ms=0.0,
            completed_requests=0,
            issued_requests=0,
            duplicate_requests=0,
            backpressure_events=0,
            server_load_series={},
            window_ms=100.0,
            per_server_completed={},
        )
        assert result.throughput_rps == 0.0
        assert result.hottest_server() is None
        assert result.hottest_server_series().size == 0
