"""Object-vs-batched kernel equivalence.

The batched kernel (``SimulationConfig(kernel="batched")``) is a pure
performance substitution: it consumes every RNG stream at exactly the same
positions as the object path, so exact-mode runs must be digest-identical
event for event.  These tests pin that contract three ways:

* a curated matrix of configurations covering every selector mode the
  kernel special-cases (LOR / P2C dense state, stock selectors, the C3
  scheduler), plus the hard paths — crash/recovery liveness filtering,
  phi-accrual suspicion, hedged reads, read-repair fan-out, backpressure
  parking, demand skew, streaming metrics;
* a hypothesis property over random small configurations, so the
  equivalence is not an artifact of hand-picked parameters;
* a unit test for :meth:`WindowedCounter.record_batch`, the vectorized
  scatter the kernel uses to rebuild per-server load series at sync-back.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.metrics import WindowedCounter
from repro.simulator.simulation import ReplicaSelectionSimulation, SimulationConfig
from repro.simulator.workload import DemandSkew


def _digest(kernel: str, **kw) -> str:
    config = SimulationConfig(kernel=kernel, **kw)
    return ReplicaSelectionSimulation(config).run().digest()


def assert_kernels_equivalent(**kw) -> None:
    assert _digest("object", **kw) == _digest("batched", **kw)


PLAIN = dict(num_servers=10, num_clients=12, num_requests=1200, seed=7)
HARD = dict(num_servers=10, num_clients=12, num_requests=2000, seed=11)

#: Every selector mode and every rare-path feature the kernel handles.
MATRIX = {
    "plain-lor": dict(PLAIN, strategy="LOR"),
    "plain-p2c": dict(PLAIN, strategy="P2C"),
    "plain-c3": dict(PLAIN, strategy="C3"),
    "plain-rr": dict(PLAIN, strategy="RR"),
    "plain-rand": dict(PLAIN, strategy="RAND"),
    "oracle": dict(PLAIN, strategy="ORA"),
    "snitch": dict(PLAIN, strategy="DS"),
    "crash-c3": dict(HARD, strategy="C3", scenario="crash-recovery"),
    "phi-crash-lor": dict(
        HARD, strategy="LOR", scenario="crash-recovery", failure_detector="phi"
    ),
    "hedge-c3": dict(HARD, strategy="C3", hedging="hedge:quantile=0.9"),
    "hedge-crash-lor": dict(
        HARD, strategy="LOR", scenario="crash-recovery", hedging="hedge:quantile=0.9"
    ),
    "skew-p2c": dict(
        HARD,
        strategy="P2C",
        read_fraction=0.7,
        demand_skew=DemandSkew(client_fraction=0.2, demand_fraction=0.8),
    ),
    "streaming-c3": dict(HARD, strategy="C3", metrics_mode="streaming"),
    "backpressure-c3": dict(
        PLAIN, strategy="C3:initial_rate=0.1,min_rate=0.1,max_rate=0.1"
    ),
    # Every replica of the only group crashes at once: requests park until
    # the restore drains them through KernelServer._try_start_service.
    "parked-hedge-c3": dict(
        num_servers=3,
        num_clients=6,
        num_requests=1200,
        seed=3,
        strategy="C3",
        scenario="crash-recovery",
        hedging="hedge:quantile=0.9",
        scenario_params={"targets": [0, 1, 2], "down_ms": 300.0, "stagger_ms": 0.0},
    ),
}


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_batched_kernel_matches_object_kernel(name):
    assert_kernels_equivalent(**MATRIX[name])


@settings(max_examples=20, deadline=None)
@given(
    num_servers=st.integers(min_value=3, max_value=8),
    num_clients=st.integers(min_value=2, max_value=8),
    num_requests=st.integers(min_value=50, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    strategy=st.sampled_from(["LOR", "P2C", "C3", "RR", "RAND", "ORA", "LRT", "WRAND"]),
    utilization=st.floats(min_value=0.3, max_value=0.9),
    read_repair_probability=st.floats(min_value=0.0, max_value=0.6),
    read_fraction=st.floats(min_value=0.5, max_value=1.0),
)
def test_batched_kernel_matches_object_kernel_property(
    num_servers,
    num_clients,
    num_requests,
    seed,
    strategy,
    utilization,
    read_repair_probability,
    read_fraction,
):
    assert_kernels_equivalent(
        num_servers=num_servers,
        num_clients=num_clients,
        num_requests=num_requests,
        seed=seed,
        strategy=strategy,
        utilization=utilization,
        read_repair_probability=read_repair_probability,
        read_fraction=read_fraction,
    )


def test_invalid_kernel_rejected():
    with pytest.raises(ValueError, match="kernel"):
        SimulationConfig(kernel="vectorised")


class TestRecordBatch:
    def test_matches_scalar_record(self):
        rng = np.random.default_rng(5)
        times = rng.uniform(0.0, 1000.0, size=500)
        scalar = WindowedCounter(100.0)
        for t in times:
            scalar.record(float(t))
        batched = WindowedCounter(100.0)
        batched.record_batch(times)
        horizon = 1100.0
        assert np.array_equal(scalar.counts(horizon), batched.counts(horizon))

    def test_empty_batch_is_noop(self):
        counter = WindowedCounter(100.0)
        counter.record_batch(np.empty(0))
        assert counter.counts().size == 0

    def test_negative_time_rejected(self):
        counter = WindowedCounter(100.0)
        with pytest.raises(ValueError):
            counter.record_batch(np.array([5.0, -1.0]))
