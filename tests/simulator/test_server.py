"""Unit tests for the simulated replica server."""

import numpy as np
import pytest

from repro.simulator.engine import EventLoop
from repro.simulator.request import Request
from repro.simulator.server import SimServer


def make_server(loop, **kwargs):
    defaults = dict(
        server_id="s",
        base_service_time_ms=4.0,
        concurrency=2,
        deterministic=True,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return SimServer(loop, **defaults)


def make_request(server_id="s"):
    return Request.create(client_id=0, replica_group=(server_id,), created_at=0.0)


class TestServiceFlow:
    def test_single_request_completes_after_service_time(self):
        loop = EventLoop()
        completions = []
        server = make_server(loop, on_complete=lambda r, f, st: completions.append((loop.now, st)))
        server.enqueue(make_request())
        loop.run_until_idle()
        assert completions == [(4.0, 4.0)]
        assert server.requests_completed == 1

    def test_concurrency_limits_parallel_service(self):
        loop = EventLoop()
        completions = []
        server = make_server(loop, concurrency=2, on_complete=lambda r, f, st: completions.append(loop.now))
        for _ in range(4):
            server.enqueue(make_request())
        # Two requests run in parallel, two queue behind them.
        assert server.in_service == 2
        assert server.queue_length == 2
        loop.run_until_idle()
        assert completions == [4.0, 4.0, 8.0, 8.0]

    def test_fifo_ordering(self):
        loop = EventLoop()
        order = []
        server = make_server(loop, concurrency=1, on_complete=lambda r, f, st: order.append(r.request_id))
        requests = [make_request() for _ in range(3)]
        for request in requests:
            server.enqueue(request)
        loop.run_until_idle()
        assert order == [r.request_id for r in requests]

    def test_pending_includes_in_service(self):
        loop = EventLoop()
        server = make_server(loop, concurrency=1)
        server.enqueue(make_request())
        server.enqueue(make_request())
        assert server.pending_requests == 2
        assert server.queue_length == 1


class TestFeedback:
    def test_feedback_reports_pending_after_completion(self):
        loop = EventLoop()
        feedbacks = []
        server = make_server(loop, concurrency=1, on_complete=lambda r, f, st: feedbacks.append(f))
        for _ in range(3):
            server.enqueue(make_request())
        loop.run_until_idle()
        # After each completion, the remaining pending count shrinks.
        assert [fb.queue_size for fb in feedbacks] == [2, 1, 0]
        assert all(fb.server_id == "s" for fb in feedbacks)

    def test_feedback_service_time_tracks_ewma(self):
        loop = EventLoop()
        feedbacks = []
        server = make_server(loop, on_complete=lambda r, f, st: feedbacks.append(f))
        server.enqueue(make_request())
        loop.run_until_idle()
        assert feedbacks[0].service_time == pytest.approx(4.0)


class TestSpeedControls:
    def test_service_time_multiplier_slows_server(self):
        loop = EventLoop()
        completions = []
        server = make_server(loop, on_complete=lambda r, f, st: completions.append(loop.now))
        server.set_service_time_multiplier(3.0)
        server.enqueue(make_request())
        loop.run_until_idle()
        assert completions == [12.0]

    def test_service_rate_multiplier_speeds_server(self):
        loop = EventLoop()
        completions = []
        server = make_server(loop, on_complete=lambda r, f, st: completions.append(loop.now))
        server.set_service_rate_multiplier(4.0)
        server.enqueue(make_request())
        loop.run_until_idle()
        assert completions == [1.0]

    def test_invalid_multiplier_rejected(self):
        loop = EventLoop()
        server = make_server(loop)
        with pytest.raises(ValueError):
            server.set_service_time_multiplier(0.0)
        with pytest.raises(ValueError):
            server.set_service_rate_multiplier(-1.0)

    def test_record_size_scales_service_time(self):
        loop = EventLoop()
        completions = []
        server = make_server(loop, on_complete=lambda r, f, st: completions.append(st))
        big = Request.create(client_id=0, replica_group=("s",), created_at=0.0, record_size=2048)
        server.enqueue(big)
        loop.run_until_idle()
        assert completions == [8.0]


class TestStatsAndValidation:
    def test_utilization(self):
        loop = EventLoop()
        server = make_server(loop, concurrency=1)
        server.enqueue(make_request())
        loop.run_until_idle()
        assert server.utilization(8.0) == pytest.approx(0.5)

    def test_stats_shape(self):
        loop = EventLoop()
        server = make_server(loop)
        server.enqueue(make_request())
        loop.run_until_idle()
        stats = server.stats()
        assert stats["received"] == 1 and stats["completed"] == 1
        assert stats["server_id"] == "s"

    def test_random_service_times_have_correct_mean(self):
        loop = EventLoop()
        durations = []
        server = make_server(
            loop, deterministic=False, concurrency=1000, on_complete=lambda r, f, st: durations.append(st)
        )
        for _ in range(3000):
            server.enqueue(make_request())
        loop.run_until_idle()
        assert np.mean(durations) == pytest.approx(4.0, rel=0.1)

    def test_constructor_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            SimServer(loop, "s", base_service_time_ms=0.0)
        with pytest.raises(ValueError):
            SimServer(loop, "s", concurrency=0)
