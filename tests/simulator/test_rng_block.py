"""The ``rng="block"`` regime: a distinct, kernel-stable digest domain.

``rng="block"`` block-draws the workload trio (client, group, read/write
coin), the inter-arrival gaps, and the selector-side draws, replacing
thousands of scalar Generator calls with list indexing.  The stream
positions differ from ``rng="v1"``, so block runs form their own digest
domain — but *within* that domain the object and batched kernels must stay
digest-identical, exactly like the v1 contract pinned in
``test_kernel_equivalence.py``.  These tests pin:

* the foundation: numpy's block ``standard_exponential(n)`` is bitwise
  identical to ``n`` scalar ``exponential(mean)`` calls (after consumption-
  time scaling), which is what lets :meth:`BlockDraws.next_gap` scale by
  ``1/λ`` at consumption and keep ``set_rate`` forward-looking;
* the :class:`BlockDraws` / :class:`BlockRNG` serving discipline (refill
  exactly on exhaustion, derivations fixed);
* object-vs-batched digest equality across a curated block-regime matrix
  (every selector mode + crash/phi/hedging/skew/backpressure/jitter) and a
  hypothesis property with the rng regime as an explicit axis;
* that "block" really is a *different* domain than "v1" (digests diverge),
  so nobody silently conflates their caches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.simulation import ReplicaSelectionSimulation, SimulationConfig
from repro.simulator.workload import BLOCK_SIZE, BlockDraws, BlockRNG, DemandSkew


def _digest(kernel: str, **kw) -> str:
    config = SimulationConfig(kernel=kernel, rng="block", **kw)
    return ReplicaSelectionSimulation(config).run().digest()


def assert_block_kernels_equivalent(**kw) -> None:
    assert _digest("object", **kw) == _digest("batched", **kw)


PLAIN = dict(num_servers=10, num_clients=12, num_requests=1200, seed=7)
HARD = dict(num_servers=10, num_clients=12, num_requests=2000, seed=11)

#: Block-domain equivalence matrix: every kernel-special-cased selector mode
#: plus the rare paths (crash liveness filtering, phi suspicion, hedged
#: reads, demand skew, backpressure parking, mid-run latency swap — the
#: network-jitter scenario flips ConstantLatency parameters mid-run, which
#: exercises the kernel's FIFO-lane drain-to-heap fallback).
MATRIX = {
    "plain-lor": dict(PLAIN, strategy="LOR"),
    "plain-p2c": dict(PLAIN, strategy="P2C"),
    "plain-c3": dict(PLAIN, strategy="C3"),
    "plain-rr": dict(PLAIN, strategy="RR"),
    "plain-rand": dict(PLAIN, strategy="RAND"),
    "oracle": dict(PLAIN, strategy="ORA"),
    "crash-c3": dict(HARD, strategy="C3", scenario="crash-recovery"),
    "phi-crash-lor": dict(
        HARD, strategy="LOR", scenario="crash-recovery", failure_detector="phi"
    ),
    "hedge-c3": dict(HARD, strategy="C3", hedging="hedge:quantile=0.9"),
    "hedge-crash-lor": dict(
        HARD, strategy="LOR", scenario="crash-recovery", hedging="hedge:quantile=0.9"
    ),
    "skew-p2c": dict(
        HARD,
        strategy="P2C",
        read_fraction=0.7,
        demand_skew=DemandSkew(client_fraction=0.2, demand_fraction=0.8),
    ),
    "jitter-c3": dict(HARD, strategy="C3", scenario="network-jitter"),
    "streaming-c3": dict(HARD, strategy="C3", metrics_mode="streaming"),
    "backpressure-c3": dict(
        PLAIN, strategy="C3:initial_rate=0.1,min_rate=0.1,max_rate=0.1"
    ),
}


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_block_batched_kernel_matches_object_kernel(name):
    assert_block_kernels_equivalent(**MATRIX[name])


@settings(max_examples=20, deadline=None)
@given(
    num_servers=st.integers(min_value=3, max_value=8),
    num_clients=st.integers(min_value=2, max_value=8),
    num_requests=st.integers(min_value=50, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    strategy=st.sampled_from(["LOR", "P2C", "C3", "RR", "RAND"]),
    rng=st.sampled_from(["v1", "block"]),
    utilization=st.floats(min_value=0.3, max_value=0.9),
    read_fraction=st.floats(min_value=0.5, max_value=1.0),
)
def test_kernels_equivalent_across_rng_regimes_property(
    num_servers, num_clients, num_requests, seed, strategy, rng, utilization, read_fraction
):
    kw = dict(
        num_servers=num_servers,
        num_clients=num_clients,
        num_requests=num_requests,
        seed=seed,
        strategy=strategy,
        rng=rng,
        utilization=utilization,
        read_fraction=read_fraction,
    )
    digests = {
        kernel: ReplicaSelectionSimulation(SimulationConfig(kernel=kernel, **kw)).run().digest()
        for kernel in ("object", "batched")
    }
    assert digests["object"] == digests["batched"]


def test_block_is_a_distinct_digest_domain():
    """Block and v1 runs of the same config are *not* digest-identical.

    If they ever were, the regimes would be interchangeable and the cache-key
    separation (``rng`` participates in payloads when non-default) would be
    dead weight; divergence here is the designed behavior, not a bug.
    """
    kw = dict(PLAIN, strategy="C3")
    v1 = ReplicaSelectionSimulation(SimulationConfig(rng="v1", **kw)).run().digest()
    block = ReplicaSelectionSimulation(SimulationConfig(rng="block", **kw)).run().digest()
    assert v1 != block


def test_invalid_rng_regime_rejected():
    with pytest.raises(ValueError, match="rng"):
        SimulationConfig(rng="v2")


class TestBlockDrawFoundation:
    def test_block_standard_exponential_bitwise_equals_scalar_exponential(self):
        """The regime's foundation: one ``standard_exponential(n)`` block,
        scaled at consumption by ``1/λ``, is bitwise identical to ``n``
        scalar ``Generator.exponential(1/λ)`` calls from the same state —
        numpy funnels both through the same ziggurat sampler and the same
        single multiply."""
        mean = 1.0 / 3.7
        scalar_rng = np.random.default_rng(42)
        block_rng = np.random.default_rng(42)
        scalar = [float(scalar_rng.exponential(mean)) for _ in range(1000)]
        block = [x * mean for x in block_rng.standard_exponential(1000).tolist()]
        assert scalar == block

    def test_block_standard_exponential_bitwise_equals_scalar_standard(self):
        scalar_rng = np.random.default_rng(9)
        block_rng = np.random.default_rng(9)
        scalar = [float(scalar_rng.standard_exponential()) for _ in range(257)]
        block = block_rng.standard_exponential(257).tolist()
        assert scalar == block[:257]


class TestBlockDraws:
    def test_refill_exactly_on_exhaustion(self):
        """Each kind draws exactly one block up front and refills only when
        the block is spent, so stream positions are a pure function of
        consumption counts."""
        draws = BlockDraws(np.random.default_rng(1), 12, None, 10)
        for _ in range(BLOCK_SIZE):
            draws.next_client()
        reference = np.random.default_rng(1)
        expected_first = reference.integers(12, size=BLOCK_SIZE).tolist()
        expected_second = reference.integers(12, size=BLOCK_SIZE).tolist()
        assert draws._clients == expected_first
        assert draws.next_client() == expected_second[0]

    def test_gap_scaling_is_consumption_time(self):
        """``next_gap`` returns the *standard* variate; rate changes between
        consumptions rescale later gaps without perturbing the stream."""
        draws = BlockDraws(np.random.default_rng(2), 4, None, 4)
        raw = np.random.default_rng(2).standard_exponential(BLOCK_SIZE).tolist()
        assert draws.next_gap() * 0.5 == raw[0] * 0.5
        assert draws.next_gap() * 0.25 == raw[1] * 0.25

    def test_skewed_clients_use_weighted_choice(self):
        probs = DemandSkew(client_fraction=0.25, demand_fraction=0.8).client_probabilities(8)
        draws = BlockDraws(np.random.default_rng(3), 8, probs, 5)
        expected = np.random.default_rng(3).choice(8, size=BLOCK_SIZE, p=probs).tolist()
        assert [draws.next_client() for _ in range(10)] == expected[:10]


class TestBlockRNG:
    def test_integers_is_floor_of_uniform(self):
        adapter = BlockRNG(np.random.default_rng(4))
        uniforms = np.random.default_rng(4).random(BLOCK_SIZE).tolist()
        assert [adapter.integers(7) for _ in range(20)] == [int(u * 7) for u in uniforms[:20]]

    def test_pair_is_distinct(self):
        adapter = BlockRNG(np.random.default_rng(5))
        for _ in range(500):
            a, b = adapter.pair(5)
            assert a != b
            assert 0 <= a < 5 and 0 <= b < 5

    def test_choice_pair_matches_pair(self):
        lhs = BlockRNG(np.random.default_rng(6))
        rhs = BlockRNG(np.random.default_rng(6))
        for _ in range(50):
            assert lhs.choice(9, size=2, replace=False) == rhs.pair(9)

    def test_weighted_choice_is_inverse_cdf(self):
        adapter = BlockRNG(np.random.default_rng(7))
        uniforms = np.random.default_rng(7).random(BLOCK_SIZE).tolist()
        p = [0.5, 0.3, 0.2]
        for i in range(20):
            u = uniforms[i]
            expected = 0 if u < 0.5 else (1 if u < 0.8 else 2)
            assert adapter.choice(3, p=p) == expected

    def test_unsupported_shapes_rejected(self):
        adapter = BlockRNG(np.random.default_rng(8))
        with pytest.raises(NotImplementedError):
            adapter.choice(5, size=3, replace=False)
        with pytest.raises(NotImplementedError):
            adapter.choice(5, size=2, p=[0.2] * 5)
