"""Unit tests for the simulated client node."""

import numpy as np
import pytest

from repro.core.config import C3Config
from repro.simulator.client import SimClient
from repro.simulator.engine import EventLoop
from repro.simulator.metrics import MetricsCollector
from repro.simulator.network import ConstantLatency
from repro.simulator.request import Request
from repro.simulator.server import SimServer
from repro.strategies import C3Selector, LeastOutstandingSelector


class Harness:
    """A miniature two-server simulation around one client."""

    def __init__(self, selector, read_repair_probability=0.0, seed=0, service_times=(4.0, 4.0)):
        self.loop = EventLoop()
        self.metrics = MetricsCollector()
        self.servers = {}
        for i, service_time in enumerate(service_times):
            server = SimServer(
                self.loop,
                server_id=i,
                base_service_time_ms=service_time,
                concurrency=1,
                deterministic=True,
                rng=np.random.default_rng(i),
                on_complete=self._on_server_complete,
            )
            self.servers[i] = server
        self.client = SimClient(
            loop=self.loop,
            client_id=0,
            selector=selector,
            servers=self.servers,
            network=ConstantLatency(0.0),
            metrics=self.metrics,
            read_repair_probability=read_repair_probability,
            rng=np.random.default_rng(seed),
        )

    def _on_server_complete(self, request, feedback, service_time):
        self.loop.schedule(0.0, self.client.on_server_response, request, feedback, service_time)

    def submit(self, count=1, group=(0, 1)):
        requests = []
        for _ in range(count):
            request = Request.create(client_id=0, replica_group=group, created_at=self.loop.now)
            requests.append(request)
            self.client.on_request(request)
        return requests


class TestBasicFlow:
    def test_request_completes_and_records_latency(self):
        harness = Harness(LeastOutstandingSelector(rng=np.random.default_rng(0)))
        (request,) = harness.submit(1)
        harness.loop.run_until_idle()
        assert request.completed_at is not None
        assert harness.metrics.completed_requests == 1
        assert request.latency == pytest.approx(4.0)

    def test_multiple_requests_all_complete(self):
        harness = Harness(LeastOutstandingSelector(rng=np.random.default_rng(0)))
        requests = harness.submit(6)
        harness.loop.run_until_idle()
        assert all(r.completed_at is not None for r in requests)
        assert harness.metrics.completed_requests == 6

    def test_lor_spreads_requests_across_servers(self):
        harness = Harness(LeastOutstandingSelector(rng=np.random.default_rng(0)))
        harness.submit(4)
        harness.loop.run_until_idle()
        assert harness.servers[0].requests_received == 2
        assert harness.servers[1].requests_received == 2


class TestReadRepair:
    def test_read_repair_duplicates_to_other_replicas(self):
        harness = Harness(
            LeastOutstandingSelector(rng=np.random.default_rng(0)), read_repair_probability=1.0
        )
        harness.submit(1)
        harness.loop.run_until_idle()
        total_received = sum(s.requests_received for s in harness.servers.values())
        assert total_received == 2  # primary + one duplicate (RF=2 group)
        assert harness.client.read_repairs_issued == 1
        # Only the primary counts towards latency.
        assert harness.metrics.completed_requests == 1
        assert harness.metrics.duplicate_requests == 1

    def test_no_read_repair_when_probability_zero(self):
        harness = Harness(
            LeastOutstandingSelector(rng=np.random.default_rng(0)), read_repair_probability=0.0
        )
        harness.submit(3)
        harness.loop.run_until_idle()
        assert harness.client.read_repairs_issued == 0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            Harness(LeastOutstandingSelector(), read_repair_probability=1.5)


class TestBackpressureRetries:
    def _c3_selector(self, initial_rate=1.0):
        config = C3Config(initial_rate=initial_rate, rate_delta_ms=10.0, concurrency_weight=1.0)
        return C3Selector(config)

    def test_backpressured_requests_eventually_complete(self):
        harness = Harness(self._c3_selector(initial_rate=1.0))
        requests = harness.submit(6)
        harness.loop.run_until_idle()
        assert all(r.completed_at is not None for r in requests)
        assert harness.metrics.backpressure_events > 0

    def test_backpressured_request_marked(self):
        harness = Harness(self._c3_selector(initial_rate=1.0))
        requests = harness.submit(6)
        harness.loop.run_until_idle()
        assert any(r.backpressured for r in requests)

    def test_selector_outstanding_returns_to_zero(self):
        selector = self._c3_selector(initial_rate=2.0)
        harness = Harness(selector)
        harness.submit(8)
        harness.loop.run_until_idle()
        assert selector.scheduler.scorer.total_outstanding() == 0
        assert selector.pending_backlog() == 0

    def test_c3_prefers_the_faster_server(self):
        selector = self._c3_selector(initial_rate=100.0)
        harness = Harness(selector, service_times=(2.0, 20.0))
        # Submit sequentially so feedback is available for later requests.
        for _ in range(20):
            harness.submit(1)
            harness.loop.run_until_idle()
        assert harness.servers[0].requests_received > harness.servers[1].requests_received
