"""Property-based tests for the discrete-event loop (hypothesis).

These pin down the invariants the whole simulator's determinism rests on:

* events fire in ``(time, seq)`` order — same-time events FIFO;
* cancelled events never fire, whatever the cancellation pattern;
* ``run(until=h)`` never executes an event scheduled past ``h``;
* lazy heap compaction is invisible: any cancellation pattern leaves the
  surviving schedule's semantics untouched.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simulator.engine import EventLoop

# Times are non-negative, finite, and deliberately drawn from a small range
# with coarse granularity so collisions (same-time events) are common.
times = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)
#: One scheduling instruction: (absolute time, cancel this event?).
ops = st.lists(st.tuples(times, st.booleans()), min_size=0, max_size=150)


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_events_fire_in_time_then_seq_order(ops):
    loop = EventLoop()
    fired: list[int] = []
    expected: list[tuple[float, int]] = []
    for seq, (time, _) in enumerate(ops):
        loop.schedule_at(time, fired.append, seq)
        expected.append((time, seq))
    loop.run_until_idle()
    expected.sort()
    assert [seq for _, seq in expected] == fired


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_cancelled_events_never_fire(ops):
    loop = EventLoop()
    fired: list[int] = []
    survivors: list[int] = []
    for seq, (time, cancel) in enumerate(ops):
        event = loop.schedule_at(time, fired.append, seq)
        if cancel:
            event.cancel()
            event.cancel()  # double-cancel must be harmless
        else:
            survivors.append(seq)
    loop.run_until_idle()
    assert sorted(fired) == survivors
    assert loop.live_pending_events == 0


@settings(max_examples=60, deadline=None)
@given(ops=ops, horizon=times)
def test_run_until_never_passes_the_horizon(ops, horizon):
    loop = EventLoop()
    fired_times: list[float] = []
    for time, _ in ops:
        loop.schedule_at(time, lambda t=time: fired_times.append(t))
    loop.run(until=horizon)
    assert all(t <= horizon for t in fired_times)
    assert loop.now >= horizon  # clock reaches the horizon even when idle
    # Exactly the events at or before the horizon fired.
    assert len(fired_times) == sum(1 for t, _ in ops if t <= horizon)
    # The remainder still fires afterwards — nothing was lost at the boundary.
    loop.run_until_idle()
    assert len(fired_times) == len(ops)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.tuples(times, st.booleans()), min_size=80, max_size=250))
def test_compaction_preserves_pending_event_semantics(ops):
    """Reference semantics: a loop that compacts must match one that cannot."""
    compacting = EventLoop()
    reference = EventLoop()
    reference.COMPACT_MIN_SIZE = 10**9  # effectively disable compaction
    fired_a: list[int] = []
    fired_b: list[int] = []
    for seq, (time, cancel) in enumerate(ops):
        ev_a = compacting.schedule_at(time, fired_a.append, seq)
        ev_b = reference.schedule_at(time, fired_b.append, seq)
        if cancel:
            ev_a.cancel()
            ev_b.cancel()
    assert compacting.live_pending_events == reference.live_pending_events
    compacting.run_until_idle()
    reference.run_until_idle()
    assert fired_a == fired_b
    assert compacting.now == reference.now
    assert compacting.processed_events == reference.processed_events


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(st.tuples(times, st.booleans()), min_size=1, max_size=100),
    data=st.data(),
)
def test_step_horizon_interleaving_matches_single_run(ops, data):
    """Driving the loop in random run(until=...) slices equals one big run."""
    sliced = EventLoop()
    oneshot = EventLoop()
    fired_sliced: list[int] = []
    fired_oneshot: list[int] = []
    for seq, (time, cancel) in enumerate(ops):
        ev_a = sliced.schedule_at(time, fired_sliced.append, seq)
        ev_b = oneshot.schedule_at(time, fired_oneshot.append, seq)
        if cancel:
            ev_a.cancel()
            ev_b.cancel()
    horizon = 0.0
    while sliced.live_pending_events:
        horizon += data.draw(st.floats(min_value=0.5, max_value=20.0), label="slice")
        sliced.run(until=horizon)
    oneshot.run_until_idle()
    assert fired_sliced == fired_oneshot
