"""Unit tests for the scenario registry and the declarative layer."""

import numpy as np
import pytest

from repro.scenarios import (
    Scenario,
    ScenarioContext,
    ScenarioDefinition,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_rate_factor,
    validate_scenario,
)
from repro.scenarios.registry import _REGISTRY
from repro.simulator import SimulationConfig
from repro.simulator.engine import EventLoop
from repro.simulator.server import SimServer


def make_context(num_servers=5, config=None):
    loop = EventLoop()
    servers = [
        SimServer(loop, server_id=i, deterministic=True, rng=np.random.default_rng(i))
        for i in range(num_servers)
    ]
    config = config or SimulationConfig(num_servers=num_servers, num_clients=4, num_requests=0)
    return ScenarioContext(loop, servers, config, np.random.default_rng(0))


class TestRegistry:
    def test_builtin_names(self):
        names = scenario_names()
        assert {
            "baseline", "bimodal", "gc-storm", "crash-recovery",
            "slow-node", "network-jitter", "load-spike", "heterogeneous",
        } <= set(names)
        assert list(names) == sorted(names)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available scenarios: .*gc-storm"):
            get_scenario("gc-typo")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario_params \\['nope'\\]"):
            validate_scenario("gc-storm", {"nope": 1})

    def test_knob_override_reaches_the_component(self):
        config = SimulationConfig(
            num_servers=5, num_clients=4, num_requests=0,
            scenario="gc-storm", scenario_params={"slowdown_factor": 9.0},
        )
        scenario = build_scenario(config)
        assert scenario.components[0].slowdown_factor == 9.0

    def test_duplicate_registration_rejected(self):
        definition = get_scenario("baseline")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(definition)

    def test_custom_registration_roundtrip(self):
        definition = ScenarioDefinition(
            name="test-custom",
            description="test",
            factory=lambda config, params: (),
            knobs={"x": 1},
        )
        register_scenario(definition)
        try:
            assert get_scenario("test-custom") is definition
            config = SimulationConfig(
                num_servers=5, num_clients=4, num_requests=0, scenario="test-custom"
            )
            assert build_scenario(config).name == "test-custom"
        finally:
            del _REGISTRY["test-custom"]


class TestRateFactors:
    def test_bimodal_tracks_config_fields(self):
        config = SimulationConfig(
            num_servers=5, num_clients=4, num_requests=0,
            fluctuation_multiplier=3.0, scenario="bimodal",
        )
        assert scenario_rate_factor(config) == pytest.approx(2.0)
        # ...and matches the legacy fluctuation sizing, so swapping
        # scenario="bimodal" for the legacy fields keeps the arrival rate.
        legacy = config.copy(scenario=None, fluctuation_enabled=True)
        assert config.effective_rate_multiplier == pytest.approx(legacy.effective_rate_multiplier)

    def test_bimodal_knob_override(self):
        config = SimulationConfig(
            num_servers=5, num_clients=4, num_requests=0,
            scenario="bimodal", scenario_params={"rate_multiplier": 5.0, "fast_probability": 0.2},
        )
        assert scenario_rate_factor(config) == pytest.approx(0.8 + 0.2 * 5.0)

    def test_non_fluctuating_scenarios_do_not_inflate_capacity(self):
        for name in ("baseline", "gc-storm", "crash-recovery", "slow-node"):
            config = SimulationConfig(
                num_servers=5, num_clients=4, num_requests=0, scenario=name
            )
            assert config.effective_rate_multiplier == 1.0


class TestConfigValidation:
    def test_scenario_params_without_scenario_rejected(self):
        with pytest.raises(ValueError, match="without a scenario"):
            SimulationConfig(
                num_servers=5, num_clients=4, num_requests=0, scenario_params={"x": 1}
            )

    def test_unknown_scenario_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            SimulationConfig(num_servers=5, num_clients=4, num_requests=0, scenario="nope")


class TestTargetResolution:
    def test_all_and_none(self):
        ctx = make_context()
        assert len(ctx.resolve_targets("all")) == 5
        assert len(ctx.resolve_targets(None)) == 5

    def test_index_fraction_and_list(self):
        ctx = make_context()
        assert [s.server_id for s in ctx.resolve_targets(2)] == [2]
        assert [s.server_id for s in ctx.resolve_targets(-1)] == [4]
        assert [s.server_id for s in ctx.resolve_targets(0.4)] == [0, 1]
        assert [s.server_id for s in ctx.resolve_targets([1, 3])] == [1, 3]

    def test_invalid_specs_rejected(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            ctx.resolve_targets(1.5)
        with pytest.raises(ValueError):
            ctx.resolve_targets(True)


class TestScenarioLifecycle:
    def test_components_start_in_order_and_stop_in_reverse(self):
        calls = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def start(self, ctx):
                calls.append(("start", self.tag))

            def stop(self):
                calls.append(("stop", self.tag))

        scenario = Scenario(name="probe", components=(Probe("a"), Probe("b")))
        scenario.start(make_context())
        scenario.stop()
        assert calls == [("start", "a"), ("start", "b"), ("stop", "b"), ("stop", "a")]

    def test_stop_only_touches_started_components(self):
        calls = []

        class Probe:
            def start(self, ctx):
                calls.append("start")

            def stop(self):
                calls.append("stop")

        class Boom:
            def start(self, ctx):
                raise RuntimeError("nope")

            def stop(self):  # pragma: no cover - must not run
                calls.append("boom-stop")

        scenario = Scenario(name="probe", components=(Probe(), Boom()))
        with pytest.raises(RuntimeError):
            scenario.start(make_context())
        scenario.stop()
        assert calls == ["start", "stop"]
