"""Golden-digest regression suite for the scenario engine.

Every builtin scenario × {C3, LOR, RAND} is pinned to the sha256 digest of
its full measurement (:meth:`SimulationResult.digest`), plus a set of
legacy-path pins captured *before* ``fluctuation.py`` was re-expressed on
the scenario primitives.  A failure here means a change silently altered
simulation semantics (event ordering, RNG stream layout, routing, metric
accounting) — if the change is intentional, update the pinned digest in the
same commit and say why in the commit message; if it isn't, the diff that
broke it is the bug.
"""

from __future__ import annotations

import pytest

from repro.simulator import SimulationConfig, run_simulation

# ---------------------------------------------------------------------------
# Legacy (scenario=None) pins, captured on the pre-refactor fluctuation.py:
# the bimodal fluctuation re-expressed on scenario primitives must stay
# byte-identical to the bespoke implementation it replaced.
# ---------------------------------------------------------------------------

LEGACY_CONFIGS = {
    "default_fluct_C3": dict(
        num_servers=9, num_clients=10, num_requests=300, utilization=0.6, strategy="C3", seed=7
    ),
    "default_fluct_LOR": dict(
        num_servers=9, num_clients=10, num_requests=300, utilization=0.6, strategy="LOR", seed=7
    ),
    "default_fluct_RAND": dict(
        num_servers=9, num_clients=10, num_requests=300, utilization=0.6, strategy="RAND", seed=7
    ),
    "no_fluct_C3": dict(
        num_servers=9, num_clients=10, num_requests=300, utilization=0.6, strategy="C3",
        seed=3, fluctuation_enabled=False,
    ),
    "interval50_LOR": dict(
        num_servers=9, num_clients=10, num_requests=250, utilization=0.7, strategy="LOR",
        seed=11, fluctuation_interval_ms=50.0,
    ),
}

LEGACY_DIGESTS = {
    "default_fluct_C3": "a03c7b058764ee2003b3a0a7ca06a310b3c485b8c096730bf22f94b203c3419a",
    "default_fluct_LOR": "cee45352f0514119e99597022c2bd6b831bf51bb4e293b97fa7760db8f8b0490",
    "default_fluct_RAND": "c4966994e4e55eaaf7d01fd1c17c2c5877d86e1b0fb515fa789b00b7e1c73c23",
    "no_fluct_C3": "5a0a1256db9acc7b9cfea8a348b3de1501ac448ff5f0081013c1c867425272ac",
    "interval50_LOR": "47a171c505d9dfe1f015ce980eb2d1da8ee578c039556a5e9fd434736a1dcb91",
}

# ---------------------------------------------------------------------------
# Builtin scenario pins.  Event times are pulled forward via scenario_params
# where the registry defaults would land beyond these short runs' horizon, so
# every pinned digest actually exercises its perturbation.
# ---------------------------------------------------------------------------

SCENARIO_PARAMS = {
    "baseline": {},
    "bimodal": {},
    "gc-storm": {"mean_interarrival_ms": 40.0, "mean_duration_ms": 15.0},
    "crash-recovery": {"first_at_ms": 20.0, "down_ms": 30.0, "stagger_ms": 25.0},
    "slow-node": {},
    "network-jitter": {"at_ms": 15.0},
    "load-spike": {"start_ms": 15.0, "end_ms": 60.0, "factor": 2.0},
    "heterogeneous": {},
}

STRATEGIES = ("C3", "LOR", "RAND")

SCENARIO_DIGESTS = {
    ("baseline", "C3"): "e7e5feca53d84d9f2e79cec07073f72e9f9641f4580626de5b1738c622cf23f8",
    ("baseline", "LOR"): "1e0d2212f74ed41023770efbcb2d99f8895d83e8388123e360c360e6384bc67b",
    ("baseline", "RAND"): "dd2264d82486ffe2fed49420caa1873be0acd8ae2840e020bafab9269a0af761",
    ("bimodal", "C3"): "3a13f5b551a81878f68f932d7ee265ee8625cc1fe6d3b27951fb3804ced2eb2d",
    ("bimodal", "LOR"): "3fb71491fdb365d3ba929f675facbffedfa34f8f0c5878b0038f92fe7b2b47a2",
    ("bimodal", "RAND"): "b3b29cadc3cf70477313ba22457520bdbd8eaa7ee7228609a4d1e40a6b1caa63",
    ("gc-storm", "C3"): "12b35edf8bc70f43814d736fa7777aeb624b92751b73e4214545ee44e30eb35e",
    ("gc-storm", "LOR"): "504af65c02cac0d9db6aa15c99a7ee427021f99bd54b36ff9ba0908412e10c62",
    ("gc-storm", "RAND"): "170993c85cad06c64f975fabbba36cca4052864d39cc5e755188cbf9de307cfb",
    ("crash-recovery", "C3"): "3e0867fd45a80600f263d02c38194dbe9c49ba6df82bbb10cbbcc813f19ec84e",
    ("crash-recovery", "LOR"): "3441f1529741887ad6bed6c3445d0556b9a9ee6cc22f9af704d155b6528d9929",
    ("crash-recovery", "RAND"): "ef3f7666eb4995f244159df372edc2c98f14e5289a2b928c2bbb5cdbca6d6761",
    ("slow-node", "C3"): "5af351c385af6c1611ae27eb954dfd91f7a9d7628ec9b99ce3357c54f737e187",
    ("slow-node", "LOR"): "3ba1132d53ee3fe4271409e692cd5cd17b806aa955096826529e33e79445754e",
    ("slow-node", "RAND"): "d318ddf89256005ee5e8d3b63fb3782018472a42c8954f3f4e2c45bae34570d0",
    ("network-jitter", "C3"): "d07193267ddbd3ed78db0e84b5b01489d8ec9bf6e2bc3fe8ba3b7f98e763fdd1",
    ("network-jitter", "LOR"): "369a18e0786bcbab6c856bcff50e2831c652b969bde576bb9cca76666d055ebd",
    ("network-jitter", "RAND"): "14bfe351e6a6c710f4bdd475cf799e578094be69181c6f1577eb2aed2ab56881",
    ("load-spike", "C3"): "496e6b458381de74ecc45c1694f34f880878152b38b01572d2cc60f78e096709",
    ("load-spike", "LOR"): "5df029730a6f712abe3fb6e1a5856a7b368dba51b7b5dd3ba6b29a240432241b",
    ("load-spike", "RAND"): "a2a749b73ed347b93eec84109acbcb4443bc98afde58aadefa172a27a092fbe3",
    ("heterogeneous", "C3"): "892766b0b4b76439df3918d1c610dcc1776ef43b1b98daa94d8182d44bb6df9b",
    ("heterogeneous", "LOR"): "9b486d5d954e983fa4f979e861ae2daf552c8bea37b4dd716201739b4765b436",
    ("heterogeneous", "RAND"): "aafa68f04fb1cd69a956ee34b2002dc46b07f2b6b92f79aa0c4816676d193b1b",
}


def scenario_config(scenario: str, strategy: str) -> SimulationConfig:
    return SimulationConfig(
        num_servers=9,
        num_clients=10,
        num_requests=400,
        utilization=0.6,
        strategy=strategy,
        seed=5,
        scenario=scenario,
        scenario_params=SCENARIO_PARAMS[scenario],
    )


class TestLegacyPathGolden:
    @pytest.mark.parametrize("name", sorted(LEGACY_CONFIGS))
    def test_legacy_digest_unchanged(self, name):
        result = run_simulation(SimulationConfig(**LEGACY_CONFIGS[name]))
        assert result.digest() == LEGACY_DIGESTS[name], (
            f"legacy run {name!r} no longer matches its pre-refactor digest: "
            "the scenario-engine refactor (or a later change) altered "
            "simulation semantics on the scenario=None path"
        )


class TestScenarioGolden:
    def test_every_builtin_scenario_is_pinned(self):
        from repro.scenarios import scenario_names

        pinned = {scenario for scenario, _ in SCENARIO_DIGESTS}
        assert pinned == set(scenario_names()), (
            "builtin scenario set changed: add/remove golden pins for the difference"
        )

    @pytest.mark.parametrize(
        "scenario,strategy", sorted(SCENARIO_DIGESTS), ids=lambda v: str(v)
    )
    def test_scenario_digest_pinned(self, scenario, strategy):
        result = run_simulation(scenario_config(scenario, strategy))
        assert result.completed_requests == 400
        assert result.digest() == SCENARIO_DIGESTS[(scenario, strategy)], (
            f"scenario {scenario!r} × {strategy} digest drifted — a refactor changed "
            "simulation semantics; update the pin only for an intentional change"
        )

    def test_scenarios_actually_perturb(self):
        # Sanity on the pins themselves: every perturbing scenario must
        # differ from baseline for the same strategy (otherwise the pinned
        # run never exercised its events).
        for strategy in STRATEGIES:
            baseline = SCENARIO_DIGESTS[("baseline", strategy)]
            for scenario in SCENARIO_PARAMS:
                if scenario == "baseline":
                    continue
                assert SCENARIO_DIGESTS[(scenario, strategy)] != baseline, (
                    f"{scenario} × {strategy} pinned digest equals baseline"
                )

    def test_digest_stable_across_consecutive_runs(self):
        config = scenario_config("crash-recovery", "C3")
        assert run_simulation(config).digest() == run_simulation(config).digest()
