"""Property-based tests for the scenario engine.

Invariants, not values:

* an arbitrary composition of scenario components — crash windows
  (including permanent failures of whole replica groups), GC pauses, load
  spikes, slowdowns, network steps — never deadlocks the simulation: the
  run always returns, bounded by the time cap;
* crashed servers are never dispatched to while down;
* serial and process-pool sweep execution stay byte-identical with
  scenarios in the grid.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.runner import SweepRunner, SweepSpec
from repro.scenarios import (
    CrashWindows,
    GCPauses,
    HeterogeneousServiceRates,
    LoadSpike,
    NetworkDelayChange,
    Scenario,
    ScenarioContext,
    SlowServers,
)
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator.request import Request
from repro.simulator.simulation import ReplicaSelectionSimulation

NUM_SERVERS = 6


def small_config(**overrides) -> SimulationConfig:
    params = dict(
        num_servers=NUM_SERVERS,
        num_clients=8,
        num_requests=120,
        utilization=0.6,
        strategy="RAND",
        seed=9,
        fluctuation_enabled=False,
        max_sim_time_ms=600.0,
    )
    params.update(overrides)
    return SimulationConfig(**params)


def run_composed(components, config) -> object:
    """Run a simulation with an ad-hoc (unregistered) component composition."""
    sim = ReplicaSelectionSimulation(config)
    sim.scenario = Scenario(name="property-mix", components=tuple(components))
    sim._scenario_ctx = ScenarioContext(
        loop=sim.loop,
        servers=[sim.servers[sid] for sid in range(config.num_servers)],
        config=config,
        rng=np.random.default_rng(123),
        simulation=sim,
    )
    return sim.run()


# Component strategies: times are kept inside / around the run's horizon so
# schedules genuinely overlap the workload (and each other).
_times = st.floats(min_value=0.0, max_value=300.0, allow_nan=False, allow_infinity=False)

_crash = st.builds(
    CrashWindows,
    first_at_ms=_times,
    down_ms=st.one_of(st.none(), st.floats(min_value=1.0, max_value=150.0)),
    stagger_ms=st.floats(min_value=0.0, max_value=100.0),
    repeats=st.integers(min_value=1, max_value=2),
    period_ms=st.floats(min_value=200.0, max_value=400.0),
    targets=st.lists(
        st.integers(min_value=0, max_value=NUM_SERVERS - 1), min_size=1, max_size=NUM_SERVERS, unique=True
    ).map(tuple),
)
_gc = st.builds(
    GCPauses,
    mean_interarrival_ms=st.floats(min_value=10.0, max_value=200.0),
    mean_duration_ms=st.floats(min_value=1.0, max_value=50.0),
    slowdown_factor=st.floats(min_value=1.5, max_value=10.0),
)
_slow = st.builds(
    SlowServers,
    factor=st.floats(min_value=1.5, max_value=8.0),
    start_ms=_times,
    end_ms=st.none(),
    targets=st.integers(min_value=0, max_value=NUM_SERVERS - 1),
)
_spike = st.tuples(_times, st.floats(min_value=10.0, max_value=200.0), st.floats(min_value=0.5, max_value=3.0)).map(
    lambda t: LoadSpike(start_ms=t[0], end_ms=t[0] + t[1], factor=t[2])
)
_net = st.builds(
    NetworkDelayChange,
    at_ms=_times,
    delay_ms=st.floats(min_value=0.05, max_value=2.0),
    jitter_ms=st.just(0.0),
)
_hetero = st.builds(HeterogeneousServiceRates, spread=st.floats(min_value=1.0, max_value=4.0))

_components = st.lists(st.one_of(_crash, _gc, _slow, _spike, _net, _hetero), min_size=1, max_size=4)


class TestArbitrarySchedulesNeverDeadlock:
    @given(components=_components, seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_run_always_returns_within_the_time_cap(self, components, seed):
        config = small_config(seed=seed)
        result = run_composed(components, config)
        # The run returned (no deadlock / livelock) and respected the cap.
        assert result.duration_ms <= config.max_sim_time_ms + 1e-6
        assert 0 <= result.completed_requests <= config.num_requests
        # Crash-free compositions must complete everything they generated —
        # unless the composition overloads the system so badly (e.g. stacked
        # GC-pause processes all slowing every server) that the run is cut
        # off by the time cap.  That is an unstable configuration, not a
        # deadlock: the loop kept processing events until time ran out.
        if not any(isinstance(c, CrashWindows) for c in components):
            assert (
                result.completed_requests == config.num_requests
                or result.duration_ms >= config.max_sim_time_ms - 1e-6
            )

    @given(components=_components)
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_teardown_restores_server_state(self, components):
        config = small_config()
        sim = ReplicaSelectionSimulation(config)
        sim.scenario = Scenario(name="property-mix", components=tuple(components))
        sim._scenario_ctx = ScenarioContext(
            loop=sim.loop,
            servers=[sim.servers[sid] for sid in range(config.num_servers)],
            config=config,
            rng=np.random.default_rng(7),
            simulation=sim,
        )
        sim.run()
        # Scenario.stop() ran at the end of run(): every server is back up
        # at nominal speed, ready for loop/server reuse.
        for server in sim.servers.values():
            assert server.is_up
            assert server.current_service_time_ms == pytest.approx(config.mean_service_time_ms)


class TestCrashedServersReceiveNoRequests:
    @given(
        first_at=st.floats(min_value=5.0, max_value=60.0),
        down=st.floats(min_value=10.0, max_value=120.0),
        strategy=st.sampled_from(["RAND", "LOR", "C3"]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_no_dispatch_lands_inside_a_down_window(self, first_at, down, strategy, seed):
        stagger = 17.0
        targets = (0, 2)
        windows = {
            sid: (first_at + k * stagger, first_at + k * stagger + down)
            for k, sid in enumerate(targets)
        }
        dispatches: list[tuple[float, object]] = []
        original = Request.mark_dispatched

        def spy(self, now, server_id):
            dispatches.append((now, server_id))
            return original(self, now, server_id)

        config = small_config(
            strategy=strategy,
            seed=seed,
            scenario="crash-recovery",
            scenario_params={
                "first_at_ms": first_at,
                "down_ms": down,
                "stagger_ms": stagger,
                "targets": list(targets),
            },
        )
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Request, "mark_dispatched", spy)
            result = run_simulation(config)
        assert dispatches, "the run dispatched nothing"
        assert result.completed_requests == config.num_requests
        for time, server_id in dispatches:
            window = windows.get(server_id)
            if window is not None:
                start, end = window
                assert not (start < time < end), (
                    f"request dispatched to server {server_id} at t={time:.3f} "
                    f"inside its down window ({start:.3f}, {end:.3f})"
                )


class TestSerialVsPoolWithScenarios:
    def test_pool_execution_matches_serial_byte_for_byte(self):
        spec = SweepSpec(
            base=small_config(num_requests=80),
            grid={
                "scenario": ("gc-storm", "crash-recovery"),
                "strategy": ("C3", "RAND"),
            },
            seeds=(0, 1),
        )
        serial = SweepRunner(parallel=False).run(spec)
        pooled = SweepRunner(max_workers=2).run(spec)
        assert serial.trial_digests() == pooled.trial_digests()
        for s, p in zip(serial.trials, pooled.trials):
            assert (s.params, s.seed) == (p.params, p.seed)
            assert s.summary == p.summary
