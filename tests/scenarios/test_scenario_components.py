"""Unit tests for scenario components and the new perturbation processes."""

import numpy as np
import pytest

from repro.scenarios import (
    ArrivalRateSchedule,
    CrashSchedule,
    CrashWindows,
    GCPauses,
    HeterogeneousServiceRates,
    LoadSpike,
    NetworkDelayChange,
    SlowServers,
)
from repro.simulator import ConstantLatency, SimulationConfig, run_simulation
from repro.simulator.engine import EventLoop
from repro.simulator.server import DownServerTracker, SimServer
from repro.simulator.simulation import ReplicaSelectionSimulation
from repro.scenarios import ScenarioContext
from repro.simulator.workload import PoissonArrivalProcess


def make_context(num_servers=5, config=None):
    loop = EventLoop()
    servers = [
        SimServer(loop, server_id=i, deterministic=True, rng=np.random.default_rng(i))
        for i in range(num_servers)
    ]
    config = config or SimulationConfig(num_servers=num_servers, num_clients=4, num_requests=0)
    return ScenarioContext(loop, servers, config, np.random.default_rng(0))


def make_server(loop, sid=0, tracker=None):
    return SimServer(
        loop, server_id=sid, deterministic=True,
        rng=np.random.default_rng(sid), down_tracker=tracker,
    )


class TestCrashSchedule:
    def test_crash_and_restore_edges(self):
        loop = EventLoop()
        tracker = DownServerTracker()
        server = make_server(loop, tracker=tracker)
        schedule = CrashSchedule(loop, [(server, 10.0, 30.0)])
        schedule.start()
        loop.run(until=5.0)
        assert server.is_up and tracker.count == 0
        loop.run(until=15.0)
        assert not server.is_up and tracker.count == 1
        loop.run(until=35.0)
        assert server.is_up and tracker.count == 0
        assert schedule.crashes == 1

    def test_down_server_queues_but_does_not_serve(self):
        from repro.simulator.request import Request

        loop = EventLoop()
        server = make_server(loop)
        server.crash()
        request = Request.create(client_id=0, replica_group=(0,), created_at=0.0)
        server.enqueue(request)
        loop.run(until=100.0)
        assert server.requests_completed == 0
        assert server.enqueued_while_down == 1
        server.restore()
        loop.run(until=200.0)
        assert server.requests_completed == 1

    def test_permanent_crash_and_stop_restores(self):
        loop = EventLoop()
        tracker = DownServerTracker()
        server = make_server(loop, tracker=tracker)
        schedule = CrashSchedule(loop, [(server, 5.0, None)])
        schedule.start()
        loop.run(until=50.0)
        assert not server.is_up
        schedule.stop()
        assert server.is_up and tracker.count == 0

    def test_invalid_window_rejected(self):
        loop = EventLoop()
        server = make_server(loop)
        with pytest.raises(ValueError):
            CrashSchedule(loop, [(server, 10.0, 5.0)])

    def test_crash_restore_idempotent(self):
        tracker = DownServerTracker()
        server = make_server(EventLoop(), tracker=tracker)
        server.crash()
        server.crash()
        assert tracker.count == 1 and server.crashes == 1
        server.restore()
        server.restore()
        assert tracker.count == 0


class TestArrivalRateSchedule:
    def test_steps_scale_the_base_rate_and_stop_restores(self):
        loop = EventLoop()
        process = PoissonArrivalProcess(
            loop, rate_per_ms=2.0, total_arrivals=10_000,
            on_arrival=lambda: None, rng=np.random.default_rng(0),
        )
        schedule = ArrivalRateSchedule(loop, process, [(10.0, 3.0), (20.0, 1.0)])
        process.start()
        schedule.start()
        loop.run(until=15.0)
        assert process.rate_per_ms == pytest.approx(6.0)
        loop.run(until=25.0)
        assert process.rate_per_ms == pytest.approx(2.0)
        assert schedule.changes == 2
        schedule.stop()
        assert process.rate_per_ms == pytest.approx(2.0)

    def test_invalid_steps_rejected(self):
        loop = EventLoop()
        process = PoissonArrivalProcess(
            loop, rate_per_ms=2.0, total_arrivals=1, on_arrival=lambda: None
        )
        with pytest.raises(ValueError):
            ArrivalRateSchedule(loop, process, [(10.0, 0.0)])
        with pytest.raises(ValueError):
            process.set_rate(0.0)


class TestDeclarativeComponents:
    def test_slow_servers_targets_one_server(self):
        ctx = make_context()
        component = SlowServers(factor=5.0, start_ms=0.0, end_ms=None, targets=1)
        component.start(ctx)
        ctx.loop.run(until=1.0)
        assert ctx.servers[1].current_service_time_ms == pytest.approx(20.0)
        assert ctx.servers[0].current_service_time_ms == pytest.approx(4.0)
        component.stop()
        assert ctx.servers[1].current_service_time_ms == pytest.approx(4.0)

    def test_heterogeneous_rates_within_spread_and_deterministic(self):
        ctx_a = make_context()
        ctx_b = make_context()
        component = HeterogeneousServiceRates(spread=3.0)
        component.start(ctx_a)
        HeterogeneousServiceRates(spread=3.0).start(ctx_b)
        times_a = [s.current_service_time_ms for s in ctx_a.servers]
        times_b = [s.current_service_time_ms for s in ctx_b.servers]
        assert times_a == times_b  # same scenario rng seed -> same fleet
        for t in times_a:
            assert 4.0 / 3.0 - 1e-9 <= t <= 12.0 + 1e-9
        assert len(set(times_a)) > 1
        component.stop()
        assert all(s.current_service_time_ms == pytest.approx(4.0) for s in ctx_a.servers)

    def test_crash_windows_staggers_targets(self):
        ctx = make_context()
        component = CrashWindows(
            first_at_ms=10.0, down_ms=5.0, stagger_ms=20.0, targets=(0, 1)
        )
        component.start(ctx)
        ctx.loop.run(until=12.0)
        assert not ctx.servers[0].is_up and ctx.servers[1].is_up
        ctx.loop.run(until=31.0)
        assert ctx.servers[0].is_up and not ctx.servers[1].is_up
        ctx.loop.run(until=40.0)
        assert all(s.is_up for s in ctx.servers)

    def test_load_spike_requires_ordered_window(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            LoadSpike(start_ms=10.0, end_ms=5.0).start(ctx)

    def test_network_change_swaps_the_simulation_model(self):
        config = SimulationConfig(
            num_servers=5, num_clients=4, num_requests=0, fluctuation_enabled=False
        )
        sim = ReplicaSelectionSimulation(config)
        ctx = make_context(config=config)
        ctx.simulation = sim
        ctx.loop = sim.loop
        component = NetworkDelayChange(at_ms=10.0, delay_ms=1.5)
        component.start(ctx)
        sim.loop.run(until=20.0)
        assert isinstance(sim.network, ConstantLatency)
        assert sim.network.delay_ms == pytest.approx(1.5)
        assert all(c.network is sim.network for c in sim.clients)
        component.stop()
        assert sim.network.delay_ms == pytest.approx(config.network_delay_ms)

    def test_network_component_requires_simulation(self):
        ctx = make_context()  # no simulation attached
        with pytest.raises(ValueError):
            NetworkDelayChange(at_ms=0.0, delay_ms=1.0).start(ctx)


class TestComposedSpeedPerturbations:
    """Regression: perturbation sources own independent speed factors, so
    composed components multiply instead of clobbering each other."""

    def test_gc_pause_ending_does_not_erase_a_permanent_slow_node(self):
        ctx = make_context()
        slow = SlowServers(factor=4.0, start_ms=0.0, end_ms=None, targets=0)
        gc = GCPauses(
            mean_interarrival_ms=5.0, mean_duration_ms=5.0, slowdown_factor=2.0
        )
        slow.start(ctx)
        gc.start(ctx)
        ctx.loop.run(until=500.0)
        server = ctx.servers[0]
        # Whatever state the GC process is in, the slow-node factor must
        # still be present (alone: 16 ms; during a pause: 32 ms).
        assert server.current_service_time_ms in (
            pytest.approx(16.0), pytest.approx(32.0)
        )
        gc.stop()
        assert server.current_service_time_ms == pytest.approx(16.0)
        slow.stop()
        assert server.current_service_time_ms == pytest.approx(4.0)

    def test_factors_multiply_while_both_sources_are_active(self):
        loop = EventLoop()
        server = make_server(loop)
        server.set_service_time_multiplier(4.0, source="slow-node")
        server.set_service_time_multiplier(2.0, source="gc")
        assert server.current_service_time_ms == pytest.approx(32.0)
        server.set_service_time_multiplier(1.0, source="gc")
        assert server.current_service_time_ms == pytest.approx(16.0)
        server.set_service_time_multiplier(1.0, source="slow-node")
        assert server.current_service_time_ms == pytest.approx(4.0)

    def test_default_source_keeps_single_writer_behavior(self):
        loop = EventLoop()
        server = make_server(loop)
        server.set_service_rate_multiplier(3.0)
        assert server.current_service_time_ms == pytest.approx(4.0 / 3.0)
        server.set_service_rate_multiplier(1.0)
        assert server.current_service_time_ms == pytest.approx(4.0)


class TestTargetRangeErrors:
    def test_out_of_range_target_is_a_clear_value_error(self):
        ctx = make_context(num_servers=3)
        with pytest.raises(ValueError, match="out of range for 3 servers"):
            ctx.resolve_targets(3)
        with pytest.raises(ValueError, match="out of range"):
            ctx.resolve_targets([0, 7])

    def test_crash_recovery_defaults_adapt_to_tiny_clusters(self):
        config = SimulationConfig(
            num_servers=3, num_clients=4, num_requests=60, utilization=0.5,
            strategy="RAND", seed=1, scenario="crash-recovery",
            scenario_params={"first_at_ms": 5.0, "down_ms": 10.0},
        )
        result = run_simulation(config)  # must not raise IndexError
        assert result.completed_requests == 60


class TestScenarioEndToEnd:
    def test_slow_node_shifts_load_away(self):
        config = SimulationConfig(
            num_servers=6, num_clients=8, num_requests=600, utilization=0.5,
            strategy="C3", seed=4, scenario="slow-node",
            scenario_params={"factor": 8.0, "target": 0},
        )
        result = run_simulation(config)
        completed = result.per_server_completed
        slow = completed.get(0, 0)
        others = [completed.get(sid, 0) for sid in range(1, 6)]
        assert slow < min(others), (
            f"slow node served {slow}, healthy nodes {others} — C3 should route around it"
        )

    def test_crash_scenario_reroutes_and_completes(self):
        config = SimulationConfig(
            num_servers=6, num_clients=8, num_requests=600, utilization=0.5,
            strategy="LOR", seed=4, scenario="crash-recovery",
            scenario_params={"first_at_ms": 20.0, "down_ms": 40.0, "stagger_ms": 10.0, "targets": [0, 1]},
        )
        result = run_simulation(config)
        assert result.completed_requests == 600
