"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import C3Config


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def c3_config() -> C3Config:
    """A small, fast C3 configuration used across unit tests."""
    return C3Config(initial_rate=5.0, rate_delta_ms=10.0, concurrency_weight=4.0)
