"""Tests for the ``search`` and ``report`` CLI commands."""

from repro.cli import main

SEARCH_ARGS = [
    "search",
    "--param", "cubic_c",
    "--values", "1e-4,2e-4,5e-4,1e-3",
    "--servers", "5",
    "--clients", "4",
    "--requests", "80",
    "--utilization", "0.7",
    "--num-seeds", "2",
    "--serial",
]


def run_search(capsys, *extra: str) -> str:
    assert main(SEARCH_ARGS + list(extra)) == 0
    return capsys.readouterr().out


class TestSearchCommand:
    def test_prints_rung_table_winner_and_budget(self, capsys, tmp_path):
        out = run_search(capsys, "--cache-dir", str(tmp_path / "cache"))
        assert "search: minimize p999 over 4 candidates (C3:cubic_c) × 2 seeds" in out
        assert "rung" in out and "candidates" in out and "executed" in out
        assert "winner: C3:gamma=" in out
        assert "of 8 dense" in out  # 4 candidates × 2 seeds

    def test_compare_dense_confirms_the_winner(self, capsys, tmp_path):
        out = run_search(
            capsys, "--cache-dir", str(tmp_path / "cache"), "--compare-dense"
        )
        assert "dense argmin:" in out
        assert "winner matches dense argmin" in out

    def test_json_export_round_trips(self, capsys, tmp_path):
        from repro.runner import SearchResult

        json_path = tmp_path / "search.json"
        out = run_search(
            capsys, "--cache-dir", str(tmp_path / "cache"), "--json", str(json_path)
        )
        assert "saved:" in out
        loaded = SearchResult.load(json_path)
        assert loaded.axis == "strategy" and loaded.metric == "p999"
        assert loaded.dense_trials == 8
        assert loaded.best.startswith("C3:gamma=")

    def test_empty_values_is_a_clean_error(self, capsys):
        assert main(["search", "--param", "cubic_c", "--values", " , "]) == 2
        assert "--values needs at least one candidate" in capsys.readouterr().err

    def test_unknown_param_is_a_clean_error(self, capsys):
        assert main(["search", "--param", "nope", "--values", "1,2"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_seed_flags_are_validated(self, capsys):
        assert main(SEARCH_ARGS + ["--num-seeds", "0"]) == 2
        assert "--num-seeds must be >= 1" in capsys.readouterr().err
        assert main(SEARCH_ARGS + ["--base-seed", "-1"]) == 2
        assert "--base-seed must be >= 0" in capsys.readouterr().err

    def test_bad_eta_is_a_clean_error(self, capsys):
        assert main(SEARCH_ARGS + ["--eta", "1"]) == 2
        assert "eta must be >= 2" in capsys.readouterr().err

    def test_search_listed_in_help(self, capsys):
        assert main([]) == 1
        assert "search" in capsys.readouterr().out


class TestReportCommand:
    def make_inputs(self, capsys, tmp_path):
        sweep_json = tmp_path / "sweep.json"
        assert main([
            "sweep", "--strategy", "C3", "--strategy", "LOR",
            "--servers", "5", "--clients", "4", "--requests", "80",
            "--num-seeds", "2", "--serial",
            "--cache-dir", str(tmp_path / "cache"), "--json", str(sweep_json),
        ]) == 0
        search_json = tmp_path / "search.json"
        assert main(
            SEARCH_ARGS
            + ["--cache-dir", str(tmp_path / "cache"), "--json", str(search_json)]
        ) == 0
        capsys.readouterr()
        return sweep_json, search_json

    def test_renders_markdown_and_html(self, capsys, tmp_path):
        sweep_json, search_json = self.make_inputs(capsys, tmp_path)
        output = tmp_path / "report.md"
        html_output = tmp_path / "report.html"
        assert main([
            "report", "--sweep", str(sweep_json), "--search", str(search_json),
            "--no-bench", "--output", str(output), "--html", str(html_output),
        ]) == 0
        out = capsys.readouterr().out
        assert f"wrote: {output}" in out and f"wrote: {html_output}" in out
        markdown = output.read_text(encoding="utf-8")
        assert "## Sweep: sweep" in markdown
        assert "**Winner: `C3:gamma=" in markdown
        assert "Performance trajectory" not in markdown  # --no-bench
        page = html_output.read_text(encoding="utf-8")
        assert page.startswith("<!DOCTYPE html>") and "<table>" in page

    def test_explicit_bench_snapshots_render_the_trajectory(self, capsys, tmp_path):
        import json

        sweep_json, _ = self.make_inputs(capsys, tmp_path)
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({
            "benchmarks": [{"fullname": "b.py::test_a", "stats": {"mean": 0.5}}]
        }), encoding="utf-8")
        output = tmp_path / "report.md"
        assert main([
            "report", "--sweep", str(sweep_json), "--bench", str(bench),
            "--output", str(output),
        ]) == 0
        markdown = output.read_text(encoding="utf-8")
        assert "Performance trajectory" in markdown and "test_a" in markdown

    def test_missing_bench_snapshot_is_a_clean_error(self, capsys, tmp_path):
        assert main([
            "report", "--bench", str(tmp_path / "nope.json"),
            "--output", str(tmp_path / "report.md"),
        ]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unreadable_sweep_input_is_a_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["report", "--sweep", str(bad), "--output", str(tmp_path / "r.md")]) == 2
        assert "cannot load sweep result" in capsys.readouterr().err

    def test_unreadable_search_input_is_a_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert main(["report", "--search", str(bad), "--output", str(tmp_path / "r.md")]) == 2
        assert "cannot load search result" in capsys.readouterr().err
