"""Behavioral tests for the SweepRunner: caching, pooling, aggregation."""

import pytest

from repro.runner import SweepRunner, SweepResult, SweepSpec
from repro.simulator import SimulationConfig

#: A grid small enough for the pool path to stay fast on one core.
TINY = SimulationConfig(num_servers=9, num_clients=8, num_requests=200)


def tiny_spec(**overrides) -> SweepSpec:
    params = dict(
        base=TINY,
        grid={"strategy": ("LOR", "RR")},
        seeds=(0, 1),
    )
    params.update(overrides)
    return SweepSpec(**params)


class TestExecution:
    def test_serial_run_produces_one_result_per_trial(self):
        result = SweepRunner(parallel=False).run(tiny_spec())
        assert len(result.trials) == 4
        assert result.executed == 4 and result.cached == 0
        assert [t.seed for t in result.trials] == [0, 1, 0, 1]
        assert {t.strategy for t in result.trials} == {"LOR", "RR"}
        assert all(t.completed_requests == 200 for t in result.trials)
        assert all(not t.from_cache for t in result.trials)

    def test_pool_results_in_spec_order(self):
        serial = SweepRunner(parallel=False).run(tiny_spec())
        pooled = SweepRunner(max_workers=2).run(tiny_spec())
        assert [(t.params, t.seed) for t in pooled.trials] == [
            (t.params, t.seed) for t in serial.trials
        ]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(max_workers=0)


class TestCacheBehavior:
    def test_cache_hit_skips_execution(self, tmp_path):
        runner = SweepRunner(parallel=False, cache_dir=tmp_path)
        first = runner.run(tiny_spec())
        assert (first.executed, first.cached) == (4, 0)
        second = runner.run(tiny_spec())
        assert (second.executed, second.cached) == (0, 4)
        assert all(t.from_cache for t in second.trials)
        assert second.trial_digests() == first.trial_digests()

    def test_spec_change_invalidates_only_affected_trials(self, tmp_path):
        runner = SweepRunner(parallel=False, cache_dir=tmp_path)
        runner.run(tiny_spec())
        # A new seed re-executes exactly the new trials; old seeds are reused.
        grown = runner.run(tiny_spec(seeds=(0, 1, 2)))
        assert (grown.executed, grown.cached) == (2, 4)
        # A base-config change invalidates everything.
        changed = runner.run(tiny_spec(base=TINY.copy(num_requests=201)))
        assert (changed.executed, changed.cached) == (4, 0)

    def test_cache_is_shared_across_runner_instances(self, tmp_path):
        SweepRunner(parallel=False, cache_dir=tmp_path).run(tiny_spec())
        rerun = SweepRunner(max_workers=2, cache_dir=tmp_path).run(tiny_spec())
        assert rerun.executed == 0 and rerun.cached == 4

    def test_no_cache_dir_means_no_reuse(self):
        runner = SweepRunner(parallel=False)
        assert runner.run(tiny_spec()).executed == 4
        assert runner.run(tiny_spec()).executed == 4

    def test_schema_drifted_entry_is_a_miss(self, tmp_path):
        runner = SweepRunner(parallel=False, cache_dir=tmp_path)
        first = runner.run(tiny_spec())
        # Simulate an entry written by an older TrialResult layout.
        stale_key = first.trials[0].key
        payload = runner.cache.get(stale_key)
        payload["renamed_field"] = payload.pop("throughput_rps")
        runner.cache.put(stale_key, payload)
        rerun = runner.run(tiny_spec())
        assert (rerun.executed, rerun.cached) == (1, 3)
        assert rerun.trial_digests() == first.trial_digests()

    def test_float_typed_int_field_still_hits_cache(self, tmp_path):
        # payload_to_config normalizes 8.0 -> 8; the recorded key must stay
        # the one the scheduler looks up, or the cache would never hit.
        spec = tiny_spec(grid={"strategy": ("LOR",), "num_clients": (8.0,)})
        runner = SweepRunner(parallel=False, cache_dir=tmp_path)
        first = runner.run(spec)
        assert first.executed == 2
        assert [t.key for t in first.trials] == [t.key for t in spec.trials()]
        rerun = runner.run(spec)
        assert (rerun.executed, rerun.cached) == (0, 2)


class TestAggregation:
    def test_aggregates_group_by_grid_point_in_order(self):
        result = SweepRunner(parallel=False).run(tiny_spec(seeds=(0, 1, 2)))
        points = result.aggregates()
        assert [p.params["strategy"] for p in points] == ["LOR", "RR"]
        assert all(p.n == 3 and p.seeds == (0, 1, 2) for p in points)
        for point in points:
            p99 = point.metrics["p99"]
            assert p99.n == 3
            assert p99.mean > 0
            assert p99.halfwidth >= 0
            assert p99.lo <= p99.mean <= p99.hi
            assert set(point.metrics) == {"mean", "median", "p95", "p99", "p999", "throughput_rps"}

    def test_single_seed_has_degenerate_interval(self):
        result = SweepRunner(parallel=False).run(tiny_spec(seeds=(0,)))
        for point in result.aggregates():
            assert point.metrics["p99"].halfwidth == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        result = SweepRunner(parallel=False).run(tiny_spec())
        path = result.save(tmp_path / "out" / "sweep.json")
        loaded = SweepResult.load(path)
        assert loaded.spec_key == result.spec_key
        assert loaded.trial_digests() == result.trial_digests()
        assert [p.params for p in loaded.aggregates()] == [p.params for p in result.aggregates()]
