"""Determinism regression suite.

The contract everything else (caching, parallel sweeps, reproducibility of
the paper's figures) depends on: a ``SimulationConfig`` plus its seed fully
determines the ``SimulationResult`` — byte for byte, in the same process, in
a fresh run, and across serial vs. process-pool execution.
"""

import numpy as np
import pytest

from repro.runner import SweepRunner, SweepSpec
from repro.simulator import SimulationConfig, run_simulation

STRATEGIES = ("C3", "LOR", "RR")


def tiny_config(strategy: str, **overrides) -> SimulationConfig:
    params = dict(
        num_servers=9,
        num_clients=10,
        num_requests=300,
        utilization=0.6,
        strategy=strategy,
        seed=7,
    )
    params.update(overrides)
    return SimulationConfig(**params)


class TestSameProcessDeterminism:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_two_runs_are_byte_identical(self, strategy):
        a = run_simulation(tiny_config(strategy))
        b = run_simulation(tiny_config(strategy))
        assert a.latencies_ms.tobytes() == b.latencies_ms.tobytes()
        assert a.read_latencies_ms.tobytes() == b.read_latencies_ms.tobytes()
        assert a.write_latencies_ms.tobytes() == b.write_latencies_ms.tobytes()
        assert a.duration_ms == b.duration_ms
        assert a.completed_requests == b.completed_requests
        assert a.issued_requests == b.issued_requests
        assert a.duplicate_requests == b.duplicate_requests
        assert a.backpressure_events == b.backpressure_events
        assert set(a.server_load_series) == set(b.server_load_series)
        for sid, series in a.server_load_series.items():
            assert np.array_equal(series, b.server_load_series[sid])
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_different_seeds_differ(self, strategy):
        a = run_simulation(tiny_config(strategy, seed=7))
        b = run_simulation(tiny_config(strategy, seed=8))
        assert a.digest() != b.digest()

    def test_digest_covers_the_strategy_label(self):
        # Two strategies on the same seed must not collide.
        digests = {run_simulation(tiny_config(s)).digest() for s in STRATEGIES}
        assert len(digests) == len(STRATEGIES)


class TestSerialVsPoolDeterminism:
    def test_pool_execution_matches_serial_byte_for_byte(self):
        spec = SweepSpec(
            base=tiny_config("C3", num_requests=200),
            grid={"strategy": STRATEGIES},
            seeds=(0, 1),
        )
        serial = SweepRunner(parallel=False).run(spec)
        pooled = SweepRunner(max_workers=2).run(spec)
        assert serial.trial_digests() == pooled.trial_digests()
        for s, p in zip(serial.trials, pooled.trials):
            assert (s.params, s.seed) == (p.params, p.seed)
            assert s.summary == p.summary
            assert s.throughput_rps == p.throughput_rps
            assert s.duration_ms == p.duration_ms

    def test_in_process_run_matches_runner_trials(self):
        # The runner's worker path (payload → config → run) must be a
        # faithful replay of calling run_simulation directly.
        config = tiny_config("LOR", num_requests=200, seed=3)
        direct = run_simulation(config)
        spec = SweepSpec(base=config.copy(seed=0), grid={}, seeds=(3,))
        [trial] = SweepRunner(max_workers=2).run(spec).trials
        assert trial.result_digest == direct.digest()
        assert trial.summary == direct.summary.as_dict()
