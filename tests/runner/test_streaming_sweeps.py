"""Sweep-runner coverage for scale-mode (streaming) metrics.

Extends the determinism contract to streaming mode: serial and
process-pool execution stay digest-identical, histograms survive the
worker→parent and cache round trips, and per-grid-point aggregation pools
replicates by bucket-merge instead of concatenating raw latency arrays.
"""

from __future__ import annotations

import pytest

from repro.analysis.histogram import LatencyHistogram
from repro.runner import SweepRunner, SweepSpec, TrialResult
from repro.simulator import SimulationConfig


def base_config(**overrides) -> SimulationConfig:
    params = dict(
        num_servers=9,
        num_clients=10,
        num_requests=250,
        utilization=0.6,
        strategy="C3",
        seed=0,
        metrics_mode="streaming",
    )
    params.update(overrides)
    return SimulationConfig(**params)


class TestStreamingDeterminism:
    def test_pool_matches_serial_digest_for_digest(self):
        spec = SweepSpec(
            base=base_config(),
            grid={"strategy": ("C3", "LOR"), "metrics_mode": ("exact", "streaming")},
            seeds=(0, 1),
        )
        serial = SweepRunner(parallel=False).run(spec)
        pooled = SweepRunner(max_workers=2).run(spec)
        assert serial.trial_digests() == pooled.trial_digests()
        for s, p in zip(serial.trials, pooled.trials):
            assert s.summary == p.summary
            assert s.histograms == p.histograms

    def test_exact_and_streaming_digests_differ_per_trial(self):
        spec = SweepSpec(
            base=base_config(), grid={"metrics_mode": ("exact", "streaming")}, seeds=(0,)
        )
        exact, streaming = SweepRunner(parallel=False).run(spec).trials
        assert exact.metrics_mode == "exact" and streaming.metrics_mode == "streaming"
        assert exact.result_digest != streaming.result_digest
        assert exact.histograms is None
        assert streaming.histograms is not None


class TestHistogramPlumbing:
    def test_trial_histograms_are_serialized_bucket_maps(self):
        spec = SweepSpec(base=base_config(), grid={}, seeds=(0,))
        [trial] = SweepRunner(parallel=False).run(spec).trials
        payload = trial.histograms["all"]
        hist = LatencyHistogram.from_dict(payload)
        assert hist.count == trial.completed_requests
        # Far smaller than the raw sample set: that is the point.
        assert hist.bucket_count < trial.completed_requests

    def test_cache_round_trip_preserves_histograms(self, tmp_path):
        spec = SweepSpec(base=base_config(), grid={}, seeds=(0, 1))
        runner = SweepRunner(parallel=False, cache_dir=tmp_path)
        first = runner.run(spec)
        rerun = runner.run(spec)
        assert rerun.executed == 0 and rerun.cached == 2
        assert rerun.trial_digests() == first.trial_digests()
        for a, b in zip(first.trials, rerun.trials):
            assert a.histograms == b.histograms

    def test_old_cache_entries_without_histogram_keys_still_load(self):
        payload = {
            "params": {},
            "seed": 0,
            "strategy": "C3",
            "key": "k" * 64,
            "summary": {"median": 1.0, "p99.9": 2.0},
            "throughput_rps": 10.0,
            "completed_requests": 5,
            "issued_requests": 5,
            "duplicate_requests": 0,
            "backpressure_events": 0,
            "duration_ms": 100.0,
            "result_digest": "d" * 64,
            "wall_time_s": 0.1,
        }
        trial = TrialResult.from_dict(payload, from_cache=True)
        assert trial.metrics_mode == "exact"
        assert trial.histograms is None

    def test_sweep_result_json_round_trip(self, tmp_path):
        spec = SweepSpec(base=base_config(), grid={}, seeds=(0, 1))
        result = SweepRunner(parallel=False).run(spec)
        path = result.save(tmp_path / "sweep.json")
        from repro.runner import SweepResult

        loaded = SweepResult.load(path)
        assert loaded.trial_digests() == result.trial_digests()
        assert [t.histograms for t in loaded.trials] == [t.histograms for t in result.trials]


class TestPooledAggregation:
    def test_aggregates_pool_replicates_by_bucket_merge(self):
        spec = SweepSpec(base=base_config(), grid={}, seeds=(0, 1, 2))
        result = SweepRunner(parallel=False).run(spec)
        [point] = result.aggregates()
        assert point.pooled is not None
        total = sum(t.completed_requests for t in result.trials)
        assert point.pooled["count"] == total
        # The pooled distribution spans all replicates.
        mins = [t.summary["min"] for t in result.trials]
        maxes = [t.summary["max"] for t in result.trials]
        assert point.pooled["min"] == pytest.approx(min(mins))
        assert point.pooled["max"] == pytest.approx(max(maxes))
        assert point.to_dict()["pooled"] == point.pooled

    def test_exact_mode_aggregates_have_no_pool(self):
        spec = SweepSpec(base=base_config(metrics_mode="exact"), grid={}, seeds=(0, 1))
        [point] = SweepRunner(parallel=False).run(spec).aggregates()
        assert point.pooled is None
