"""Unit tests for the resumable-sweep checkpoint manifest."""

import json

import pytest

from repro.runner import (
    CheckpointMismatch,
    SweepCheckpoint,
    SweepRunner,
    SweepSpec,
    checkpoint_path_for,
    seed_range,
)
from repro.simulator import SimulationConfig


def tiny_spec(**overrides) -> SweepSpec:
    params = dict(num_servers=5, num_clients=4, num_requests=80, utilization=0.6)
    params.update(overrides)
    return SweepSpec(
        base=SimulationConfig(**params),
        grid={"strategy": ("C3", "LOR")},
        seeds=seed_range(3),
    )


class TestManifestLifecycle:
    def test_checkpoint_path_layout(self, tmp_path):
        path = checkpoint_path_for(tmp_path, "abc123")
        assert path == tmp_path / "checkpoints" / "abc123.json"

    def test_create_then_load_round_trips(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "manifest.json"
        created = SweepCheckpoint.create(spec, path)
        assert path.is_file()
        loaded = SweepCheckpoint.load(path)
        assert loaded.spec_key == spec.key
        assert loaded.trial_keys == tuple(t.key for t in spec.trials())
        assert loaded.completed_indices() == ()
        assert loaded.description == spec.describe()
        assert loaded.num_trials == created.num_trials == 6

    def test_open_creates_when_missing_and_loads_when_present(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "manifest.json"
        first = SweepCheckpoint.open(spec, path)
        first.mark_completed(0, 2)
        second = SweepCheckpoint.open(spec, path)
        assert second.completed_indices() == (0, 2)

    def test_open_rejects_manifest_for_a_different_spec(self, tmp_path):
        path = tmp_path / "manifest.json"
        SweepCheckpoint.create(tiny_spec(), path)
        other = tiny_spec(num_requests=81)
        with pytest.raises(CheckpointMismatch, match="delete the manifest"):
            SweepCheckpoint.open(other, path)

    def test_corrupt_manifest_is_a_clean_value_error(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt sweep checkpoint"):
            SweepCheckpoint.load(path)

    def test_unsupported_version_is_a_clean_value_error(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported sweep checkpoint"):
            SweepCheckpoint.load(path)

    def test_missing_manifest_is_a_clean_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read sweep checkpoint"):
            SweepCheckpoint.load(tmp_path / "nope.json")


class TestCompletionState:
    def make(self, tmp_path) -> SweepCheckpoint:
        return SweepCheckpoint.create(tiny_spec(), tmp_path / "manifest.json")

    def test_mark_completed_persists_immediately(self, tmp_path):
        checkpoint = self.make(tmp_path)
        checkpoint.mark_completed(1, 4)
        reloaded = SweepCheckpoint.load(checkpoint.path)
        assert reloaded.completed_indices() == (1, 4)
        assert reloaded.pending_indices() == (0, 2, 3, 5)
        assert reloaded.is_completed(4) and not reloaded.is_completed(0)

    def test_mark_completed_is_idempotent(self, tmp_path):
        checkpoint = self.make(tmp_path)
        checkpoint.mark_completed(1)
        before = checkpoint.path.read_bytes()
        checkpoint.mark_completed(1)
        assert checkpoint.path.read_bytes() == before
        assert checkpoint.num_completed == 1

    def test_out_of_range_indices_are_rejected(self, tmp_path):
        checkpoint = self.make(tmp_path)
        with pytest.raises(ValueError, match="out of range"):
            checkpoint.mark_completed(6)
        with pytest.raises(ValueError, match="out of range"):
            SweepCheckpoint(
                checkpoint.path, checkpoint.spec_key, checkpoint.trial_keys, completed=(-1,)
            )

    def test_progress_reporting(self, tmp_path):
        checkpoint = self.make(tmp_path)
        assert checkpoint.describe_progress() == "0/6 trials complete"
        assert not checkpoint.is_complete
        checkpoint.mark_completed(*range(6))
        assert checkpoint.describe_progress() == "6/6 trials complete"
        assert checkpoint.is_complete


class TestRunnerIntegration:
    def test_max_trials_caps_executions_and_resume_completes(self, tmp_path):
        spec = tiny_spec()
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path / "cache", parallel=False)
        manifest = checkpoint_path_for(tmp_path / "cache", spec.key)

        first = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest), max_trials=2)
        assert first.executed == 2 and not first.complete
        assert len(first.trials) == 2 and first.total_trials == 6

        second = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest))
        assert second.executed == 4 and second.cached == 2 and second.complete

        third = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest))
        assert third.executed == 0 and third.cached == 6
        assert second.digest() == third.digest()

    def test_resumed_digest_matches_uninterrupted_run(self, tmp_path):
        spec = tiny_spec()
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path / "cache", parallel=False)
        manifest = checkpoint_path_for(tmp_path / "cache", spec.key)
        runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest), max_trials=3)
        resumed = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest))

        clean = SweepRunner(max_workers=1, cache_dir=tmp_path / "other", parallel=False).run(spec)
        assert resumed.digest() == clean.digest()

    def test_run_rejects_checkpoint_for_a_different_spec(self, tmp_path):
        spec = tiny_spec()
        other = tiny_spec(num_requests=81)
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path / "cache", parallel=False)
        checkpoint = SweepCheckpoint.open(spec, tmp_path / "cache" / "m.json")
        with pytest.raises(CheckpointMismatch):
            runner.run(other, checkpoint=checkpoint)

    def test_negative_max_trials_is_rejected(self, tmp_path):
        runner = SweepRunner(max_workers=1, parallel=False)
        with pytest.raises(ValueError, match="max_trials must be >= 0"):
            runner.run(tiny_spec(), max_trials=-1)

    def test_manifest_never_substitutes_for_the_cache(self, tmp_path):
        # A stale completion mark with a wiped cache must re-execute, not
        # skip: the manifest is an index over the cache, not a result store.
        spec = tiny_spec()
        cache_dir = tmp_path / "cache"
        runner = SweepRunner(max_workers=1, cache_dir=cache_dir, parallel=False)
        manifest = checkpoint_path_for(cache_dir, spec.key)
        baseline = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest))
        for entry in cache_dir.glob("**/*.json"):
            if "checkpoints" not in entry.parts:
                entry.unlink()
        rerun = runner.run(spec, checkpoint=SweepCheckpoint.open(spec, manifest))
        assert rerun.executed == 6 and rerun.cached == 0
        assert rerun.digest() == baseline.digest()
