"""Tests for successive-halving search: schedules, invariants, budgets."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    SweepRunner,
    candidate_digest,
    dense_argmin,
    rung_schedule,
    successive_halving,
)
from repro.simulator import SimulationConfig

#: Distinct cubic_c spellings; canonicalization maps them to C3:gamma=… forms.
VALUE_POOL = ("1e-5", "5e-5", "1e-4", "2e-4", "5e-4", "1e-3", "3e-3", "6e-3")


def tiny_base(**overrides) -> SimulationConfig:
    params = dict(num_servers=5, num_clients=4, num_requests=80, utilization=0.7)
    params.update(overrides)
    return SimulationConfig(**params)


def cubic_candidates(values) -> list[str]:
    return [f"c3:cubic_c={value}" for value in values]


class TestRungSchedule:
    def test_reference_shape_12_candidates_8_seeds_eta3(self):
        assert rung_schedule(12, 8, eta=3) == [(12, 1), (4, 3), (2, 8)]

    def test_single_candidate_runs_one_full_rung(self):
        assert rung_schedule(1, 5, eta=2) == [(1, 5)]

    def test_min_seeds_floors_the_early_rungs(self):
        schedule = rung_schedule(8, 8, eta=2, min_seeds=4)
        assert all(r >= 4 for _, r in schedule)
        assert schedule[-1][1] == 8

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            rung_schedule(0, 4, eta=2)
        with pytest.raises(ValueError, match="at least one seed"):
            rung_schedule(4, 0, eta=2)
        with pytest.raises(ValueError, match="eta must be >= 2"):
            rung_schedule(4, 4, eta=1)
        with pytest.raises(ValueError, match="min_seeds must be >= 1"):
            rung_schedule(4, 4, eta=2, min_seeds=0)

    @given(
        num_candidates=st.integers(min_value=1, max_value=60),
        num_seeds=st.integers(min_value=1, max_value=40),
        eta=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_schedule_invariants(self, num_candidates, num_seeds, eta):
        schedule = rung_schedule(num_candidates, num_seeds, eta)
        counts = [n for n, _ in schedule]
        seeds = [r for _, r in schedule]
        # First rung covers every candidate; the last always runs the full
        # seed set (the winner must be ranked at full replication).
        assert counts[0] == num_candidates
        assert seeds[-1] == num_seeds
        assert all(1 <= r <= num_seeds for r in seeds)
        assert seeds == sorted(seeds)
        assert counts == sorted(counts, reverse=True)
        assert all(a > b for a, b in zip(counts, counts[1:]))
        # Each rung keeps ceil(n / eta) survivors.
        for n, successor in zip(counts, counts[1:]):
            assert successor == math.ceil(n / eta)


class TestCandidateDigest:
    def test_strategy_spellings_share_a_digest(self):
        assert candidate_digest("strategy", "c3:cubic_c=2e-4") == candidate_digest(
            "strategy", "C3:gamma=0.0002"
        )
        assert candidate_digest("strategy", "c3:cubic_c=2e-4") != candidate_digest(
            "strategy", "c3:cubic_c=3e-4"
        )

    def test_non_strategy_axes_hash_their_value(self):
        assert candidate_digest("utilization", 0.7) == candidate_digest("utilization", 0.7)
        assert candidate_digest("utilization", 0.7) != candidate_digest("utilization", 0.8)


class TestSuccessiveHalving:
    def test_duplicate_candidates_after_canonicalization_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate candidates"):
            successive_halving(
                tiny_base(), "strategy", ["c3:cubic_c=2e-4", "C3:gamma=0.0002"], seeds=(0,)
            )

    def test_unknown_metric_is_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            successive_halving(
                tiny_base(), "strategy", cubic_candidates(VALUE_POOL[:2]), (0,), metric="p50"
            )

    def test_winner_is_never_worse_than_any_fully_evaluated_candidate(self):
        result = successive_halving(
            tiny_base(), "strategy", cubic_candidates(VALUE_POOL[:6]), seeds=range(4), eta=2
        )
        assert result.best in result.full_scores
        assert result.best_score == min(result.full_scores.values())
        assert result.rungs[-1].seeds == tuple(range(4))
        assert result.executed == sum(r.executed for r in result.rungs)
        assert result.dense_trials == 6 * 4

    @given(
        num_values=st.integers(min_value=2, max_value=5),
        num_seeds=st.integers(min_value=1, max_value=3),
        eta=st.integers(min_value=2, max_value=3),
        metric=st.sampled_from(["p999", "p99", "mean", "throughput_rps"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_winner_optimal_among_fully_evaluated(
        self, num_values, num_seeds, eta, metric
    ):
        minimize = metric != "throughput_rps"
        result = successive_halving(
            tiny_base(num_requests=60),
            "strategy",
            cubic_candidates(VALUE_POOL[:num_values]),
            seeds=range(num_seeds),
            metric=metric,
            eta=eta,
            minimize=minimize,
        )
        # The invariant the search construction guarantees: the returned
        # config is never worse (on the full-replication score) than any
        # config it actually evaluated at the full seed set.
        assert result.best in result.full_scores
        reduce = min if minimize else max
        assert result.best_score == reduce(result.full_scores.values())
        assert result.best_digest == candidate_digest("strategy", result.best)

    def test_serial_and_pool_searches_are_identical(self, tmp_path):
        base = tiny_base()
        candidates = cubic_candidates(VALUE_POOL[:4])
        serial = successive_halving(
            base, "strategy", candidates, seeds=range(3),
            runner=SweepRunner(max_workers=1, cache_dir=tmp_path / "serial", parallel=False),
        )
        pooled = successive_halving(
            base, "strategy", candidates, seeds=range(3),
            runner=SweepRunner(max_workers=2, cache_dir=tmp_path / "pool"),
        )
        def strip(result):
            return {k: v for k, v in result.to_dict().items() if k != "wall_time_s"}

        assert strip(serial) == strip(pooled)

    def test_reference_grid_budget_and_dense_argmin_match(self, tmp_path):
        # The ROADMAP item 5 acceptance shape: 12 candidates × 8 seeds,
        # eta=3 ⇒ 30 of 96 trials (31.2% ≤ 35%), winner digest-identical to
        # the dense-grid argmin on the same seeds.
        base = tiny_base()
        values = ("1e-5", "2e-5", "5e-5", "1e-4", "1.5e-4", "2e-4",
                  "3e-4", "5e-4", "8e-4", "1.6e-3", "3.2e-3", "6.4e-3")
        candidates = cubic_candidates(values)
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path / "cache", parallel=False)
        result = successive_halving(
            base, "strategy", candidates, seeds=range(8), eta=3, runner=runner
        )
        assert result.dense_trials == 96
        assert result.executed == 30
        assert result.executed_fraction <= 0.35
        best, score, digest, _ = dense_argmin(
            base, "strategy", candidates, seeds=range(8), runner=runner
        )
        assert digest == result.best_digest
        assert score == result.best_score

    def test_search_result_round_trips_through_json(self, tmp_path):
        from repro.runner import SearchResult

        result = successive_halving(
            tiny_base(), "strategy", cubic_candidates(VALUE_POOL[:3]), seeds=range(2)
        )
        path = result.save(tmp_path / "search.json")
        loaded = SearchResult.load(path)
        assert loaded.to_dict() == result.to_dict()
