"""Tests for the ``sweep`` CLI command and its cache behavior."""

from repro.cli import main
from repro.runner import SweepResult

#: ≥3 configs (strategies) × ≥4 seeds, kept tiny so the suite stays fast.
SWEEP_ARGS = [
    "sweep",
    "--strategy", "C3",
    "--strategy", "LOR",
    "--strategy", "RR",
    "--utilization", "0.6",
    "--servers", "9",
    "--clients", "8",
    "--requests", "150",
    "--num-seeds", "4",
    "--workers", "2",
]


def run_sweep(capsys, *extra: str) -> str:
    assert main(SWEEP_ARGS + list(extra)) == 0
    return capsys.readouterr().out


class TestSweepCommand:
    def test_prints_aggregate_table_with_cis(self, capsys, tmp_path):
        out = run_sweep(capsys, "--cache-dir", str(tmp_path / "cache"))
        assert "3 strategy × 1 utilization × 1 fluctuation_interval_ms × 4 seeds = 12 trials" in out
        for strategy in ("C3", "LOR", "RR"):
            assert strategy in out
        assert "p99 (ms)" in out and "p99.9 (ms)" in out and "throughput" in out
        assert "±" in out  # confidence intervals are shown
        assert "12 executed, 0 from cache" in out

    def test_identical_invocation_served_from_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_sweep(capsys, "--cache-dir", cache)
        second = run_sweep(capsys, "--cache-dir", cache)
        assert "12 executed, 0 from cache" in first
        assert "0 executed, 12 from cache" in second
        # Cached rerun reproduces the aggregate table exactly.
        def table(out):
            return [line for line in out.splitlines() if "±" in line]

        assert table(first) == table(second)

    def test_spec_change_invalidates_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_sweep(capsys, "--cache-dir", cache)
        out = run_sweep(capsys, "--cache-dir", cache, "--requests", "151")
        assert "12 executed, 0 from cache" in out

    def test_no_cache_flag_disables_reuse(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_sweep(capsys, "--cache-dir", cache, "--no-cache")
        out = run_sweep(capsys, "--cache-dir", cache, "--no-cache")
        assert "12 executed, 0 from cache" in out

    def test_serial_mode_and_json_export(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        out = run_sweep(
            capsys, "--cache-dir", str(tmp_path / "cache"), "--serial", "--json", str(json_path)
        )
        assert "[serial]" in out
        assert json_path.is_file()
        loaded = SweepResult.load(json_path)
        assert len(loaded.trials) == 12
        assert len(loaded.aggregates()) == 3

    def test_sweep_listed_in_help(self, capsys):
        assert main([]) == 1
        assert "sweep" in capsys.readouterr().out


#: A tiny scenario-gridded sweep: 2 strategies × 2 scenarios × 2 seeds.
SCENARIO_SWEEP_ARGS = [
    "sweep",
    "--strategy", "C3",
    "--strategy", "LOR",
    "--utilization", "0.6",
    "--servers", "9",
    "--clients", "8",
    "--requests", "150",
    "--num-seeds", "2",
    "--serial",
]


class TestSweepScenarioFlag:
    def run_scenario_sweep(self, capsys, *extra: str) -> str:
        assert main(SCENARIO_SWEEP_ARGS + list(extra)) == 0
        return capsys.readouterr().out

    def test_scenario_becomes_a_grid_dimension(self, capsys, tmp_path):
        out = self.run_scenario_sweep(
            capsys, "--scenario", "baseline", "--scenario", "gc-storm",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert "2 scenario" in out and "= 8 trials" in out
        assert "baseline" in out and "gc-storm" in out
        assert "scenario" in out.splitlines()[1]  # table header includes the dimension

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(SCENARIO_SWEEP_ARGS + ["--scenario", "gc-typo"]) == 2
        captured = capsys.readouterr()
        assert "unknown scenario 'gc-typo'" in captured.err
        assert "available scenarios:" in captured.err
        assert "gc-storm" in captured.err

    def test_changing_only_the_scenario_invalidates_the_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = self.run_scenario_sweep(
            capsys, "--scenario", "baseline", "--cache-dir", cache
        )
        assert "4 executed, 0 from cache" in first
        rerun = self.run_scenario_sweep(
            capsys, "--scenario", "baseline", "--cache-dir", cache
        )
        assert "0 executed, 4 from cache" in rerun
        changed = self.run_scenario_sweep(
            capsys, "--scenario", "gc-storm", "--cache-dir", cache
        )
        assert "4 executed, 0 from cache" in changed

    def test_simulate_accepts_scenario_and_params(self, capsys):
        assert main([
            "simulate", "--scenario", "gc-storm", "--scenario-param", "slowdown_factor=8",
            "--servers", "9", "--clients", "8", "--requests", "100", "--seed", "1",
        ]) == 0
        assert "C3" in capsys.readouterr().out

    def test_simulate_rejects_unknown_scenario(self, capsys):
        assert main(["simulate", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_simulate_rejects_params_without_scenario(self, capsys):
        assert main(["simulate", "--scenario-param", "x=1"]) == 2
        assert "requires --scenario" in capsys.readouterr().err

    def test_simulate_rejects_unknown_knob_cleanly(self, capsys):
        assert main(["simulate", "--scenario", "gc-storm", "--scenario-param", "nope=1"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario_params" in err and "nope" in err

    def test_simulate_rejects_malformed_param_cleanly(self, capsys):
        assert main(["simulate", "--scenario", "gc-storm", "--scenario-param", "bad"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_scenarios_subcommand_lists_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "bimodal", "gc-storm", "crash-recovery", "slow-node"):
            assert name in out
        assert "knobs" in out


class TestSeedFlagValidation:
    def test_sweep_rejects_zero_num_seeds(self, capsys):
        assert main(SWEEP_ARGS[:1] + ["--num-seeds", "0"]) == 2
        assert "--num-seeds must be >= 1, got 0" in capsys.readouterr().err

    def test_sweep_rejects_negative_base_seed(self, capsys):
        assert main(SWEEP_ARGS[:1] + ["--base-seed", "-3"]) == 2
        assert "--base-seed must be >= 0, got -3" in capsys.readouterr().err


class TestCheckpointFlags:
    def run_checkpointed(self, capsys, cache: str, *extra: str) -> tuple[int, str, str]:
        code = main(SWEEP_ARGS + ["--cache-dir", cache] + list(extra))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_budgeted_run_then_resume_reexecutes_nothing(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        code, out, _ = self.run_checkpointed(
            capsys, cache, "--checkpoint", "--max-trials", "5"
        )
        assert code == 0
        assert "checkpoint:" in out and "0/12 trials complete" in out
        assert "sweep incomplete: 5/12 trials complete" in out
        assert "rerun with --resume" in out

        code, resumed, _ = self.run_checkpointed(capsys, cache, "--resume")
        assert code == 0
        assert "5/12 trials complete" in resumed  # progress shown before running
        assert "7 executed, 5 from cache" in resumed
        digest_line = next(
            line for line in resumed.splitlines() if line.startswith("sweep digest:")
        )

        code, rerun, _ = self.run_checkpointed(capsys, cache, "--resume")
        assert code == 0
        assert "0 executed, 12 from cache" in rerun
        assert digest_line in rerun.splitlines()

    def test_digest_matches_an_uninterrupted_sweep(self, capsys, tmp_path):
        interrupted = str(tmp_path / "a")
        self.run_checkpointed(capsys, interrupted, "--checkpoint", "--max-trials", "4")
        _, resumed, _ = self.run_checkpointed(capsys, interrupted, "--resume")
        _, clean, _ = self.run_checkpointed(capsys, str(tmp_path / "b"))

        def digest(out: str) -> str:
            return next(line for line in out.splitlines() if line.startswith("sweep digest:"))

        assert digest(resumed) == digest(clean)

    def test_resume_without_manifest_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = self.run_checkpointed(capsys, str(tmp_path / "cache"), "--resume")
        assert code == 2
        assert "nothing to resume" in err

    def test_max_trials_requires_checkpointing(self, capsys, tmp_path):
        code, _, err = self.run_checkpointed(
            capsys, str(tmp_path / "cache"), "--max-trials", "3"
        )
        assert code == 2
        assert "requires --checkpoint" in err

    def test_negative_max_trials_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = self.run_checkpointed(
            capsys, str(tmp_path / "cache"), "--checkpoint", "--max-trials", "-1"
        )
        assert code == 2
        assert "--max-trials must be >= 0" in err

    def test_checkpoint_conflicts_with_no_cache(self, capsys, tmp_path):
        code, _, err = self.run_checkpointed(
            capsys, str(tmp_path / "cache"), "--checkpoint", "--no-cache"
        )
        assert code == 2
        assert "drop --no-cache" in err

    def test_spec_change_under_resume_is_a_checkpoint_mismatch(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self.run_checkpointed(capsys, cache, "--checkpoint", "--max-trials", "2")
        code = main(
            SWEEP_ARGS + ["--cache-dir", cache, "--resume", "--requests", "151"]
        )
        captured = capsys.readouterr()
        # A changed spec has a different key, so there is no manifest for it.
        assert code == 2
        assert "nothing to resume" in captured.err

    def test_partial_json_export(self, capsys, tmp_path):
        from repro.runner import SweepResult

        json_path = tmp_path / "partial.json"
        code, out, _ = self.run_checkpointed(
            capsys,
            str(tmp_path / "cache"),
            "--checkpoint", "--max-trials", "3", "--json", str(json_path),
        )
        assert code == 0
        assert "saved (partial):" in out
        loaded = SweepResult.load(json_path)
        assert not loaded.complete and len(loaded.trials) == 3 and loaded.total_trials == 12
