"""Tests for the ``sweep`` CLI command and its cache behavior."""

from repro.cli import main
from repro.runner import SweepResult

#: ≥3 configs (strategies) × ≥4 seeds, kept tiny so the suite stays fast.
SWEEP_ARGS = [
    "sweep",
    "--strategy", "C3",
    "--strategy", "LOR",
    "--strategy", "RR",
    "--utilization", "0.6",
    "--servers", "9",
    "--clients", "8",
    "--requests", "150",
    "--num-seeds", "4",
    "--workers", "2",
]


def run_sweep(capsys, *extra: str) -> str:
    assert main(SWEEP_ARGS + list(extra)) == 0
    return capsys.readouterr().out


class TestSweepCommand:
    def test_prints_aggregate_table_with_cis(self, capsys, tmp_path):
        out = run_sweep(capsys, "--cache-dir", str(tmp_path / "cache"))
        assert "3 strategy × 1 utilization × 1 fluctuation_interval_ms × 4 seeds = 12 trials" in out
        for strategy in ("C3", "LOR", "RR"):
            assert strategy in out
        assert "p99 (ms)" in out and "p99.9 (ms)" in out and "throughput" in out
        assert "±" in out  # confidence intervals are shown
        assert "12 executed, 0 from cache" in out

    def test_identical_invocation_served_from_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_sweep(capsys, "--cache-dir", cache)
        second = run_sweep(capsys, "--cache-dir", cache)
        assert "12 executed, 0 from cache" in first
        assert "0 executed, 12 from cache" in second
        # Cached rerun reproduces the aggregate table exactly.
        table = lambda out: [l for l in out.splitlines() if "±" in l]
        assert table(first) == table(second)

    def test_spec_change_invalidates_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_sweep(capsys, "--cache-dir", cache)
        out = run_sweep(capsys, "--cache-dir", cache, "--requests", "151")
        assert "12 executed, 0 from cache" in out

    def test_no_cache_flag_disables_reuse(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_sweep(capsys, "--cache-dir", cache, "--no-cache")
        out = run_sweep(capsys, "--cache-dir", cache, "--no-cache")
        assert "12 executed, 0 from cache" in out

    def test_serial_mode_and_json_export(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        out = run_sweep(
            capsys, "--cache-dir", str(tmp_path / "cache"), "--serial", "--json", str(json_path)
        )
        assert "[serial]" in out
        assert json_path.is_file()
        loaded = SweepResult.load(json_path)
        assert len(loaded.trials) == 12
        assert len(loaded.aggregates()) == 3

    def test_sweep_listed_in_help(self, capsys):
        assert main([]) == 1
        assert "sweep" in capsys.readouterr().out
