"""Unit tests for sweep specs (expansion, hashing) and the trial cache."""

import pytest

from repro.runner import (
    SweepSpec,
    TrialCache,
    canonical_json,
    config_to_payload,
    content_hash,
    payload_to_config,
    seed_range,
)
from repro.simulator import DemandSkew, SimulationConfig


class TestSpecExpansion:
    def test_trials_are_grid_times_seeds(self):
        spec = SweepSpec(
            base=SimulationConfig(num_servers=9, num_clients=10, num_requests=100),
            grid={"strategy": ("C3", "LOR"), "utilization": (0.5, 0.6, 0.7)},
            seeds=(0, 1),
        )
        trials = spec.trials()
        assert spec.num_grid_points == 6
        assert spec.num_trials == len(trials) == 12
        assert [t.index for t in trials] == list(range(12))
        # Grid-point major, seed minor; insertion order of grid keys is outermost.
        assert trials[0].params == {"strategy": "C3", "utilization": 0.5}
        assert trials[0].seed == 0 and trials[1].seed == 1
        assert trials[2].params == {"strategy": "C3", "utilization": 0.6}
        assert trials[-1].params == {"strategy": "LOR", "utilization": 0.7}
        # Overrides and seed are applied to the resolved config.
        assert trials[3].config.utilization == 0.6
        assert trials[3].config.seed == 1

    def test_empty_grid_is_one_point_per_seed(self):
        spec = SweepSpec(base=SimulationConfig(), seeds=(7, 8, 9))
        assert spec.num_trials == 3
        assert [t.seed for t in spec.trials()] == [7, 8, 9]

    def test_unknown_grid_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SimulationConfig field"):
            SweepSpec(grid={"not_a_field": (1,)})

    def test_seed_grid_dimension_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            SweepSpec(grid={"seed": (1, 2)})

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(seeds=(1, 1))

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(grid={"strategy": ()})

    def test_bare_string_dimension_rejected(self):
        # tuple("C3") would silently explode into ("C", "3") sweep points.
        with pytest.raises(ValueError, match="bare\\s+string"):
            SweepSpec(grid={"strategy": "C3"})

    def test_seed_range(self):
        assert seed_range(4) == (0, 1, 2, 3)
        assert seed_range(2, base_seed=10) == (10, 11)
        with pytest.raises(ValueError):
            seed_range(0)

    def test_describe(self):
        spec = SweepSpec(grid={"strategy": ("C3", "LOR")}, seeds=(0, 1, 2))
        assert spec.describe() == "2 strategy × 3 seeds = 6 trials"


class TestHashing:
    def test_trial_key_is_stable_and_seed_sensitive(self):
        spec = SweepSpec(grid={"strategy": ("C3",)}, seeds=(0, 1))
        t0, t1 = spec.trials()
        assert t0.key == SweepSpec(grid={"strategy": ("C3",)}, seeds=(0, 1)).trials()[0].key
        assert t0.key != t1.key  # the seed is part of the content hash

    def test_spec_key_changes_with_any_axis(self):
        base = SweepSpec(grid={"strategy": ("C3",)}, seeds=(0,))
        assert base.key == SweepSpec(grid={"strategy": ("C3",)}, seeds=(0,)).key
        assert base.key != SweepSpec(grid={"strategy": ("LOR",)}, seeds=(0,)).key
        assert base.key != SweepSpec(grid={"strategy": ("C3",)}, seeds=(1,)).key
        assert base.key != SweepSpec(
            base=SimulationConfig(num_requests=1), grid={"strategy": ("C3",)}, seeds=(0,)
        ).key

    def test_config_payload_roundtrip(self):
        config = SimulationConfig(
            num_servers=9,
            num_requests=123,
            demand_skew=DemandSkew(client_fraction=0.2, demand_fraction=0.8),
            utilization=0.55,
            seed=42,
        )
        rebuilt = payload_to_config(config_to_payload(config))
        assert rebuilt == config
        assert content_hash(config_to_payload(rebuilt)) == content_hash(config_to_payload(config))

    def test_rng_default_is_omitted_from_payload(self):
        # rng="v1" is the default digest domain: omitting it keeps every
        # pre-existing cache key (and pinned payload hash) byte-identical.
        explicit = config_to_payload(SimulationConfig(rng="v1"))
        implicit = config_to_payload(SimulationConfig())
        assert "rng" not in explicit
        assert canonical_json(explicit) == canonical_json(implicit)
        assert payload_to_config(explicit).rng == "v1"

    def test_rng_block_participates_in_cache_keys(self):
        # rng="block" is a distinct digest domain, so it must key separately.
        v1 = SimulationConfig()
        block = SimulationConfig(rng="block")
        assert config_to_payload(block)["rng"] == "block"
        assert content_hash(config_to_payload(v1)) != content_hash(config_to_payload(block))
        assert payload_to_config(config_to_payload(block)) == block

    def test_canonical_json_rejects_unserializable(self):
        with pytest.raises(TypeError):
            canonical_json({"fn": lambda: None})

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"a": 1, "b": (2, 3)}) == canonical_json({"b": [2, 3], "a": 1})


class TestTrialCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, {"p99": 1.5})
        assert cache.get(key) == {"p99": 1.5}
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = TrialCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "f" * 62, {"i": i})
        assert cache.clear() == 3
        assert len(cache) == 0
