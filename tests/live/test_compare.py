"""Unit tests for the p99 comparison gate over recorded artifacts.

These build artifact directories with the harness's own writer, so the
CI gate's pass/fail logic is exercised deterministically with no live
cluster involved — exactly the property the smoke job relies on when the
live run is skipped on a flaky runner.
"""

import json

import numpy as np
import pytest

from repro.analysis.histogram import LatencyHistogram
from repro.live.compare import DEFAULT_TOLERANCE, compare_p99, load_trial, main
from repro.live.harness import LiveTrialConfig, build_payload, write_artifacts

_PROVENANCE = {"recorded_at_unix": 0.0, "host": "test", "python": "3.11"}


def _record_trial(directory, *, strategy, latencies_ms):
    """Write one artifact directory the way the harness does."""
    config = LiveTrialConfig(strategy=strategy, scenario="slow-node", duration_s=2.0)
    histogram = LatencyHistogram()
    for latency in latencies_ms:
        histogram.record(latency)
    summary = histogram.summarize()
    results = {
        "completed": summary.count,
        "trimmed_count": summary.count,
        "latency_ms": {"count": summary.count, "p99": summary.p99},
        "histogram_digest": histogram.digest(),
    }
    payload = build_payload(config.config_payload(), results, provenance=_PROVENANCE)
    write_artifacts(directory, payload, histogram)
    return directory


def _latencies(rng, mean_ms, count=400):
    return (mean_ms * rng.standard_exponential(count)).tolist()


@pytest.fixture
def trials(tmp_path):
    rng = np.random.default_rng(2015)
    fast = _record_trial(
        tmp_path / "c3", strategy="c3", latencies_ms=_latencies(rng, 4.0)
    )
    slow = _record_trial(
        tmp_path / "lor", strategy="lor", latencies_ms=_latencies(rng, 12.0)
    )
    return fast, slow


class TestLoadTrial:
    def test_round_trip(self, trials):
        fast, _ = trials
        trial = load_trial(fast)
        assert trial.strategy == "C3"
        assert trial.histogram.count == 400
        assert trial.p99_ms > 0

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trial(tmp_path / "nope")

    def test_tampered_payload_fails_digest_check(self, trials):
        fast, _ = trials
        payload_path = fast / "payload.json"
        payload = json.loads(payload_path.read_text())
        payload["results"]["completed"] += 1
        payload_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="digest mismatch"):
            load_trial(fast)

    def test_provenance_edits_do_not_break_the_digest(self, trials):
        """Satellite contract: provenance is outside the digest domain."""
        fast, _ = trials
        payload_path = fast / "payload.json"
        payload = json.loads(payload_path.read_text())
        payload["provenance"] = {"recorded_at_unix": 1.7e9, "host": "elsewhere"}
        payload_path.write_text(json.dumps(payload))
        assert load_trial(fast).strategy == "C3"

    def test_empty_histogram_is_rejected(self, tmp_path):
        directory = _record_trial(tmp_path / "empty", strategy="c3", latencies_ms=[])
        with pytest.raises(ValueError, match="empty histogram"):
            load_trial(directory)


class TestCompareP99:
    def test_ordering_holds(self, trials):
        fast, slow = trials
        result = compare_p99(fast, slow)
        assert result.ok
        assert result.candidate_strategy == "C3"
        assert result.baseline_strategy == "LOR"
        assert result.candidate_p99_ms < result.baseline_p99_ms
        assert "holds" in result.describe()

    def test_ordering_violated(self, trials):
        fast, slow = trials
        result = compare_p99(slow, fast)
        assert not result.ok
        assert "VIOLATED" in result.describe()

    def test_tolerance_allows_bounded_excess(self, tmp_path):
        rng = np.random.default_rng(7)
        latencies = _latencies(rng, 5.0)
        a = _record_trial(tmp_path / "a", strategy="c3", latencies_ms=latencies)
        b = _record_trial(
            tmp_path / "b",
            strategy="lor",
            latencies_ms=[x * 0.97 for x in latencies],
        )
        # a's p99 is ~3% above b's: inside the default 10% slack...
        assert compare_p99(a, b, tolerance=DEFAULT_TOLERANCE).ok
        # ...but fails a zero-tolerance gate.
        assert not compare_p99(a, b, tolerance=0.0).ok

    def test_negative_tolerance_rejected(self, trials):
        fast, slow = trials
        with pytest.raises(ValueError, match="non-negative"):
            compare_p99(fast, slow, tolerance=-0.1)


class TestMain:
    def test_exit_codes(self, trials, capsys):
        fast, slow = trials
        assert main([str(fast), str(slow)]) == 0
        assert main([str(slow), str(fast)]) == 1
        assert main([str(fast), str(slow / "missing")]) == 2
        out = capsys.readouterr()
        assert "ordering holds" in out.out
        assert "failed to load artifacts" in out.err
