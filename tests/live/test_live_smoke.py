"""End-to-end smoke tests for the live backend.

Kept short (sub-second client runs, one ~1.5 s subprocess trial) so they
ride in tier-1; the latency numbers themselves are never asserted — only
structural properties that localhost scheduling noise can't flip.
"""

import asyncio

import pytest

from repro.live.client import LiveLoadClient
from repro.live.compare import load_trial
from repro.live.harness import LiveTrialConfig, payload_digest, run_trial
from repro.live.protocol import read_message, write_message
from repro.live.server import ReplicaServer


async def _request(reader, writer, op_id, timeout=5.0):
    write_message(writer, {"t": "req", "id": op_id, "kind": "read"})
    await writer.drain()
    return await asyncio.wait_for(read_message(reader), timeout)


async def _control(reader, writer, op, timeout=5.0, **kwargs):
    write_message(writer, {"t": "ctl", "op": op, **kwargs})
    await writer.drain()
    return await asyncio.wait_for(read_message(reader), timeout)


class TestReplicaServer:
    def test_serves_request_with_feedback(self):
        async def scenario():
            server = ReplicaServer(3, base_service_ms=0.5, deterministic=True, seed=1)
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            response = await _request(reader, writer, 7)
            assert response["t"] == "res"
            assert response["id"] == 7
            assert response["server_id"] == 3
            assert response["rejected"] is False
            assert response["service_time_ms"] > 0
            assert response["queue_size"] >= 0
            ack = await _control(reader, writer, "stats")
            assert ack["stats"]["served"] == 1
            assert ack["stats"]["accepted"] == 1
            await _control(reader, writer, "shutdown")
            writer.close()
            await server.serve_until_shutdown()

        asyncio.run(scenario())

    def test_full_queue_rejects_with_feedback(self):
        async def scenario():
            server = ReplicaServer(
                0,
                base_service_ms=200.0,
                concurrency=1,
                queue_capacity=1,
                deterministic=True,
            )
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for op_id in range(3):
                write_message(writer, {"t": "req", "id": op_id, "kind": "read"})
            await writer.drain()
            # 200 ms deterministic service, one slot, one queue place: at
            # least one (possibly two) of the three is turned away
            # immediately.  Read frames until the stats ack arrives.
            write_message(writer, {"t": "ctl", "op": "stats"})
            await writer.drain()
            rejections = []
            while True:
                frame = await asyncio.wait_for(read_message(reader), 5.0)
                if frame["t"] == "ack":
                    break
                rejections.append(frame)
            assert rejections and all(r["rejected"] for r in rejections)
            assert all(r["queue_size"] >= 1 for r in rejections)
            assert frame["stats"]["rejected"] == len(rejections)
            await _control(reader, writer, "shutdown")
            writer.close()
            await server.serve_until_shutdown()

        asyncio.run(scenario())

    def test_crash_drops_requests_until_restore(self):
        async def scenario():
            server = ReplicaServer(0, base_service_ms=0.5, deterministic=True)
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            assert (await _control(reader, writer, "crash"))["op"] == "crash"
            # Sent while down: silently dropped, no response frame.
            write_message(writer, {"t": "req", "id": 1, "kind": "read"})
            await writer.drain()
            assert (await _control(reader, writer, "restore"))["op"] == "restore"
            response = await _request(reader, writer, 2)
            assert response["id"] == 2 and response["rejected"] is False
            ack = await _control(reader, writer, "stats")
            assert ack["stats"]["enqueued_while_down"] == 1
            assert ack["stats"]["served"] == 1
            await _control(reader, writer, "shutdown")
            writer.close()
            await server.serve_until_shutdown()

        asyncio.run(scenario())

    def test_slow_factor_inflates_service_times(self):
        async def scenario():
            server = ReplicaServer(0, base_service_ms=1.0, deterministic=True)
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await _control(reader, writer, "slow", factor=50.0)
            before = asyncio.get_running_loop().time()
            await _request(reader, writer, 1)
            elapsed_ms = (asyncio.get_running_loop().time() - before) * 1000.0
            assert elapsed_ms >= 50.0  # 1 ms base x 50, deterministic
            await _control(reader, writer, "shutdown")
            writer.close()
            await server.serve_until_shutdown()

        asyncio.run(scenario())


class TestLiveLoadClient:
    @pytest.mark.parametrize("strategy", ["c3", "lor"])
    def test_short_run_completes_requests(self, strategy):
        async def scenario():
            servers, ports = [], []
            for sid in range(2):
                server = ReplicaServer(
                    sid, base_service_ms=1.0, deterministic=True, seed=sid
                )
                ports.append(await server.start())
                servers.append(server)
            client = LiveLoadClient(
                [("127.0.0.1", port) for port in ports],
                strategy=strategy,
                replication_factor=2,
                arrival_rate_per_s=150.0,
                seed=3,
            )
            await client.connect()
            try:
                result = await client.run(0.6)
            finally:
                await client.close()
                for server in servers:
                    server._shutdown.set()
                    await server.serve_until_shutdown()
            return result

        result = asyncio.run(scenario())
        assert result.completed > 0
        assert result.issued >= result.completed
        assert result.timeouts == 0
        assert sum(result.sent_per_server.values()) >= result.completed


class TestRunTrialEndToEnd:
    def test_slow_node_trial_writes_valid_artifacts(self, tmp_path):
        config = LiveTrialConfig(
            strategy="c3",
            scenario="slow_node",
            scenario_params={"factor": 3.0},
            num_servers=2,
            replication_factor=2,
            duration_s=1.5,
            warmup_s=0.25,
            cooldown_s=0.25,
            arrival_rate_per_s=120.0,
            base_service_ms=2.0,
            seed=7,
        )
        out_dir = tmp_path / "trial"
        result = run_trial(config, out_dir)

        for name in ("payload.json", "histogram.json", "server_load.json"):
            assert (out_dir / name).is_file()
        assert result.results["completed"] > 0
        assert result.results["trimmed_count"] > 0
        assert result.histogram.count == result.results["trimmed_count"]
        assert result.payload["digest"] == payload_digest(result.payload)
        assert "recorded_at_unix" in result.payload["provenance"]
        assert len(result.server_stats) == 2

        # The written directory loads back through the comparison gate.
        trial = load_trial(out_dir)
        assert trial.strategy == "C3"
        assert trial.payload["config"]["scenario"] == "slow-node"
        assert trial.histogram.count == result.histogram.count
