"""Unit tests for live trial configuration, scheduling, and payloads."""

import pytest

from repro.live.harness import (
    LiveTrialConfig,
    build_payload,
    payload_digest,
    scenario_schedule,
)

_RESULTS = {
    "completed": 100,
    "latency_ms": {"p99": 12.5},
    "histogram_digest": "abc123",
}


class TestLiveTrialConfig:
    def test_strategy_is_canonicalized(self):
        assert LiveTrialConfig(strategy="c3").strategy == "C3"
        assert LiveTrialConfig(strategy="lor").strategy == "LOR"

    def test_control_specs_are_canonicalized(self):
        config = LiveTrialConfig(failure_detector="phi", hedging="hedge")
        assert config.failure_detector == "phi"
        assert config.hedging == "hedge"

    def test_scenario_underscores_normalize_and_defaults_fill(self):
        config = LiveTrialConfig(scenario="slow_node")
        assert config.scenario == "slow-node"
        assert config.scenario_params["factor"] == 4.0
        assert config.scenario_params["target"] == 0

    def test_scenario_knobs_validate_through_shared_registry(self):
        with pytest.raises(ValueError, match="bogus"):
            LiveTrialConfig(scenario="slow-node", scenario_params={"bogus": 1})

    def test_simulator_only_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="not supported by the live backend"):
            LiveTrialConfig(scenario="skewed-demand")

    def test_measurement_window_must_be_positive(self):
        with pytest.raises(ValueError, match="measurement window"):
            LiveTrialConfig(duration_s=1.0, warmup_s=0.6, cooldown_s=0.5)

    def test_replication_factor_bounded_by_servers(self):
        with pytest.raises(ValueError, match="replication_factor"):
            LiveTrialConfig(num_servers=2, replication_factor=3)

    def test_config_payload_is_json_round_trippable(self):
        import json

        payload = LiveTrialConfig(scenario="gc-storm").config_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schema"] == "live-trial-v1"


class TestScenarioSchedule:
    def test_baseline_has_no_ops(self):
        assert scenario_schedule(LiveTrialConfig(scenario="baseline")) == []

    def test_slow_node_without_end_slows_once(self):
        config = LiveTrialConfig(
            scenario="slow-node", scenario_params={"factor": 3.0, "start_ms": 100.0}
        )
        assert scenario_schedule(config) == [
            (100.0, 0, {"op": "slow", "factor": 3.0})
        ]

    def test_slow_node_with_end_restores_factor_one(self):
        config = LiveTrialConfig(
            scenario="slow-node",
            scenario_params={"factor": 3.0, "start_ms": 100.0, "end_ms": 900.0, "target": 1},
        )
        assert scenario_schedule(config) == [
            (100.0, 1, {"op": "slow", "factor": 3.0}),
            (900.0, 1, {"op": "slow", "factor": 1.0}),
        ]

    def test_crash_recovery_pairs_crash_and_restore(self):
        config = LiveTrialConfig(
            scenario="crash-recovery",
            scenario_params={"first_at_ms": 200.0, "down_ms": 300.0},
        )
        assert scenario_schedule(config) == [
            (200.0, 0, {"op": "crash"}),
            (500.0, 0, {"op": "restore"}),
        ]

    def test_crash_recovery_staggers_targets_and_repeats(self):
        config = LiveTrialConfig(
            scenario="crash-recovery",
            scenario_params={
                "first_at_ms": 100.0,
                "down_ms": 50.0,
                "stagger_ms": 400.0,
                "repeats": 2,
                "period_ms": 1000.0,
                "targets": [0, 1],
            },
            duration_s=5.0,
        )
        ops = scenario_schedule(config)
        crashes = [(at, sid) for at, sid, op in ops if op["op"] == "crash"]
        assert crashes == [(100.0, 0), (500.0, 1), (1100.0, 0), (1500.0, 1)]
        # Every crash has a matching restore down_ms later.
        restores = {(at, sid) for at, sid, op in ops if op["op"] == "restore"}
        assert restores == {(at + 50.0, sid) for at, sid in crashes}


class TestPayloadDigest:
    """The provenance-outside-the-digest-domain contract."""

    def test_digest_ignores_provenance(self):
        config_payload = LiveTrialConfig().config_payload()
        early = build_payload(
            config_payload,
            _RESULTS,
            provenance={"recorded_at_unix": 1.0, "host": "alpha", "python": "3.11.0"},
        )
        late = build_payload(
            config_payload,
            _RESULTS,
            provenance={"recorded_at_unix": 9.9e9, "host": "omega", "python": "3.99.0"},
        )
        assert early["provenance"] != late["provenance"]
        assert early["digest"] == late["digest"]
        assert payload_digest(early) == payload_digest(late)

    def test_digest_covers_config_and_results(self):
        config_payload = LiveTrialConfig().config_payload()
        base = build_payload(config_payload, _RESULTS, provenance={})
        other_results = build_payload(
            config_payload, {**_RESULTS, "completed": 101}, provenance={}
        )
        other_config = build_payload(
            LiveTrialConfig(seed=43).config_payload(), _RESULTS, provenance={}
        )
        assert base["digest"] != other_results["digest"]
        assert base["digest"] != other_config["digest"]

    def test_default_provenance_is_stamped_but_unhashed(self):
        payload = build_payload(LiveTrialConfig().config_payload(), _RESULTS)
        assert set(payload["provenance"]) >= {"recorded_at_unix", "host", "python"}
        stripped = {"config": payload["config"], "results": payload["results"]}
        assert payload_digest(stripped) == payload["digest"]
