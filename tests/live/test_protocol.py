"""Unit tests for the length-prefixed JSON wire format."""

import asyncio
import struct

import pytest

from repro.live.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_message,
    read_message,
    write_message,
)


def _read_from(data: bytes, *, frames: int = 1):
    """Feed raw bytes to a StreamReader and read ``frames`` messages."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return [await read_message(reader) for _ in range(frames)]

    return asyncio.run(scenario())


class TestEncode:
    def test_frame_is_length_prefixed_json(self):
        frame = encode_message({"t": "req", "id": 3, "kind": "read"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert b'"t":"req"' in frame

    def test_oversize_body_is_rejected_at_encode_time(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_message({"blob": "x" * (MAX_FRAME_BYTES + 1)})


class TestReadMessage:
    def test_round_trip(self):
        message = {"t": "res", "id": 9, "server_id": 1, "queue_size": 4,
                   "service_time_ms": 2.5, "rejected": False}
        (decoded,) = _read_from(encode_message(message))
        assert decoded == message

    def test_multiple_frames_read_in_order(self):
        frames = [{"t": "req", "id": i, "kind": "read"} for i in range(3)]
        data = b"".join(encode_message(frame) for frame in frames)
        assert _read_from(data, frames=3) == frames

    def test_clean_eof_returns_none(self):
        assert _read_from(b"") == [None]

    def test_eof_after_full_frame_returns_none(self):
        decoded = _read_from(encode_message({"t": "ack", "op": "stats"}), frames=2)
        assert decoded[0] == {"t": "ack", "op": "stats"}
        assert decoded[1] is None

    def test_truncated_length_prefix(self):
        with pytest.raises(ProtocolError, match="truncated length prefix"):
            _read_from(b"\x00\x00")

    def test_truncated_body(self):
        frame = encode_message({"t": "req", "id": 1, "kind": "read"})
        with pytest.raises(ProtocolError, match="truncated body"):
            _read_from(frame[:-3])

    def test_oversize_length_prefix_fails_before_buffering(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            _read_from(header)

    def test_non_object_body(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="JSON object"):
            _read_from(struct.pack(">I", len(body)) + body)

    def test_invalid_json_body(self):
        body = b"{nope"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            _read_from(struct.pack(">I", len(body)) + body)


class TestWriteMessage:
    def test_writes_one_decodable_frame(self):
        class FakeWriter:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

        writer = FakeWriter()
        write_message(writer, {"t": "ctl", "op": "slow", "factor": 4.0})
        # One frame per write call — concurrent writers can't interleave.
        assert len(writer.chunks) == 1
        (decoded,) = _read_from(writer.chunks[0])
        assert decoded == {"t": "ctl", "op": "slow", "factor": 4.0}
