"""Tests for the single-command sweep report renderer."""

import json

from repro.analysis import bench_means, markdown_to_html, render_report
from repro.analysis.report_sweep import (
    render_bench_section,
    render_search_section,
    render_sweep_section,
)
from repro.runner import (
    SearchResult,
    SweepRunner,
    SweepSpec,
    seed_range,
    successive_halving,
)
from repro.simulator import SimulationConfig


def tiny_sweep():
    spec = SweepSpec(
        base=SimulationConfig(num_servers=5, num_clients=4, num_requests=60, utilization=0.6),
        grid={"strategy": ("C3", "LOR")},
        seeds=seed_range(2),
    )
    return SweepRunner(max_workers=1, parallel=False).run(spec)


def tiny_search():
    base = SimulationConfig(num_servers=5, num_clients=4, num_requests=60, utilization=0.6)
    candidates = ["c3:cubic_c=1e-4", "c3:cubic_c=5e-4", "c3:cubic_c=1e-3"]
    return successive_halving(base, "strategy", candidates, seeds=range(2))


def write_bench(path, names_to_means):
    payload = {
        "benchmarks": [
            {"fullname": f"benchmarks/x.py::{name}", "name": name, "stats": {"mean": mean}}
            for name, mean in names_to_means.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestSections:
    def test_sweep_section_has_one_row_per_grid_point(self):
        section = render_sweep_section("demo", tiny_sweep())
        assert "## Sweep: demo" in section
        assert "4 trials, 4 executed, 0 from cache" in section
        assert "complete." in section
        rows = [line for line in section.splitlines() if line.startswith("| ")]
        # header + separator + 2 grid points
        assert len(rows) == 4
        assert "p99.9 (ms)" in rows[0]
        assert any("C3" in row for row in rows) and any("LOR" in row for row in rows)

    def test_incomplete_sweep_is_flagged(self):
        sweep = tiny_sweep()
        sweep.total_trials = 9
        section = render_sweep_section("partial", sweep)
        assert "INCOMPLETE (4/9 trials)" in section

    def test_search_section_names_winner_and_rungs(self):
        search = tiny_search()
        section = render_search_section(search)
        assert f"**Winner: `{search.best}`**" in section
        assert search.best_digest[:12] in section
        assert "| rung |" in section
        assert "Candidates ranked at full replication:" in section
        assert f"Executed {search.executed} trials vs {search.dense_trials} dense" in section

    def test_bench_section_computes_last_over_first_ratio(self, tmp_path):
        first = write_bench(tmp_path / "BENCH_a.json", {"test_x": 1.0, "test_y": 2.0})
        last = write_bench(tmp_path / "BENCH_b.json", {"test_x": 0.5, "test_z": 3.0})
        section = render_bench_section([first, last])
        assert "`BENCH_a`" in section and "`BENCH_b`" in section
        row_x = next(line for line in section.splitlines() if "test_x" in line)
        assert "0.50x" in row_x
        # Benchmarks missing from either endpoint get no ratio.
        row_z = next(line for line in section.splitlines() if "test_z" in line)
        assert "| - |" in row_z


class TestRenderReport:
    def test_full_report_composes_all_sections(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_a.json", {"test_x": 1.0})
        markdown = render_report(
            sweeps=[("demo", tiny_sweep())],
            searches=[tiny_search()],
            bench_paths=[bench],
        )
        assert markdown.startswith("# C3 reproduction — sweep report")
        assert "Inputs: 1 sweep, 1 search, 1 benchmark snapshot." in markdown
        assert "## Sweep: demo" in markdown
        assert "## Search:" in markdown
        assert "## Performance trajectory" in markdown

    def test_empty_report_is_still_valid(self):
        markdown = render_report()
        assert "Inputs: none." in markdown

    def test_rendering_is_deterministic(self, tmp_path):
        sweep, search = tiny_sweep(), tiny_search()
        once = render_report(sweeps=[("s", sweep)], searches=[search])
        again = render_report(sweeps=[("s", sweep)], searches=[search])
        assert once == again

    def test_bench_means_reads_pytest_benchmark_json(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_a.json", {"test_x": 1.25})
        assert bench_means(bench) == {"benchmarks/x.py::test_x": 1.25}


class TestMarkdownToHtml:
    def test_headings_tables_and_inline_marks(self):
        markdown = render_report(sweeps=[("demo", tiny_sweep())], searches=[tiny_search()])
        page = markdown_to_html(markdown, title="report")
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>report</title>" in page
        assert "<h1>" in page and "<h2>" in page
        separators = sum(
            1
            for line in markdown.splitlines()
            if line.startswith("|") and set(line) <= {"|", "-", " "}
        )
        assert page.count("<table>") == page.count("</table>") == separators
        assert "<th>rung</th>" in page
        assert "<code>" in page and "<strong>" in page
        # No unconverted markdown syntax leaks into the page body.
        body = page.split("<body>")[1]
        assert "**" not in body and "| --- |" not in body

    def test_html_is_escaped(self):
        page = markdown_to_html("# t\n\na <script>alert(1)</script> & `x<y`\n")
        assert "<script>" not in page.split("</head>")[1]
        assert "&lt;script&gt;" in page
        assert "&amp;" in page
        assert "<code>x&lt;y</code>" in page

    def test_bullet_lists_and_paragraph_folding(self):
        page = markdown_to_html("para one\nstill para one\n\n- a\n- b\n")
        assert "<p>para one still para one</p>" in page
        assert "<ul>" in page and "<li>a</li>" in page and "<li>b</li>" in page
