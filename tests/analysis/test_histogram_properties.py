"""Hypothesis property suite for scale-mode metrics.

Invariants, not values:

* every streaming quantile estimate satisfies the documented error
  contract against the exact sample set (within ``relative_error`` of an
  order statistic bracketing the requested rank);
* bucket-merge is associative and commutative, down to digest equality —
  merge order can never change a pooled measurement;
* recording values one at a time and in bulk agree on every count.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.analysis.histogram import LatencyHistogram, merge_histograms, quantile_within_bound

_latency = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
_samples = st.lists(_latency, min_size=1, max_size=300)
_error = st.sampled_from([0.005, 0.01, 0.05])


def _build(values, relative_error=0.01) -> LatencyHistogram:
    hist = LatencyHistogram(relative_error=relative_error)
    hist.record_many(np.asarray(values, dtype=float))
    return hist


class TestErrorContract:
    @given(values=_samples, relative_error=_error)
    @settings(max_examples=150, deadline=None)
    def test_quantiles_within_documented_bound(self, values, relative_error):
        hist = _build(values, relative_error)
        samples = np.asarray(values, dtype=float)
        for q in (0.0, 0.5, 0.95, 0.99, 0.999, 1.0):
            assert quantile_within_bound(hist, samples, q), (
                f"q={q} estimate {hist.quantile(q)} violates the bound on {len(values)} samples"
            )

    @given(values=_samples)
    @settings(max_examples=60, deadline=None)
    def test_count_min_max_are_exact(self, values):
        hist = _build(values)
        samples = np.asarray(values, dtype=float)
        assert hist.count == samples.size
        assert hist.min == float(samples.min())
        assert hist.max == float(samples.max())

    @given(values=_samples)
    @settings(max_examples=60, deadline=None)
    def test_quantiles_are_monotone_in_q(self, values):
        hist = _build(values)
        estimates = [hist.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)]
        assert estimates == sorted(estimates)


class TestMergeAlgebra:
    @given(a=_samples, b=_samples, c=_samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        ha, hb, hc = _build(a), _build(b), _build(c)
        left = ha.copy().merge(hb).merge(hc)
        right = ha.copy().merge(hb.copy().merge(hc))
        assert left.digest() == right.digest()

    @given(a=_samples, b=_samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        ha, hb = _build(a), _build(b)
        assert ha.copy().merge(hb).digest() == hb.copy().merge(ha).digest()

    @given(a=_samples, b=_samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_recording_the_union(self, a, b):
        merged = _build(a).merge(_build(b))
        union = _build(list(a) + list(b))
        assert merged.digest() == union.digest()

    @given(chunks=st.lists(_samples, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_pooling_matches_single_histogram_over_all_samples(self, chunks):
        pooled = merge_histograms(_build(chunk) for chunk in chunks)
        assert pooled is not None
        flat = _build([v for chunk in chunks for v in chunk])
        assert pooled.digest() == flat.digest()
        # And the pooled quantiles obey the contract against the union.
        union = np.asarray([v for chunk in chunks for v in chunk], dtype=float)
        for q in (0.5, 0.99):
            assert quantile_within_bound(pooled, union, q)


class TestSerializationProperties:
    @given(values=_samples, relative_error=_error)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_lossless(self, values, relative_error):
        hist = _build(values, relative_error)
        assert LatencyHistogram.from_dict(hist.to_dict()).digest() == hist.digest()
