"""Unit tests for time-series helpers, oscillation metrics and reports."""

import numpy as np
import pytest

from repro.analysis.oscillation import burstiness, load_conditioning, oscillation_score
from repro.analysis.report import format_comparison, format_summary_rows, format_table, indent
from repro.analysis.timeseries import downsample, moving_average, moving_median, window_counts


class TestMovingMedian:
    def test_constant_series_unchanged(self):
        series = np.full(20, 7.0)
        assert np.allclose(moving_median(series, 5), series)

    def test_median_suppresses_spikes(self):
        series = np.array([1.0, 1.0, 100.0, 1.0, 1.0, 1.0])
        smoothed = moving_median(series, window=3)
        assert smoothed.max() < 100.0

    def test_empty_series(self):
        assert moving_median(np.array([]), 5).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_median([1.0], 0)


class TestMovingAverage:
    def test_matches_numpy_for_full_window(self):
        series = np.arange(10, dtype=float)
        avg = moving_average(series, window=3)
        assert avg[-1] == pytest.approx(np.mean(series[-3:]))

    def test_warmup_uses_expanding_window(self):
        avg = moving_average([2.0, 4.0, 6.0], window=10)
        assert avg[0] == 2.0
        assert avg[1] == 3.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestWindowCounts:
    def test_basic_binning(self):
        counts = window_counts([5.0, 15.0, 25.0, 26.0], window_ms=10.0)
        assert list(counts) == [1, 1, 2]

    def test_horizon_extends_series(self):
        counts = window_counts([5.0], window_ms=10.0, horizon_ms=50.0)
        assert len(counts) == 6

    def test_empty_with_horizon(self):
        assert len(window_counts([], window_ms=10.0, horizon_ms=30.0)) == 3

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            window_counts([1.0], window_ms=0.0)


class TestDownsample:
    def test_no_op_for_short_series(self):
        series = np.arange(5, dtype=float)
        assert np.array_equal(downsample(series, 10), series)

    def test_reduces_length(self):
        assert len(downsample(np.arange(1000, dtype=float), 100)) == 100

    def test_invalid_max_points(self):
        with pytest.raises(ValueError):
            downsample([1.0], 0)


class TestOscillationMetrics:
    def test_smooth_series_scores_low(self):
        smooth = np.full(100, 50.0)
        oscillating = np.tile([0.0, 100.0], 50)
        assert oscillation_score(smooth) < oscillation_score(oscillating)

    def test_burstiness_of_poisson_like_series_near_one(self):
        rng = np.random.default_rng(0)
        series = rng.poisson(50, size=2000)
        assert burstiness(series) == pytest.approx(1.0, abs=0.2)

    def test_burstiness_of_oscillating_series_is_high(self):
        series = np.tile([0.0, 100.0], 100)
        assert burstiness(series) > 10.0

    def test_load_conditioning_report(self):
        series = np.array([10.0, 20.0, 0.0, 30.0, 40.0])
        report = load_conditioning(series)
        assert report.windows == 5
        assert report.maximum == 40.0
        assert report.zero_fraction == pytest.approx(0.2)
        assert report.spread_p99_median == pytest.approx(report.p99 - report.median)
        assert "cv" in report.as_dict()

    def test_empty_series_metrics(self):
        assert oscillation_score([]) == 0.0
        assert burstiness([]) == 0.0
        assert load_conditioning([]).windows == 0


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.234], ["long-name", 22.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text and "22.00" in text

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_summary_rows(self):
        summaries = {"C3": {"mean": 1.0, "median": 2.0}, "DS": {"mean": 3.0, "median": 4.0}}
        text = format_summary_rows(summaries, columns=("mean", "median"))
        assert "C3" in text and "DS" in text

    def test_format_comparison_includes_ratio(self):
        text = format_comparison("DS", {"p99": 30.0}, "C3", {"p99": 10.0}, columns=("p99",))
        assert "3.00" in text

    def test_format_comparison_handles_zero_candidate(self):
        text = format_comparison("DS", {"p99": 30.0}, "C3", {"p99": 0.0}, columns=("p99",))
        assert "inf" in text

    def test_indent(self):
        assert indent("a\nb") == "  a\n  b"
