"""Unit tests for percentile summaries and ECDFs."""

import numpy as np
import pytest

from repro.analysis.ecdf import ecdf
from repro.analysis.percentiles import LatencySummary, percentile, summarize, tail_to_median_ratio


class TestPercentile:
    def test_known_values(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50.5)
        assert percentile(samples, 100) == 100

    def test_empty_returns_zero(self):
        assert percentile([], 99) == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestSummarize:
    def test_summary_fields(self):
        samples = np.arange(1, 1001, dtype=float)
        summary = summarize(samples)
        assert summary.count == 1000
        assert summary.mean == pytest.approx(500.5)
        assert summary.median == pytest.approx(500.5)
        assert summary.p99 == pytest.approx(990.01, rel=1e-3)
        assert summary.minimum == 1.0 and summary.maximum == 1000.0

    def test_empty_summary_is_zeroed(self):
        summary = summarize([])
        assert summary.count == 0 and summary.mean == 0.0 and summary.tail_ratio == 0.0

    def test_tail_span_and_ratio(self):
        summary = LatencySummary(10, 5.0, 4.0, 8.0, 9.0, 12.0, 1.0, 12.0, 1.0)
        assert summary.tail_span == 8.0
        assert summary.tail_ratio == 3.0

    def test_as_dict_keys(self):
        d = summarize([1.0, 2.0, 3.0]).as_dict()
        assert {"mean", "median", "p95", "p99", "p99.9", "tail_ratio"} <= set(d)

    def test_str_is_informative(self):
        assert "p99" in str(summarize([1.0, 2.0]))

    def test_tail_to_median_ratio(self):
        samples = [1.0] * 99 + [100.0]
        assert tail_to_median_ratio(samples, 99.9) > 1.0
        assert tail_to_median_ratio([], 99.9) == 0.0


class TestECDF:
    def test_probabilities_reach_one(self):
        cdf = ecdf([3.0, 1.0, 2.0])
        assert cdf.probabilities[-1] == pytest.approx(1.0)
        assert list(cdf.values) == [1.0, 2.0, 3.0]

    def test_evaluate(self):
        cdf = ecdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(2.5) == pytest.approx(0.5)
        assert cdf.evaluate(0.0) == 0.0
        assert cdf.evaluate(10.0) == 1.0

    def test_quantile(self):
        cdf = ecdf(list(range(1, 101)))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(0.99) == 99
        assert cdf.quantile(0.0) == 1

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            ecdf([1.0]).quantile(1.5)

    def test_tail_table(self):
        table = ecdf(list(range(1, 1001))).tail_table()
        assert set(table) == {0.5, 0.95, 0.99, 0.999}

    def test_empty_ecdf(self):
        cdf = ecdf([])
        assert len(cdf) == 0
        assert cdf.evaluate(1.0) == 0.0
        assert cdf.quantile(0.5) == 0.0

    def test_mismatched_shapes_rejected(self):
        from repro.analysis.ecdf import ECDF

        with pytest.raises(ValueError):
            ECDF(values=np.array([1.0, 2.0]), probabilities=np.array([1.0]))
