"""Unit tests for the streaming log-bucketed latency histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import LatencyHistogram, merge_histograms, quantile_within_bound


class TestConstruction:
    def test_rejects_bad_relative_error(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                LatencyHistogram(relative_error=bad)

    def test_rejects_bad_min_trackable(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_trackable_ms=0.0)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.bucket_count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.min == 0.0 and hist.max == 0.0
        summary = hist.summarize()
        assert summary.count == 0 and summary.p999 == 0.0


class TestRecording:
    def test_rejects_negative_and_non_finite(self):
        hist = LatencyHistogram()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                hist.record(bad)
        with pytest.raises(ValueError):
            hist.record_many([1.0, -2.0])

    def test_single_value_is_exact_everywhere(self):
        hist = LatencyHistogram()
        hist.record(42.5)
        # Clamping to the exact min/max makes degenerate cases exact.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.5
        summary = hist.summarize()
        assert summary.minimum == 42.5 and summary.maximum == 42.5

    def test_sub_min_trackable_values_land_in_zero_bucket(self):
        hist = LatencyHistogram(min_trackable_ms=1e-3)
        hist.record(0.0)
        hist.record(5e-4)
        assert hist.count == 2
        assert hist.bucket_count == 1
        # Estimated at 0.0, clamped into [min, max] = [0.0, 5e-4]: the
        # absolute error is bounded by min_trackable_ms.
        assert hist.quantile(0.5) <= 1e-3

    def test_percentiles_track_exact_within_bound(self):
        rng = np.random.default_rng(42)
        samples = rng.exponential(scale=10.0, size=50_000) + 0.25
        hist = LatencyHistogram(relative_error=0.01)
        hist.record_many(samples)
        for q in (0.5, 0.9, 0.95, 0.99, 0.999):
            assert quantile_within_bound(hist, samples, q)
            # Dense samples: the estimate is also directly close to numpy's.
            exact = float(np.percentile(samples, q * 100.0))
            assert abs(hist.quantile(q) - exact) <= 0.02 * exact

    def test_record_many_matches_scalar_record(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=1.0, sigma=1.5, size=2_000)
        loop = LatencyHistogram()
        vec = LatencyHistogram()
        for value in samples:
            loop.record(float(value))
        vec.record_many(samples)
        assert loop.count == vec.count
        assert loop.min == vec.min and loop.max == vec.max
        for q in (0.01, 0.5, 0.95, 0.999):
            assert loop.quantile(q) == pytest.approx(vec.quantile(q), rel=2e-2)

    def test_memory_stays_o_buckets_at_a_million_samples(self):
        rng = np.random.default_rng(0)
        # Seven decades of dynamic range, a million samples.
        samples = np.exp(rng.uniform(np.log(1e-2), np.log(1e5), size=1_000_000))
        hist = LatencyHistogram(relative_error=0.01)
        hist.record_many(samples)
        assert hist.count == 1_000_000
        # ln(1e7) / ln(gamma) ≈ 800 buckets for 1% error — fixed, tiny.
        assert hist.bucket_count < 1_000

    def test_quantile_validates_range(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_mean_within_relative_error(self):
        rng = np.random.default_rng(3)
        samples = rng.gamma(shape=2.0, scale=5.0, size=20_000) + 0.1
        hist = LatencyHistogram(relative_error=0.01)
        hist.record_many(samples)
        assert hist.summarize().mean == pytest.approx(float(samples.mean()), rel=0.01)


class TestMerge:
    def test_merge_equals_recording_everything(self):
        rng = np.random.default_rng(11)
        a, b = rng.exponential(5.0, 500) + 0.1, rng.exponential(50.0, 700) + 0.1
        merged = LatencyHistogram()
        merged.record_many(a)
        other = LatencyHistogram()
        other.record_many(b)
        merged.merge(other)
        combined = LatencyHistogram()
        combined.record_many(np.concatenate([a, b]))
        # Bucket state is the whole state, so this is exact equality.
        assert merged == combined
        assert merged.digest() == combined.digest()

    def test_merge_does_not_mutate_other(self):
        a = LatencyHistogram()
        a.record(1.0)
        b = LatencyHistogram()
        b.record(2.0)
        before = b.digest()
        a.merge(b)
        assert b.digest() == before

    def test_merge_rejects_incompatible_layouts(self):
        a = LatencyHistogram(relative_error=0.01)
        b = LatencyHistogram(relative_error=0.02)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_histograms_helper(self):
        hists = []
        for seed in range(3):
            hist = LatencyHistogram()
            hist.record_many(np.random.default_rng(seed).exponential(4.0, 200) + 0.1)
            hists.append(hist)
        pooled = merge_histograms(hists)
        assert pooled is not None
        assert pooled.count == sum(h.count for h in hists)
        # Inputs untouched.
        assert all(h.count == 200 for h in hists)
        assert merge_histograms([]) is None


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        hist = LatencyHistogram(relative_error=0.02, min_trackable_ms=1e-2)
        hist.record_many(np.random.default_rng(5).exponential(8.0, 1_000) + 0.1)
        hist.record(0.0)  # populate the zero bucket too
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone == hist
        assert clone.digest() == hist.digest()
        assert clone.quantile(0.99) == hist.quantile(0.99)

    def test_to_dict_is_json_safe(self):
        import json

        hist = LatencyHistogram()
        hist.record_many([0.5, 1.0, 100.0])
        payload = json.loads(json.dumps(hist.to_dict()))
        assert LatencyHistogram.from_dict(payload) == hist

    def test_digest_changes_with_content(self):
        a = LatencyHistogram()
        a.record(1.0)
        b = LatencyHistogram()
        b.record(2.0)
        assert a.digest() != b.digest()

    def test_copy_is_independent(self):
        hist = LatencyHistogram()
        hist.record(3.0)
        clone = hist.copy()
        clone.record(4.0)
        assert hist.count == 1 and clone.count == 2
