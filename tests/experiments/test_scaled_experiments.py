"""Smoke tests of the simulation-backed experiments at tiny scale.

These use aggressively scaled-down parameters so the full test suite remains
fast; the benchmark harness runs the experiments at their (larger) default
scale.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import ClusterScale

TINY_CLUSTER = ClusterScale(num_nodes=5, num_generators=8, duration_ms=300.0, num_keys=300, seed=1)
TINY_SIM = dict(num_servers=9, num_requests=500, seeds=(0,))


class TestClusterExperimentsTiny:
    def test_fig06_produces_rows_for_each_mix_and_strategy(self):
        result = run_experiment(
            "fig06", strategies=("C3", "DS"), mixes=("read_heavy",), scale=TINY_CLUSTER
        )
        assert len(result.rows) == 2
        assert all(row[2] > 0 for row in result.rows)  # mean latency positive

    def test_fig07_reports_throughput(self):
        result = run_experiment(
            "fig07", strategies=("C3", "DS"), mixes=("read_heavy",), scale=TINY_CLUSTER
        )
        assert all(row[2] > 0 for row in result.rows)

    def test_fig02_reports_oscillation_metrics(self):
        result = run_experiment("fig02", strategies=("DS",), scale=TINY_CLUSTER)
        assert len(result.rows) == 1
        assert result.rows[0][0] == "DS"

    def test_fig08_and_fig09_shapes(self):
        fig08 = run_experiment("fig08", strategies=("C3",), mixes=("read_heavy",), scale=TINY_CLUSTER)
        assert len(fig08.rows) == 1
        fig09 = run_experiment("fig09", strategies=("C3",), scale=TINY_CLUSTER)
        assert len(fig09.rows) == 1

    def test_fig10_degradation_rows(self):
        result = run_experiment(
            "fig10", strategies=("C3",), base_generators=6, load_increase=0.5, scale=TINY_CLUSTER
        )
        assert {row[1] for row in result.rows} == {"mean", "p95", "p99", "p99.9"}

    def test_fig11_reports_before_after(self):
        result = run_experiment(
            "fig11", strategies=("C3",), read_generators=5, joining_generators=3, scale=TINY_CLUSTER
        )
        row = result.row_dicts()[0]
        assert row["median before (ms)"] > 0
        assert row["median after (ms)"] > 0

    def test_fig12_ssd(self):
        result = run_experiment("fig12", strategies=("C3",), generators=8, scale=TINY_CLUSTER)
        assert result.rows[0][1] > 0

    def test_skewed_records(self):
        result = run_experiment("skewed_records", strategies=("C3",), scale=TINY_CLUSTER)
        assert result.rows[0][1] > 0

    def test_speculative_includes_three_configurations(self):
        result = run_experiment("speculative", retry_percentile=90.0, scale=TINY_CLUSTER)
        assert [row[0] for row in result.rows] == ["DS", "DS+spec", "C3"]

    def test_fig13_rate_trace(self):
        result = run_experiment(
            "fig13", num_nodes=5, num_generators=20, duration_ms=800.0, observer_count=1
        )
        assert len(result.rows) == 2  # one observer + the cluster row
        assert result.data["tracked_node"] in range(5)


class TestSimulatorExperimentsTiny:
    def test_fig14_sweep_rows(self):
        result = run_experiment(
            "fig14",
            strategies=("C3", "LOR"),
            intervals_ms=(50.0,),
            utilizations=(0.7,),
            client_counts=(20,),
            num_servers=9,
            num_requests=500,
            seeds=(0,),
        )
        assert len(result.rows) == 2
        assert all(row[5] > 0 for row in result.rows)

    def test_fig15_skew_rows(self):
        result = run_experiment(
            "fig15",
            strategies=("C3", "LOR"),
            skews=(0.2,),
            intervals_ms=(100.0,),
            num_clients=20,
            num_servers=9,
            num_requests=500,
        )
        assert len(result.rows) == 2

    def test_ablation_exponent(self):
        result = run_experiment(
            "ablation_exponent",
            exponents=(1.0, 3.0),
            num_clients=15,
            num_servers=9,
            num_requests=400,
        )
        assert len(result.rows) == 2

    def test_ablation_concurrency(self):
        result = run_experiment(
            "ablation_concurrency", num_clients=15, num_servers=9, num_requests=400
        )
        assert len(result.rows) == 3

    def test_ablation_rate_control(self):
        result = run_experiment(
            "ablation_rate_control", num_clients=15, num_servers=9, num_requests=400
        )
        assert len(result.rows) == 2


class TestScenarioExperimentsTiny:
    def test_gc_storm_reports_baseline_and_storm_rows(self):
        result = run_experiment(
            "gc_storm", strategies=("C3", "LOR"), num_servers=9, num_clients=15,
            num_requests=500,
        )
        scenarios = {row[0] for row in result.rows}
        assert scenarios == {"baseline", "gc-storm"}
        assert len(result.rows) == 4
        # The baseline rows anchor the inflation column at exactly 1.
        for row in result.row_dicts():
            if row["scenario"] == "baseline":
                assert row["p99 vs baseline"] == pytest.approx(1.0)

    def test_gc_storm_accepts_a_scenario_override(self):
        result = run_experiment(
            "gc_storm", scenario="slow-node", strategies=("LOR",), num_servers=9,
            num_clients=15, num_requests=500,
        )
        assert {row[0] for row in result.rows} == {"baseline", "slow-node"}

    def test_baseline_override_degenerates_to_a_single_scenario(self):
        # scenario == reference must not run (and report) baseline twice.
        result = run_experiment(
            "gc_storm", scenario="baseline", strategies=("LOR", "RAND"), num_servers=9,
            num_clients=15, num_requests=400,
        )
        assert len(result.rows) == 2
        assert {row[0] for row in result.rows} == {"baseline"}

    def test_crash_recovery_reports_throughput_retention(self):
        result = run_experiment(
            "crash_recovery", strategies=("C3", "LOR"), num_servers=9, num_clients=15,
            num_requests=500,
        )
        assert len(result.rows) == 4
        for row in result.row_dicts():
            assert row["throughput (req/s)"] > 0
