"""Tests for the experiment registry and the analytic (fast) experiments."""

import pytest

from repro.experiments import ExperimentResult, list_experiments, registry, run_experiment
from repro.experiments.fig01_motivating import ideal_allocation_max_latency, split_allocation_max_latency
from repro.experiments.fig04_scoring import equal_score_queue
from repro.experiments.fig05_cubic_curve import region_boundaries
from repro.experiments.table1_survey import SURVEY


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = list_experiments()
        expected = {
            "fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "table1", "skewed_records", "speculative",
            "ablation_exponent", "ablation_concurrency", "ablation_rate_control",
        }
        assert expected <= set(ids)

    def test_describe_returns_text(self):
        assert "Figure 1" in registry.describe("fig01")

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            registry.get("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register("fig01")(lambda: None)

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="x", title="t", headers=["a", "b"], rows=[[1, 2.5]], notes=["n"]
        )
        text = result.to_text()
        assert "== x: t ==" in text and "note: n" in text
        assert result.row_dicts() == [{"a": 1, "b": 2.5}]


class TestFig01:
    def test_lor_allocation_matches_paper(self):
        assert split_allocation_max_latency((4.0, 10.0), (6, 6)) == 60.0

    def test_ideal_allocation_beats_lor(self):
        ideal, alloc = ideal_allocation_max_latency((4.0, 10.0), 12)
        assert ideal < 60.0
        assert sum(alloc) == 12

    def test_experiment_result(self):
        result = run_experiment("fig01")
        assert result.data["lor_latency"] == 60.0
        assert result.data["ideal_latency"] < result.data["lor_latency"]
        # Analytic and simulated latencies must agree.
        for row in result.rows:
            assert row[2] == pytest.approx(row[3])

    def test_validation(self):
        with pytest.raises(ValueError):
            split_allocation_max_latency((4.0,), (1, 2))
        with pytest.raises(ValueError):
            ideal_allocation_max_latency((), 3)


class TestTable1:
    def test_only_cassandra_is_adaptive(self):
        adaptive = [entry.system for entry in SURVEY if entry.adaptive]
        assert adaptive == ["Cassandra"]

    def test_experiment_rows_match_survey(self):
        result = run_experiment("table1")
        assert len(result.rows) == len(SURVEY)


class TestFig04:
    def test_linear_requires_5x_queue(self):
        assert equal_score_queue(4.0, 20.0, 20.0, exponent=1.0) == pytest.approx(100.0)

    def test_cubic_requires_cube_root_ratio(self):
        assert equal_score_queue(4.0, 20.0, 20.0, exponent=3.0) == pytest.approx(20 * 5 ** (1 / 3))

    def test_experiment_shape(self):
        result = run_experiment("fig04")
        rows = result.row_dicts()
        linear = next(r for r in rows if "linear" in r["scoring function"])
        cubic = next(r for r in rows if "cubic" in r["scoring function"])
        assert linear["imbalance ratio"] > cubic["imbalance ratio"]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            equal_score_queue(0.0, 1.0, 1.0, 3.0)


class TestFig05:
    def test_region_boundaries_ordered(self):
        bounds = region_boundaries(50.0, 0.2, 8e-5)
        assert 0 <= bounds["saddle_start_ms"] < bounds["inflection_ms"] < bounds["saddle_end_ms"]

    def test_experiment_regions_present(self):
        result = run_experiment("fig05")
        regions = {row[2] for row in result.rows}
        assert {"low-rate (steep growth)", "saddle (stable)", "optimistic probing"} <= regions

    def test_curve_rates_monotone(self):
        result = run_experiment("fig05")
        rates = result.data["rates"]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
