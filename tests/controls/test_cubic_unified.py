"""Cross-module equivalence tests for the unified CUBIC implementation.

The cubic growth law lives in exactly one place (:mod:`repro.core.cubic`);
these tests pin every consumer — the rate controller, the default-gamma
selection in ``C3Config``, the Figure 5 region boundaries, and the
registered ``"cubic"`` control — to that single implementation, so the
constant/formula drift that previously existed between copies cannot
reappear silently.
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.controls import ControlSpec, cubic_config_from_params
from repro.core.config import C3Config
from repro.core.cubic import (
    DEFAULT_BETA,
    DEFAULT_SADDLE_MS,
    DEFAULT_SMAX,
    cubic_inflection_ms,
    cubic_rate,
    gamma_for_saddle,
)
from repro.core.rate_control import CubicRateController
from repro.experiments.fig05_cubic_curve import region_boundaries

rates = st.floats(min_value=0.5, max_value=500.0, allow_nan=False)
betas = st.floats(min_value=0.05, max_value=0.9, allow_nan=False)
gammas = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


class TestSharedConstants:
    def test_config_defaults_come_from_the_shared_module(self):
        config = C3Config()
        assert config.beta == DEFAULT_BETA
        assert config.saddle_duration_ms == DEFAULT_SADDLE_MS
        assert config.smax == DEFAULT_SMAX

    def test_registered_cubic_params_match_config_defaults(self):
        from repro.controls.rate import CubicRateParams

        params = CubicRateParams()
        config = C3Config()
        for name in (
            "initial_rate", "rate_delta_ms", "beta", "smax", "saddle_duration_ms",
            "gamma", "hysteresis_ms", "ewma_alpha", "min_rate", "max_rate",
            "rate_excess_tolerance", "rate_min_utilisation",
        ):
            assert getattr(params, name) == getattr(config, name), name


class TestFormulaInverses:
    @given(rates, betas)
    def test_effective_gamma_inverts_the_inflection_formula(self, r0, beta):
        # The default gamma is chosen so the cubic's inflection sits at half
        # the configured saddle duration — gamma_for_saddle and
        # cubic_inflection_ms must be exact inverses.
        config = C3Config(beta=beta)
        gamma = config.effective_gamma(r0)
        assert math.isclose(
            cubic_inflection_ms(r0, beta, gamma),
            config.saddle_duration_ms / 2.0,
            rel_tol=1e-9,
        )

    @given(rates, betas, st.floats(min_value=10.0, max_value=500.0))
    def test_gamma_for_saddle_round_trips(self, r0, beta, saddle_ms):
        gamma = gamma_for_saddle(saddle_ms, beta, r0)
        assert math.isclose(cubic_inflection_ms(r0, beta, gamma), saddle_ms / 2.0, rel_tol=1e-9)

    @given(rates, betas, gammas)
    def test_curve_crosses_saturation_rate_at_the_inflection(self, r0, beta, gamma):
        inflection = cubic_inflection_ms(r0, beta, gamma)
        assert math.isclose(cubic_rate(inflection, r0, beta, gamma), r0, rel_tol=1e-9, abs_tol=1e-9)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            cubic_inflection_ms(10.0, 0.2, 0.0)
        with pytest.raises(ValueError):
            cubic_inflection_ms(-1.0, 0.2, 1e-4)


class TestFig05UsesTheSharedFormulas:
    @given(rates, betas, gammas)
    def test_region_boundaries_centre_on_the_shared_inflection(self, r0, beta, gamma):
        boundaries = region_boundaries(r0, beta, gamma)
        assert boundaries["inflection_ms"] == cubic_inflection_ms(r0, beta, gamma)
        # The saddle band is symmetric about the inflection and its edges sit
        # exactly `tolerance * R0` away on the shared curve.
        half = boundaries["saddle_width_ms"] / 2.0
        edge_rate = cubic_rate(boundaries["inflection_ms"] + half, r0, beta, gamma)
        assert math.isclose(edge_rate - r0, 0.05 * r0, rel_tol=1e-6)


def _drive(controller: CubicRateController) -> list[float]:
    """A fixed burst/lull schedule; returns the srate trace it produces."""
    trace = []
    now = 0.0
    for cycle in range(30):
        # Burst: responses faster than the send rate → cubic growth.
        for _ in range(20):
            now += 0.4
            controller.try_acquire(now)
            controller.on_response(now)
            trace.append(controller.srate)
        # Lull: send without responses → the controller detects falling
        # behind and multiplicatively decreases.
        for _ in range(10):
            now += 2.0
            controller.try_acquire(now)
            controller.on_response(now + 0.01)
            trace.append(controller.srate)
    return trace


class TestSpecBuiltControllerEquivalence:
    def test_spec_built_matches_config_built_measurement_for_measurement(self):
        overrides = dict(initial_rate=4.0, beta=0.4, smax=6.0, rate_delta_ms=10.0)
        spec_controller = ControlSpec.parse(
            "cubic:initial_rate=4.0,beta=0.4,smax=6.0,rate_delta_ms=10.0"
        ).build()
        config_controller = CubicRateController(C3Config(**overrides))
        spec_trace = _drive(spec_controller)
        config_trace = _drive(config_controller)
        assert spec_trace == config_trace
        assert spec_controller.increases == config_controller.increases
        assert spec_controller.decreases == config_controller.decreases
        assert spec_controller.saturation_rate == config_controller.saturation_rate

    def test_cubic_config_from_params_layers_onto_a_base(self):
        base = C3Config(initial_rate=7.0, beta=0.3)
        config = cubic_config_from_params({"smax": 20.0}, base)
        assert config.initial_rate == 7.0
        assert config.beta == 0.3
        assert config.smax == 20.0

    def test_default_spec_is_the_default_config(self):
        controller = ControlSpec.parse("cubic").build()
        assert controller.config == C3Config()
