"""Regression tests for the hedging metrics-correctness fixes.

Three bugs shipped with the PR 6 hedging seam, each pinned here:

* a hedge-won read's straggling primary response used to overwrite
  ``completed_at``, so ``Request.latency`` disagreed with the latency the
  metrics recorded at win time;
* a hedge win used to credit the *primary's* server a windowed-load
  completion at hedge-win time while the primary's actual completion was
  swallowed, shifting the Fig. 8/9 per-server load series into earlier
  windows under hedging;
* ``_fire_hedge`` with no live candidate returned without re-arming the
  timer, permanently disarming hedging for that request even though the
  extra-copy budget remained.
"""

from __future__ import annotations

import numpy as np

from repro.controls import ControlSpec
from repro.controls.hedging import QuantileHedging
from repro.core.feedback import ServerFeedback
from repro.simulator.client import SimClient
from repro.simulator.engine import EventLoop
from repro.simulator.metrics import MetricsCollector
from repro.simulator.network import ConstantLatency
from repro.simulator.request import Request, RequestKind
from repro.strategies import make_selector


class _StubServer:
    """A dispatch sink with ground-truth liveness (never responds)."""

    def __init__(self, up: bool = True) -> None:
        self.is_up = up
        self.received: list[Request] = []

    def enqueue(self, request: Request) -> None:
        self.received.append(request)


class _StubTracker:
    def __init__(self, count: int) -> None:
        self.count = count


def _harness(down: frozenset = frozenset(), seed: int = 0, window_ms: float = 1.0):
    """A warmed-up hedging client over stub servers; hedge threshold = 1 ms."""
    loop = EventLoop()
    servers = {sid: _StubServer(up=sid not in down) for sid in (0, 1, 2, 3, 4)}
    policy = QuantileHedging(quantile=0.9, max_extra=2, min_samples=5, history=100)
    for _ in range(10):
        policy.record(1.0)
    tracker = _StubTracker(count=len(down))
    detector = ControlSpec.parse("binary").build(down_tracker=tracker, servers=servers)
    metrics = MetricsCollector(window_ms=window_ms)
    client = SimClient(
        loop=loop,
        client_id="c",
        selector=make_selector("RAND", rng=np.random.default_rng(seed)),
        servers=servers,
        network=ConstantLatency(0.1),
        metrics=metrics,
        read_repair_probability=0.0,
        rng=np.random.default_rng(seed + 1),
        failure_detector=detector,
        hedging=policy,
    )
    return loop, servers, client, tracker, metrics


def _feedback(server_id) -> ServerFeedback:
    return ServerFeedback(queue_size=0, service_time=1.0, server_id=server_id)


def _hedged_primary_with_copy(loop, servers, client):
    """Dispatch a primary at t=0, let the hedge fire, return (primary, copy)."""
    primary = Request.create(
        client_id="c", replica_group=tuple(servers), created_at=0.0, kind=RequestKind.READ
    )
    primary.mark_dispatched(0.0, 0)
    client._maybe_schedule_hedge(primary)
    loop.run(until=1.5)  # hedge fires at t=1.0, copy lands on a stub at t=1.1
    copies = [
        req
        for server in servers.values()
        for req in server.received
        if req.kind == RequestKind.SPECULATIVE
    ]
    assert len(copies) == 1
    return primary, copies[0]


class TestStragglerDoesNotOverwriteCompletion:
    def test_completed_at_and_latency_pin_the_win_time(self):
        loop, servers, client, _, metrics = _harness()
        primary, copy = _hedged_primary_with_copy(loop, servers, client)

        # The hedge copy answers at t=3; the straggling primary at t=10.
        loop.schedule_at(3.0, client.on_server_response, copy, _feedback(copy.server_id), 1.0)
        loop.schedule_at(10.0, client.on_server_response, primary, _feedback(0), 1.0)
        loop.run(until=20.0)

        assert client.hedges_won == 1
        assert primary.completed_at == 3.0, "straggler must not overwrite the win time"
        assert primary.latency == 3.0
        # Exactly one client-visible completion, at the recorded win latency.
        assert metrics.completed_requests == 1
        assert metrics._latencies == [primary.latency]


class TestServerLoadAttributedAtActualResponseTime:
    def test_primary_server_credited_in_its_own_response_window(self):
        loop, servers, client, _, metrics = _harness(window_ms=1.0)
        primary, copy = _hedged_primary_with_copy(loop, servers, client)

        loop.schedule_at(3.0, client.on_server_response, copy, _feedback(copy.server_id), 1.0)
        loop.schedule_at(10.0, client.on_server_response, primary, _feedback(0), 1.0)
        loop.run(until=20.0)

        result = metrics.result(duration_ms=20.0)
        # The copy's server is credited in the window of the copy's response.
        copy_series = result.server_load_series[copy.server_id]
        assert copy_series[3] == 1
        # The primary's server is credited when it actually responded (t=10),
        # not in the hedge-win window (t=3).
        primary_series = result.server_load_series[0]
        assert primary_series[10] == 1
        assert primary_series[3] == 0
        assert result.per_server_completed == {0: 1, copy.server_id: 1}

    def test_unanswered_straggler_leaves_primary_server_uncredited(self):
        loop, servers, client, _, metrics = _harness(window_ms=1.0)
        primary, copy = _hedged_primary_with_copy(loop, servers, client)

        loop.schedule_at(3.0, client.on_server_response, copy, _feedback(copy.server_id), 1.0)
        loop.run(until=20.0)

        # The run ended before the primary's server ever answered: it did no
        # completion work, so it earns no windowed-load credit.
        result = metrics.result(duration_ms=20.0)
        assert 0 not in result.per_server_completed
        assert result.per_server_completed == {copy.server_id: 1}
        assert metrics.completed_requests == 1


class TestHedgeRearmsThroughTransientOutage:
    def test_hedge_fires_after_full_group_recovery(self):
        # Every peer of the primary is down when the hedge timer first
        # fires; the timer must stay armed (budget remains) and hedge once
        # the group recovers.
        loop, servers, client, tracker, _ = _harness(down=frozenset({1, 2, 3, 4}))
        primary = Request.create(
            client_id="c", replica_group=tuple(servers), created_at=0.0, kind=RequestKind.READ
        )
        primary.mark_dispatched(0.0, 0)
        client._maybe_schedule_hedge(primary)

        def recover() -> None:
            for server in servers.values():
                server.is_up = True
            tracker.count = 0

        loop.schedule_at(5.0, recover)
        loop.run(until=20.0)

        assert client.hedges_fired >= 1, "hedging must resume after recovery"
        hedged = [
            req
            for server in servers.values()
            for req in server.received
            if req.kind == RequestKind.SPECULATIVE
        ]
        assert len(hedged) == client.hedges_fired
        assert all(req.dispatched_at >= 5.0 for req in hedged)

    def test_no_rearm_once_budget_is_spent(self):
        # With every peer live the policy fires its full max_extra budget
        # and then stops: the re-arm path must respect the budget.
        loop, servers, client, _, _ = _harness()
        primary = Request.create(
            client_id="c", replica_group=tuple(servers), created_at=0.0, kind=RequestKind.READ
        )
        primary.mark_dispatched(0.0, 0)
        client._maybe_schedule_hedge(primary)
        loop.run(until=50.0)
        assert client.hedges_fired == 2  # max_extra
