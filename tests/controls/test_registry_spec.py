"""Registry and spec-grammar tests for the control-plane registry."""

from __future__ import annotations

import pytest

from repro.controls import (
    CONTROL_KINDS,
    ControlSpec,
    control_names,
    get_control,
    kind_label,
    resolve_control,
)
from repro.controls.detectors import (
    BinaryFailureDetector,
    PhiAccrualFailureDetector,
)
from repro.controls.hedging import QuantileHedging
from repro.core.rate_control import CubicRateController


class TestRegistryListing:
    def test_builtin_controls_registered(self):
        assert set(control_names()) >= {"binary", "phi", "hedge", "cubic"}

    def test_kind_filtering(self):
        assert set(control_names(kind="detector")) == {"binary", "phi"}
        assert control_names(kind="hedge") == ("hedge",)
        assert control_names(kind="rate") == ("cubic",)

    def test_every_control_has_a_valid_kind(self):
        for name in control_names():
            assert get_control(name).kind in CONTROL_KINDS

    def test_kind_labels(self):
        assert kind_label("detector") == "failure detector"
        assert kind_label("hedge") == "hedging policy"
        assert kind_label("rate") == "rate controller"

    def test_aliases_resolve(self):
        assert resolve_control("GROUND_TRUTH").name == "binary"
        assert resolve_control("PHI_ACCRUAL").name == "phi"
        assert resolve_control("SPECULATIVE").name == "hedge"
        assert resolve_control("SPECULATIVE_RETRY").name == "hedge"
        assert resolve_control("CUBIC_RATE").name == "cubic"

    def test_lookup_is_case_insensitive(self):
        assert resolve_control("PHI").name == "phi"
        assert resolve_control("Hedge").name == "hedge"

    def test_unknown_control_suggests(self):
        with pytest.raises(ValueError, match="phi"):
            resolve_control("phii")

    def test_kind_mismatch_is_a_precise_error(self):
        with pytest.raises(ValueError, match="hedging policy, not a failure detector"):
            resolve_control("hedge", kind="detector")

    def test_param_defaults_exposed(self):
        phi = get_control("phi")
        assert phi.param_defaults()["threshold"] == 8.0
        hedge = get_control("hedge")
        assert hedge.param_defaults()["quantile"] == 0.95


class TestSpecParsing:
    def test_defaults_are_dropped(self):
        # 8.0 is the registered default, so the override vanishes and both
        # spellings share one canonical string, digest, and cache key.
        explicit = ControlSpec.parse("phi:threshold=8")
        bare = ControlSpec.parse("phi")
        assert explicit == bare
        assert explicit.canonical() == "phi"
        assert explicit.digest() == bare.digest()

    def test_non_default_params_round_trip(self):
        spec = ControlSpec.parse("hedge:quantile=0.99,max_extra=2")
        assert spec.params_dict == {"quantile": 0.99, "max_extra": 2}
        assert ControlSpec.parse(spec.canonical()) == spec

    def test_param_alias_expands(self):
        assert ControlSpec.parse("hedge:q=0.99") == ControlSpec.parse("hedge:quantile=0.99")

    def test_mapping_form(self):
        spec = ControlSpec.parse({"name": "phi", "params": {"threshold": 6}})
        assert spec == ControlSpec.parse("phi:threshold=6")

    def test_mapping_form_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ControlSpec.parse({"name": "phi", "threshold": 6})

    def test_unknown_param_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'threshold'"):
            ControlSpec.parse("phi:treshold=6")

    def test_invalid_values_rejected_at_parse_time(self):
        with pytest.raises(ValueError, match="threshold must be positive"):
            ControlSpec.parse("phi:threshold=-1")
        with pytest.raises(ValueError, match="quantile must be in"):
            ControlSpec.parse("hedge:quantile=1.5")
        with pytest.raises(ValueError):
            ControlSpec.parse("cubic:beta=1.5")

    def test_kind_property(self):
        assert ControlSpec.parse("phi").kind == "detector"
        assert ControlSpec.parse("hedge").kind == "hedge"
        assert ControlSpec.parse("cubic").kind == "rate"

    def test_distinct_params_distinct_digests(self):
        assert ControlSpec.parse("phi:threshold=6").digest() != ControlSpec.parse("phi").digest()

    def test_str_is_canonical(self):
        # Values coerce against the registered param dataclass, so integer
        # and float spellings of a float field share one canonical string.
        assert str(ControlSpec.parse("phi:threshold=6")) == "phi:threshold=6.0"
        assert str(ControlSpec.parse("phi:threshold=6.0")) == "phi:threshold=6.0"


class TestSpecBuild:
    def test_binary_build_consumes_context(self):
        class Tracker:
            count = 0

        servers = {0: object()}
        tracker = Tracker()
        detector = ControlSpec.parse("binary").build(down_tracker=tracker, servers=servers)
        assert isinstance(detector, BinaryFailureDetector)
        assert detector.down_tracker is tracker
        assert detector.servers is servers
        assert not detector.suspicious()

    def test_phi_build_applies_overrides(self):
        detector = ControlSpec.parse("phi:threshold=5,window=10").build()
        assert isinstance(detector, PhiAccrualFailureDetector)
        assert detector.threshold == 5.0
        assert detector.window == 10

    def test_hedge_build(self):
        policy = ControlSpec.parse("hedge:quantile=0.9,max_extra=3").build()
        assert isinstance(policy, QuantileHedging)
        assert policy.quantile == 0.9
        assert policy.max_extra == 3

    def test_cubic_build(self):
        controller = ControlSpec.parse("cubic:initial_rate=4,max_rate=40").build()
        assert isinstance(controller, CubicRateController)
        assert controller.srate == 4.0
        assert controller.config.max_rate == 40.0
