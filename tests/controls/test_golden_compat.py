"""Golden-compatibility regression suite for the controls refactor.

Three byte-for-byte contracts:

* an *explicit* ``failure_detector="binary"`` + ``hedging=None`` config
  reproduces the exact pinned ``SimulationResult.digest()`` values of the
  pre-controls simulator (the pins are imported from the scenario golden
  suite so there is a single source of truth);
* the default control specs are invisible to runner payloads, so cache keys
  and payload hashes predating the controls axes are unchanged;
* the ``speculative`` experiment produces identical rows whether the retry
  mechanism is spelled as the legacy ``retry_percentile`` or as the
  generalized ``hedging="hedge:quantile=..."`` control spec.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.experiments import registry as experiment_registry
from repro.experiments.common import ClusterScale
from repro.runner.spec import config_to_payload, content_hash, payload_to_config
from repro.simulator import SimulationConfig, run_simulation

# The scenario golden suite owns the pinned digests; load it by path (the
# test tree is not a package) so the pins cannot drift apart.
_GOLDEN_PATH = Path(__file__).resolve().parents[1] / "scenarios" / "test_golden_digests.py"
_spec = importlib.util.spec_from_file_location("scenario_golden_pins", _GOLDEN_PATH)
_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_golden)

LEGACY_CONFIGS = _golden.LEGACY_CONFIGS
LEGACY_DIGESTS = _golden.LEGACY_DIGESTS
SCENARIO_DIGESTS = _golden.SCENARIO_DIGESTS
scenario_config = _golden.scenario_config


class TestExplicitBinaryMatchesGoldenPins:
    @pytest.mark.parametrize("name", sorted(LEGACY_CONFIGS))
    def test_explicit_binary_reproduces_legacy_digest(self, name):
        config = SimulationConfig(
            **LEGACY_CONFIGS[name], failure_detector="binary", hedging=None
        )
        assert run_simulation(config).digest() == LEGACY_DIGESTS[name], (
            "explicitly selecting the 'binary' detector must be byte-identical "
            "to the pre-controls simulator"
        )

    @pytest.mark.parametrize(
        "scenario,strategy",
        [("crash-recovery", "C3"), ("crash-recovery", "LOR"), ("gc-storm", "C3")],
        ids=str,
    )
    def test_explicit_binary_reproduces_scenario_digest(self, scenario, strategy):
        # crash-recovery is the scenario where liveness filtering actually
        # runs, so it is the sharpest probe of the detector seam.
        config = scenario_config(scenario, strategy).copy(
            failure_detector="binary", hedging=None
        )
        assert run_simulation(config).digest() == SCENARIO_DIGESTS[(scenario, strategy)]

    def test_ground_truth_alias_is_the_same_run(self):
        config = scenario_config("crash-recovery", "C3").copy(
            failure_detector="GROUND_TRUTH"
        )
        assert config.failure_detector == "binary"
        assert run_simulation(config).digest() == SCENARIO_DIGESTS[("crash-recovery", "C3")]

    def test_phi_detector_changes_crash_recovery_behavior(self):
        # The pins above are only meaningful if a non-default detector
        # actually changes the run on the same config.
        config = scenario_config("crash-recovery", "C3").copy(
            failure_detector="phi:threshold=2,min_intervals=2"
        )
        result = run_simulation(config)
        assert result.completed_requests == 400
        assert result.digest() != SCENARIO_DIGESTS[("crash-recovery", "C3")]


class TestDefaultControlsInvisibleToPayloads:
    def test_default_specs_omitted_from_payload(self):
        payload = config_to_payload(SimulationConfig())
        assert "failure_detector" not in payload
        assert "hedging" not in payload

    def test_explicit_binary_hashes_like_default(self):
        default = SimulationConfig(num_requests=500, strategy="C3", seed=3)
        explicit = default.copy(failure_detector="binary", hedging=None)
        assert content_hash(config_to_payload(default)) == content_hash(
            config_to_payload(explicit)
        )

    def test_non_default_specs_hash_distinctly(self):
        base = SimulationConfig(num_requests=500)
        keys = {
            content_hash(config_to_payload(base.copy(**overrides)))
            for overrides in (
                {},
                {"failure_detector": "phi"},
                {"failure_detector": "phi:threshold=6"},
                {"hedging": "hedge"},
                {"hedging": "hedge:quantile=0.99"},
            )
        }
        assert len(keys) == 5

    def test_payload_round_trip_restores_defaults(self):
        config = SimulationConfig(num_requests=500, strategy="LOR")
        rebuilt = payload_to_config(config_to_payload(config))
        assert rebuilt.failure_detector == "binary"
        assert rebuilt.hedging is None
        assert rebuilt == config

    def test_payload_round_trip_preserves_control_specs(self):
        config = SimulationConfig(
            num_requests=500,
            failure_detector="phi:threshold=6",
            hedging="hedge:quantile=0.99,max_extra=2",
        )
        rebuilt = payload_to_config(config_to_payload(config))
        assert rebuilt == config


class TestSpeculativeExperimentEquivalence:
    def test_percentile_and_hedge_spec_rows_match(self):
        # The same retry mechanism, two spellings: the legacy percentile
        # parameter and the generalized hedging control spec must produce
        # identical experiment rows (same RNG draws, same speculation
        # thresholds, same completions).
        run = experiment_registry.get("speculative")
        scale = ClusterScale(
            num_nodes=5, num_generators=10, duration_ms=400.0, num_keys=500
        )
        legacy = run(retry_percentile=99.0, scale=scale)
        spec = run(hedging="hedge:quantile=0.99", scale=scale)
        assert legacy.headers == spec.headers
        assert legacy.rows == spec.rows
