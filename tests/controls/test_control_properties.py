"""Property-based tests (hypothesis) for the control-plane policies.

The four contracts the ISSUE pins down:

* phi suspicion grows monotonically while a server stays silent and resets
  to zero on the next heartbeat;
* a hedged read is never dispatched to a replica the failure detector
  currently considers down;
* the unified CUBIC controller never exceeds a configured ``max_rate`` cap
  (and never sinks below ``min_rate``);
* control-spec sweeps are byte-identical between serial and process-pool
  execution.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.controls import ControlSpec
from repro.controls.detectors import PhiAccrualFailureDetector
from repro.controls.hedging import QuantileHedging
from repro.runner import SweepRunner, SweepSpec
from repro.simulator import SimulationConfig
from repro.simulator.client import SimClient
from repro.simulator.engine import EventLoop
from repro.simulator.metrics import MetricsCollector
from repro.simulator.network import ConstantLatency
from repro.simulator.request import Request, RequestKind
from repro.strategies import make_selector

gaps = st.floats(min_value=0.1, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestPhiProperties:
    @given(st.lists(gaps, min_size=4, max_size=40), st.lists(gaps, min_size=1, max_size=20))
    def test_phi_monotone_during_silence(self, intervals, silences):
        detector = PhiAccrualFailureDetector()
        now = 0.0
        for gap in intervals:
            now += gap
            detector.heartbeat("s", now)
        # Immediately after a heartbeat the suspicion is zero; from there it
        # grows monotonically with the length of the silence.
        assert detector.phi("s", now) == 0.0
        probes = np.cumsum(silences)
        phis = [detector.phi("s", now + t) for t in probes]
        assert all(b >= a for a, b in zip(phis, phis[1:]))
        assert all(p >= 0.0 for p in phis)

    @given(st.lists(gaps, min_size=4, max_size=40), gaps)
    def test_heartbeat_resets_phi(self, intervals, silence):
        detector = PhiAccrualFailureDetector()
        now = 0.0
        for gap in intervals:
            now += gap
            detector.heartbeat("s", now)
        later = now + 1_000.0 + silence  # long enough to be deeply suspected
        assert detector.phi("s", later) > 0.0
        detector.heartbeat("s", later)
        assert detector.phi("s", later) == 0.0
        assert detector.is_alive("s", later)

    @given(st.lists(gaps, min_size=0, max_size=2))
    def test_too_little_history_never_convicts(self, intervals):
        # Fewer than min_intervals inter-arrival samples: phi stays 0 and the
        # server counts as alive no matter how long the silence.
        detector = PhiAccrualFailureDetector(min_intervals=3)
        now = 0.0
        detector.heartbeat("s", now)
        for gap in intervals:
            now += gap
            detector.heartbeat("s", now)
        assert detector.phi("s", now + 1e6) == 0.0
        assert detector.is_alive("s", now + 1e6)
        assert not detector.suspicious()

    @given(st.lists(gaps, min_size=4, max_size=40))
    def test_threshold_orders_conviction(self, intervals):
        # A lower threshold can only convict earlier, never later.
        lenient = PhiAccrualFailureDetector(threshold=12.0)
        strict = PhiAccrualFailureDetector(threshold=2.0)
        now = 0.0
        for gap in intervals:
            now += gap
            lenient.heartbeat("s", now)
            strict.heartbeat("s", now)
        for silence in (1.0, 10.0, 100.0, 1e4, 1e6):
            if not lenient.is_alive("s", now + silence):
                assert not strict.is_alive("s", now + silence)


class _StubServer:
    """A dispatch sink with ground-truth liveness."""

    def __init__(self, up: bool) -> None:
        self.is_up = up
        self.received: list[Request] = []

    def enqueue(self, request: Request) -> None:
        self.received.append(request)


class _StubTracker:
    def __init__(self, count: int) -> None:
        self.count = count


def _hedging_client(down: frozenset, seed: int, group=(0, 1, 2, 3, 4)):
    loop = EventLoop()
    servers = {sid: _StubServer(up=sid not in down) for sid in group}
    policy = QuantileHedging(quantile=0.9, max_extra=2, min_samples=5, history=100)
    for _ in range(10):
        policy.record(1.0)  # warmed up: hedge threshold is 1 ms
    tracker = _StubTracker(count=len(down))
    detector = ControlSpec.parse("binary").build(down_tracker=tracker, servers=servers)
    client = SimClient(
        loop=loop,
        client_id="c",
        selector=make_selector("RAND", rng=np.random.default_rng(seed)),
        servers=servers,
        network=ConstantLatency(0.1),
        metrics=MetricsCollector(),
        read_repair_probability=0.0,
        rng=np.random.default_rng(seed + 1),
        failure_detector=detector,
        hedging=policy,
    )
    return loop, servers, client


class TestHedgingNeverTargetsDownReplicas:
    @given(
        down=st.sets(st.integers(min_value=1, max_value=4), max_size=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_hedge_copies_land_only_on_live_replicas(self, down, seed):
        # Server 0 (the primary target) is always up; any subset of the rest
        # may be crashed.  However the RNG falls, no speculative copy may be
        # dispatched to a server the detector considers down.
        loop, servers, client = _hedging_client(frozenset(down), seed)
        primary = Request.create(
            client_id="c", replica_group=tuple(servers), created_at=0.0, kind=RequestKind.READ
        )
        primary.mark_dispatched(0.0, 0)
        client._maybe_schedule_hedge(primary)
        loop.run(until=50.0)
        for sid, server in servers.items():
            if not server.is_up:
                assert server.received == [], f"hedge dispatched to down server {sid}"
        hedged = [
            req
            for server in servers.values()
            for req in server.received
            if req.kind == RequestKind.SPECULATIVE
        ]
        assert len(hedged) == client.hedges_fired
        live_others = {sid for sid in servers if sid != 0 and servers[sid].is_up}
        # max_extra=2 with distinct targets per copy: bounded by live peers.
        assert client.hedges_fired <= min(2, len(live_others))
        if live_others:
            assert client.hedges_fired >= 1  # threshold elapsed, a target existed
        assert {req.server_id for req in hedged} <= live_others

    def test_no_live_peer_means_no_hedge(self):
        loop, servers, client = _hedging_client(frozenset({1, 2, 3, 4}), seed=3)
        primary = Request.create(
            client_id="c", replica_group=tuple(servers), created_at=0.0, kind=RequestKind.READ
        )
        primary.mark_dispatched(0.0, 0)
        client._maybe_schedule_hedge(primary)
        loop.run(until=50.0)
        assert client.hedges_fired == 0
        assert all(s.received == [] for s in servers.values())


class TestCubicRateCap:
    @given(
        cap=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
        steps=st.lists(
            st.tuples(st.floats(min_value=0.5, max_value=40.0), st.booleans()),
            min_size=1,
            max_size=120,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_srate_never_exceeds_configured_cap(self, cap, steps):
        controller = ControlSpec.parse(
            f"cubic:initial_rate=1.0,smax=50,rate_delta_ms=5,max_rate={cap}"
        ).build()
        now = 0.0
        for dt, respond in steps:
            now += dt
            if respond:
                controller.on_response(now)
            else:
                controller.try_acquire(now)
            assert controller.config.min_rate <= controller.srate <= cap

    def test_uncapped_controller_grows_past_any_finite_bound_eventually(self):
        # Sanity that the cap assertion above is not vacuous: without a cap
        # the same schedule grows the rate well beyond the capped ceiling.
        capped = ControlSpec.parse("cubic:initial_rate=1.0,smax=50,rate_delta_ms=5,max_rate=8").build()
        free = ControlSpec.parse("cubic:initial_rate=1.0,smax=50,rate_delta_ms=5").build()
        now = 0.0
        for _ in range(2000):
            # A response burst well above srate: rrate > srate, so the cubic
            # growth path runs on every update.
            now += 0.2
            capped.on_response(now)
            free.on_response(now)
        assert capped.srate <= 8.0
        assert free.srate > 8.0


class TestControlSweepDeterminism:
    def test_serial_matches_pooled_byte_for_byte(self):
        spec = SweepSpec(
            base=SimulationConfig(
                num_servers=9,
                num_clients=8,
                num_requests=200,
                utilization=0.6,
                fluctuation_enabled=False,
            ),
            grid={
                "strategy": ("C3", "LOR"),
                "failure_detector": ("binary", "phi:threshold=6"),
                "hedging": (None, "hedge:quantile=0.9,min_samples=10"),
            },
            seeds=(0,),
        )
        serial = SweepRunner(parallel=False).run(spec)
        pooled = SweepRunner(max_workers=2).run(spec)
        assert serial.trial_digests() == pooled.trial_digests()
        for s, p in zip(serial.trials, pooled.trials):
            assert (s.params, s.seed) == (p.params, p.seed)
            assert s.summary == p.summary

    def test_control_axes_produce_distinct_trial_keys(self):
        spec = SweepSpec(
            base=SimulationConfig(num_requests=100),
            grid={
                "failure_detector": ("binary", "phi", "phi:threshold=6"),
                "hedging": (None, "hedge:quantile=0.9"),
            },
            seeds=(0,),
        )
        keys = [t.key for t in spec.trials()]
        assert len(set(keys)) == len(keys) == 6
