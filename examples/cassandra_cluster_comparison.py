#!/usr/bin/env python3
"""Cassandra-like cluster: C3 vs Dynamic Snitching on a YCSB-style workload.

Reproduces the §5 setup at laptop scale: a 15-node cluster (token ring,
RF = 3, spinning-disk storage model, background compactions and GC pauses)
driven by closed-loop YCSB-style generators with a Zipfian key popularity.
It prints the latency profile and throughput for both snitching strategies —
the comparison behind Figures 6 and 7 of the paper.

Run with::

    python examples/cassandra_cluster_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_comparison
from repro.cluster import ClusterConfig, run_cluster


def run_one(strategy: str, workload_mix: str) -> dict:
    config = ClusterConfig(
        num_nodes=15,
        num_generators=60,          # paper: 120 YCSB generator threads
        duration_ms=2_000.0,        # paper: 10 M operations per measurement
        workload_mix=workload_mix,  # read_heavy / read_only / update_heavy
        disk="hdd",
        strategy=strategy,
        seed=7,
    )
    result = run_cluster(config)
    summary = result.read_summary.as_dict()
    summary["throughput"] = result.throughput_rps
    return summary


def main() -> None:
    for mix in ("read_heavy", "update_heavy"):
        ds = run_one("DS", mix)
        c3 = run_one("C3", mix)
        print()
        print(
            format_comparison(
                "DS",
                ds,
                "C3",
                c3,
                columns=("mean", "median", "p95", "p99", "p99.9", "throughput"),
                title=f"Workload: {mix} (read latencies in ms, throughput in ops/s)",
            )
        )
    print()
    print(
        "Expected shape (paper, Figures 6-7): C3 improves the mean, median and "
        "tail latencies for every workload mix — up to ~3x at the 99.9th "
        "percentile — while raising read throughput by 26-50%."
    )


if __name__ == "__main__":
    main()
