#!/usr/bin/env python3
"""Demand-skew study: a few clients generate most of the load (Figure 15).

20 % (or 50 %) of the clients generate 80 % of the requests.  C3's
concurrency compensation makes heavy clients project larger queue estimates
for the servers they hammer, so they naturally back off — keeping the tail
low without any coordination between clients.

Run with::

    python examples/demand_skew_study.py
"""

from __future__ import annotations

from repro import DemandSkew, SimulationConfig, run_simulation
from repro.analysis import format_table


def main() -> None:
    rows = []
    for client_fraction in (0.2, 0.5):
        skew = DemandSkew(client_fraction=client_fraction, demand_fraction=0.8)
        for strategy in ("ORA", "C3", "LOR", "RR"):
            config = SimulationConfig(
                num_servers=30,
                num_clients=90,
                num_requests=6_000,
                utilization=0.7,
                fluctuation_interval_ms=200.0,
                demand_skew=skew,
                strategy=strategy,
                seed=13,
            )
            summary = run_simulation(config).summary
            rows.append(
                [
                    f"{int(client_fraction * 100)}% of clients -> 80% of load",
                    strategy,
                    summary.median,
                    summary.p99,
                    summary.p999,
                ]
            )
    print(
        format_table(
            ["demand skew", "strategy", "median (ms)", "p99 (ms)", "p99.9 (ms)"],
            rows,
            title="Latency under skewed client demand (Figure 15 scenario)",
        )
    )
    print()
    print(
        "Expected shape: regardless of the skew, C3 outperforms LOR and the "
        "rate-limited round-robin baseline and stays close to the oracle."
    )


if __name__ == "__main__":
    main()
