#!/usr/bin/env python3
"""Quickstart: compare C3 against Least-Outstanding-Requests in the simulator.

This is the smallest end-to-end use of the library: configure a flat
replica-selection simulation (the §6 setup of the paper), run it for a few
strategies, and print the latency profile each one achieves.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.analysis import format_summary_rows


def main() -> None:
    strategies = ["ORA", "C3", "LOR", "RR"]
    summaries = {}
    for strategy in strategies:
        config = SimulationConfig(
            num_servers=30,
            num_clients=90,
            num_requests=8_000,
            utilization=0.7,
            fluctuation_interval_ms=200.0,   # servers change speed every 200 ms
            strategy=strategy,
            seed=42,
        )
        result = run_simulation(config)
        summaries[strategy] = result.summary.as_dict()
        print(
            f"{strategy:4s}: completed {result.completed_requests} requests, "
            f"throughput {result.throughput_rps:,.0f} req/s, "
            f"backpressure events {result.backpressure_events}"
        )

    print()
    print(
        format_summary_rows(
            summaries,
            columns=("mean", "median", "p95", "p99", "p99.9"),
            title="Latency profile (ms) per replica-selection strategy",
        )
    )
    print()
    print(
        "Expected shape (paper, Figure 14): the oracle (ORA) is the lower bound, "
        "C3 tracks it closely, and LOR / rate-limited round-robin trail behind, "
        "especially in the tail."
    )


if __name__ == "__main__":
    main()
