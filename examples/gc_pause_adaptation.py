#!/usr/bin/env python3
"""How C3 reacts when a replica suddenly degrades (GC pause / compaction).

The scenario behind Figure 13: a small cluster serves a steady read workload
while one tracked node is artificially slowed down three times.  The script
shows (a) how much traffic each strategy keeps sending to the degraded node
during the episodes and (b) the tail latency each strategy achieves, using
the C3 coordinators' own rate-control traces.

Run with::

    python examples/gc_pause_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.cluster import CassandraCluster, ClusterConfig
from repro.core import C3Config


def run_with_degraded_node(strategy: str, seed: int = 21) -> dict:
    duration_ms = 3_000.0
    config = ClusterConfig(
        num_nodes=7,
        num_generators=80,
        duration_ms=duration_ms,
        strategy=strategy,
        c3_config=C3Config(initial_rate=3.0, rate_min_utilisation=0.15).with_clients(7),
        record_rate_history=(strategy == "C3"),
        compaction_enabled=False,
        gc_enabled=False,
        seed=seed,
    )
    cluster = CassandraCluster(config)
    tracked = cluster.node_ids[-1]
    tracked_node = cluster.nodes[tracked]

    # Three degradation episodes, like the paper's tc-based latency inflation.
    episodes = [(0.30, 0.45), (0.55, 0.60), (0.70, 0.75)]
    for start, end in episodes:
        cluster.loop.schedule_at(duration_ms * start, tracked_node.set_slowdown, 6.0)
        cluster.loop.schedule_at(duration_ms * end, tracked_node.clear_slowdown)

    result = cluster.run()
    episode_windows = [
        (int(duration_ms * start // 100), int(duration_ms * end // 100)) for start, end in episodes
    ]
    series = result.server_load_series.get(tracked, np.zeros(0, dtype=int))
    in_episode = np.concatenate(
        [series[a : b + 1] for a, b in episode_windows if b < len(series)]
    ) if len(series) else np.zeros(0)
    outside = np.array(
        [v for i, v in enumerate(series) if not any(a <= i <= b for a, b in episode_windows)]
    )
    return {
        "strategy": strategy,
        "p99_ms": result.read_summary.p99,
        "p999_ms": result.read_summary.p999,
        "throughput_ops": result.throughput_rps,
        "tracked_load_normal": float(outside.mean()) if outside.size else 0.0,
        "tracked_load_degraded": float(in_episode.mean()) if in_episode.size else 0.0,
        "backpressure_events": result.backpressure_events,
    }


def main() -> None:
    rows = []
    for strategy in ("C3", "DS", "LOR"):
        stats = run_with_degraded_node(strategy)
        rows.append(
            [
                stats["strategy"],
                stats["tracked_load_normal"],
                stats["tracked_load_degraded"],
                stats["p99_ms"],
                stats["p999_ms"],
                stats["throughput_ops"],
                stats["backpressure_events"],
            ]
        )
    print(
        format_table(
            [
                "strategy",
                "tracked-node load (normal, req/100ms)",
                "tracked-node load (degraded)",
                "p99 (ms)",
                "p99.9 (ms)",
                "throughput (ops/s)",
                "backpressure",
            ],
            rows,
            title="Reaction to three degradation episodes on one node (Figure 13 scenario)",
        )
    )
    print()
    print(
        "Expected shape: C3 sheds load from the degraded node during each episode "
        "(lower degraded-window load) and keeps the tail latency lower than DS/LOR, "
        "with its rate controllers applying backpressure when the node recovers."
    )


if __name__ == "__main__":
    main()
