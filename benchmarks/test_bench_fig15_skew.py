"""Benchmark regenerating Figure 15 — p99 under heavy client demand skews."""


def test_bench_fig15_demand_skew(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig15",
        strategies=("ORA", "C3", "LOR", "RR"),
        skews=(0.2, 0.5),
        intervals_ms=(500.0,),
        num_clients=40,
        num_servers=10,
        num_requests=15_000,
        seeds=(0,),
    )
    data = result.data
    for skew in (0.2, 0.5):
        # Paper shape: regardless of the demand skew, C3 outperforms LOR and RR.
        assert data[(skew, 500.0, "C3")] < data[(skew, 500.0, "LOR")]
        assert data[(skew, 500.0, "C3")] < data[(skew, 500.0, "RR")]
