"""Micro-benchmarks of the workload-trio draws and the C3 scheduler hot path.

PR 8's kernel speedups rest on two component-level optimizations: the
``rng="block"`` regime (block-drawn client/group/coin/gap variates replacing
four scalar Generator calls per arrival) and the dense
:class:`~repro.core.scoring.ReplicaScorer` arrays behind
``C3Scheduler.submit``/``on_response``.  These benchmarks pin each component
in isolation so a regression is attributable before it shows up (diluted) in
the whole-kernel benchmarks, and so the block regime's per-draw advantage
(measured ~5–6x over the scalar trio) is itself gated via
``BENCH_baseline.json``.
"""

import numpy as np

from repro.core.config import C3Config
from repro.core.feedback import ServerFeedback
from repro.core.scheduler import C3Scheduler
from repro.simulator.workload import BlockDraws

#: Arrivals simulated per round — enough to clear the regression gate's
#: 50 ms floor even on the fast block path.
N_DRAWS = 200_000

#: submit/on_response pairs per round for the scheduler-direct benchmark.
N_OPS = 30_000

#: Overlapping replica groups of 3 over 9 servers (RF-3 style routing).
GROUPS = [tuple(range(start, start + 3)) for start in range(7)]


def _drive_trio_v1(n: int) -> float:
    """The scalar per-arrival draws of ``rng="v1"``: client, group, coin, gap."""
    rng = np.random.default_rng(7)
    acc = 0.0
    for _ in range(n):
        rng.integers(12)
        rng.integers(10)
        rng.random()
        acc += float(rng.exponential(0.1))
    return acc


def _drive_trio_block(n: int) -> float:
    """The same four variates served from :class:`BlockDraws` blocks."""
    blocks = BlockDraws(np.random.default_rng(7), 12, None, 10)
    next_client, next_group = blocks.next_client, blocks.next_group
    next_coin, next_gap = blocks.next_coin, blocks.next_gap
    acc = 0.0
    for _ in range(n):
        next_client()
        next_group()
        next_coin()
        acc += next_gap() * 0.1
    return acc


def test_bench_workload_trio_v1(benchmark):
    acc = benchmark.pedantic(lambda: _drive_trio_v1(N_DRAWS), rounds=3, iterations=1)
    benchmark.extra_info["rng"] = "v1"
    benchmark.extra_info["draws"] = N_DRAWS
    assert acc > 0


def test_bench_workload_trio_block(benchmark):
    acc = benchmark.pedantic(lambda: _drive_trio_block(N_DRAWS), rounds=3, iterations=1)
    benchmark.extra_info["rng"] = "block"
    benchmark.extra_info["draws"] = N_DRAWS
    assert acc > 0


def _drive_scheduler(n_ops: int) -> int:
    """submit/on_response cycles straight into the C3 scheduler.

    This is the path the object engine's C3 selector delegates to and the
    batched kernel inlines (against the scorer's dense arrays), measured
    without the selector-wrapper overhead the selector-hotpath benchmark
    includes.  The high initial rate keeps the loop on scoring + EWMA
    accounting rather than backpressure parking.
    """
    scheduler = C3Scheduler(C3Config(initial_rate=100.0).with_clients(100))
    feedback = [
        ServerFeedback(queue_size=float(q), service_time=1.0 + 0.25 * q) for q in range(8)
    ]
    now = 0.0
    sent = 0
    for i in range(n_ops):
        decision = scheduler.submit(i, GROUPS[i % len(GROUPS)], now)
        now += 0.01
        if not decision.backpressured:
            sent += 1
            scheduler.on_response(decision.server_id, feedback[i % 8], 2.0 + (i % 5) * 0.5, now)
    return sent


def test_bench_c3_submit_on_response(benchmark):
    sent = benchmark.pedantic(lambda: _drive_scheduler(N_OPS), rounds=3, iterations=1)
    benchmark.extra_info["ops"] = N_OPS
    benchmark.extra_info["sent"] = sent
    assert sent > 0
