"""Benchmark: scale-mode (streaming) metrics at a million completions.

Drives the streaming collector through one million request completions —
the scenario the scale-mode subsystem exists for — and records wall time,
histogram footprint, and the deterministic digest.  A second benchmark
pins the vectorized ``WindowedCounter`` dense-series materialization that
``SimulationResult`` building depends on at large horizons.
"""

from __future__ import annotations

import numpy as np

from repro.simulator import SimulationConfig, WindowedCounter, run_simulation
from repro.simulator.metrics import MetricsCollector
from repro.simulator.request import Request

N_COMPLETIONS = 1_000_000


def _drive_collector() -> MetricsCollector:
    collector = MetricsCollector(metrics_mode="streaming")
    rng = np.random.default_rng(1)
    latencies = rng.exponential(scale=8.0, size=N_COMPLETIONS) + 0.25
    request = Request(request_id=0, client_id=0, replica_group=(0,), created_at=0.0, server_id=0)
    for i, latency in enumerate(latencies.tolist()):
        request.completed_at = latency
        collector.on_complete(request, now=float(i % 1000))
    return collector


def test_bench_streaming_collector_million_completions(benchmark):
    collector = benchmark.pedantic(_drive_collector, rounds=1, iterations=1)
    assert collector.completed_requests == N_COMPLETIONS
    assert collector._latencies is None  # fixed memory: no per-request list
    histogram = collector.result(duration_ms=1_000.0).latency_histogram
    assert histogram is not None and histogram.count == N_COMPLETIONS
    benchmark.extra_info["completions"] = N_COMPLETIONS
    benchmark.extra_info["buckets"] = histogram.bucket_count
    benchmark.extra_info["p999_ms"] = round(histogram.quantile(0.999), 3)
    print(
        f"\n{N_COMPLETIONS} completions -> {histogram.bucket_count} buckets, "
        f"p99.9 = {histogram.quantile(0.999):.2f} ms"
    )


def test_bench_streaming_vs_exact_simulation(benchmark):
    """One real (small) simulation in each mode: streaming must not slow the run."""
    config = SimulationConfig(
        num_servers=9, num_clients=12, num_requests=3_000, utilization=0.6, seed=0
    )
    exact = run_simulation(config)
    streaming = benchmark.pedantic(
        lambda: run_simulation(config.copy(metrics_mode="streaming")), rounds=1, iterations=1
    )
    assert streaming.completed_requests == exact.completed_requests
    benchmark.extra_info["completed"] = streaming.completed_requests
    benchmark.extra_info["buckets"] = streaming.latency_histogram.bucket_count


def test_bench_windowed_counter_materialization(benchmark):
    """Dense-series scatter over a long, sparse horizon (the digest hot path)."""
    counter = WindowedCounter(window_ms=100.0)
    rng = np.random.default_rng(3)
    # 50k events scattered over a 10-minute horizon: 6000 windows, sparse.
    for t in rng.uniform(0.0, 600_000.0, size=50_000).tolist():
        counter.record(t)

    def materialize():
        return counter.counts(horizon_ms=600_000.0)

    dense = benchmark.pedantic(materialize, rounds=3, iterations=5)
    assert int(dense.sum()) == 50_000
    benchmark.extra_info["windows"] = int(dense.size)
