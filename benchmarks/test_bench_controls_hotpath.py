"""Micro-benchmarks of the control-plane hot paths.

The controls run inside the simulator's innermost loops: the failure
detector is consulted on every submit/dispatch and hears a heartbeat on
every response, the hedging policy records every read latency and is asked
for a threshold on every dispatched read, and the CUBIC controller updates
on every response.  These benchmarks measure those per-event costs in
isolation and feed the same ``BENCH_baseline.json`` regression gate as the
rest of the suite.
"""

from repro.controls import ControlSpec

#: Events per round — sized so every benchmark clears the regression
#: gate's 50 ms wall-clock floor.
N_OPS = 120_000

SERVERS = tuple(range(9))


def test_bench_phi_detector_heartbeat_and_query(benchmark):
    def run():
        detector = ControlSpec.parse("phi").build()
        now = 0.0
        alive = 0
        for i in range(N_OPS):
            now += 0.05
            sid = SERVERS[i % len(SERVERS)]
            detector.heartbeat(sid, now)
            if detector.is_alive(sid, now):
                alive += 1
        return alive

    alive = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = N_OPS
    assert alive == N_OPS  # steady heartbeats: nobody is ever suspected


def test_bench_hedging_record_and_threshold(benchmark):
    # One threshold query per recorded latency — the worst-case ratio a
    # hedging client produces (every read both records and arms a timer).
    ops = N_OPS // 20  # np.percentile over the window dominates

    def run():
        policy = ControlSpec.parse("hedge:min_samples=10,history=200").build()
        armed = 0
        for i in range(ops):
            policy.record(1.0 + (i % 7) * 0.5)
            if policy.threshold_ms() is not None:
                armed += 1
        return armed

    armed = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = ops
    assert armed == ops - 9  # everything after warm-up arms


def test_bench_cubic_controller_update_loop(benchmark):
    def run():
        controller = ControlSpec.parse("cubic:initial_rate=50,rate_delta_ms=5").build()
        now = 0.0
        for _ in range(N_OPS):
            now += 0.02
            controller.try_acquire(now)
            controller.on_response(now)
        return controller.increases + controller.decreases

    adjustments = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = N_OPS
    assert adjustments > 0
