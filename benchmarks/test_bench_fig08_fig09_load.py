"""Benchmarks regenerating Figures 8 and 9 — load conditioning and load-vs-time."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=5)


def test_bench_fig08_load_conditioning(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig08", strategies=("C3", "DS"), mixes=("read_heavy",), scale=SCALE
    )
    rows = {(row[0], row[1]): row for row in result.rows}
    c3 = rows[("read_heavy", "C3")]
    ds = rows[("read_heavy", "DS")]
    # Paper shape: the hottest node under C3 has a smaller p99-minus-median
    # spread in its per-window load than under DS.
    assert c3[5] <= ds[5]


def test_bench_fig09_load_timeseries(run_experiment_benchmark):
    result = run_experiment_benchmark("fig09", strategies=("C3", "DS"), scale=SCALE)
    rows = {row[0]: row for row in result.rows}
    # Paper shape: C3's per-node load profile is smoother (lower Fano factor).
    assert rows["C3"][5] < rows["DS"][5]
