"""Benchmarks for the design-choice ablations listed in DESIGN.md §5."""


def test_bench_ablation_scoring_exponent(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "ablation_exponent", exponents=(1.0, 2.0, 3.0, 4.0), num_clients=90
    )
    assert len(result.rows) == 4
    assert all(row[4] > 0 for row in result.rows)  # p99.9 measured for every b


def test_bench_ablation_concurrency_weight(run_experiment_benchmark):
    result = run_experiment_benchmark("ablation_concurrency", num_clients=90)
    assert len(result.rows) == 3


def test_bench_ablation_rate_control(run_experiment_benchmark):
    result = run_experiment_benchmark("ablation_rate_control", num_clients=90)
    assert len(result.rows) == 2
