"""Benchmark regenerating the §5 speculative-retry comparison."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=8)


def test_bench_speculative_retries(run_experiment_benchmark):
    result = run_experiment_benchmark("speculative", retry_percentile=99.0, scale=SCALE)
    rows = {row[0]: row for row in result.rows}
    # Paper shape: speculation on top of DS does not rescue the tail (it
    # degraded latencies by up to 5x in the paper), while C3 needs no
    # reissues to beat both DS configurations at the 99th percentile.
    assert rows["C3"][3] < rows["DS"][3]
    assert rows["DS+spec"][3] >= rows["C3"][3]
    # Speculative retries actually fired in the DS+spec configuration.
    assert rows["DS+spec"][5] > 0
