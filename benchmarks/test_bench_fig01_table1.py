"""Benchmarks regenerating Figure 1 (motivating example) and Table 1."""


def test_bench_fig01_motivating_example(run_experiment_benchmark):
    result = run_experiment_benchmark("fig01")
    assert result.data["ideal_latency"] < result.data["lor_latency"]


def test_bench_table1_survey(run_experiment_benchmark):
    result = run_experiment_benchmark("table1")
    assert len(result.rows) == 4
