"""Benchmarks regenerating Figures 4 and 5 (scoring and rate-control curves)."""


def test_bench_fig04_scoring_functions(run_experiment_benchmark):
    result = run_experiment_benchmark("fig04")
    rows = result.row_dicts()
    linear = next(r for r in rows if "linear" in r["scoring function"])
    cubic = next(r for r in rows if "cubic" in r["scoring function"])
    # The cubic score tolerates far less queue imbalance than the linear one.
    assert cubic["imbalance ratio"] < linear["imbalance ratio"]


def test_bench_fig05_cubic_growth_curve(run_experiment_benchmark):
    result = run_experiment_benchmark("fig05")
    regions = [row[2] for row in result.rows]
    assert regions[0] == "low-rate (steep growth)"
    assert regions[-1] == "optimistic probing"
