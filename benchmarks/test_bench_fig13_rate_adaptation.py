"""Benchmark regenerating Figure 13 — sending-rate adaptation trace."""


def test_bench_fig13_rate_adaptation(run_experiment_benchmark):
    result = run_experiment_benchmark("fig13")
    observer_rows = [row for row in result.rows if str(row[0]).startswith("coordinator")]
    # Both observing coordinators adapted their rates during the run.
    assert all(row[1] > 0 for row in observer_rows)          # increases happened
    assert any(row[2] > 0 for row in observer_rows)          # decreases happened
    # At least one coordinator decreased its rate around the degradation episodes.
    assert any(row[3] > 0 for row in observer_rows)
