#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/check_regressions.py BASELINE.json CURRENT.json \
        [--tolerance 0.30]

Fails (exit 1) when any benchmark present in both files is slower than
``baseline * (1 + tolerance)`` on its mean time, or when a baseline
benchmark is missing from the current run — deleting a benchmark in the
same PR that slowed it down must not turn the gate green; regenerate the
baseline (from the CI run's ``BENCH_ci.json`` artifact, so it reflects
the runner class that gates future runs) in the same commit instead.
Benchmarks new in the current run are reported but never fail.  The
tolerance is deliberately generous (30 % by default): CI runners and
developer machines differ, and this gate exists to catch step-change
regressions, not noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_benchmarks(path: Path) -> dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from a benchmark JSON file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        means[name] = float(bench["stats"]["mean"])
    return means


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed baseline benchmark JSON")
    parser.add_argument("current", type=Path, help="benchmark JSON from this run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed slowdown as a fraction of baseline (default: 0.30 = 30%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="skip benchmarks whose baseline mean is below this (sub-50ms "
        "wall-clock gates measure noise, not regressions)",
    )
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"error: no benchmarks in current run {args.current}", file=sys.stderr)
        return 2

    regressions: list[str] = []
    missing: list[str] = []
    checked = 0
    for name in sorted(baseline):
        base_mean = baseline[name]
        if name not in current:
            print(f"{'MISSING':>10}  {'':>7}  {base_mean:9.4f}s baseline has no current run  {name}")
            missing.append(name)
            continue
        if base_mean < args.min_seconds:
            print(f"{'skipped':>10}  {'':>7}  {base_mean:9.4f}s baseline below floor  {name}")
            continue
        mean = current[name]
        checked += 1
        ratio = mean / base_mean if base_mean > 0 else float("inf")
        status = "ok"
        if mean > base_mean * (1.0 + args.tolerance):
            status = "REGRESSED"
            regressions.append(f"{name}: {base_mean:.4f}s -> {mean:.4f}s ({ratio:.2f}x)")
        print(f"{status:>10}  {ratio:5.2f}x  {base_mean:9.4f}s -> {mean:9.4f}s  {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{'new':>10}  {'':>7}  {current[name]:9.4f}s  {name} (not in baseline)")

    failed = False
    if missing:
        print(
            f"\n{len(missing)} baseline benchmark(s) missing from the current run "
            "(deleted or renamed?); update benchmarks/BENCH_baseline.json in the "
            "same commit:",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        failed = True
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed by more than "
            f"{args.tolerance:.0%} vs {args.baseline}:",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"\nno benchmark regressed by more than {args.tolerance:.0%} ({checked} checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
