"""Benchmarks regenerating Figure 12 (SSDs) and the skewed-record-size study."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=7)


def test_bench_fig12_ssd(run_experiment_benchmark):
    result = run_experiment_benchmark("fig12", strategies=("C3", "DS"), generators=105, scale=SCALE)
    rows = {row[0]: row for row in result.rows}
    # Paper shape: even on SSDs C3 improves the upper percentiles and throughput.
    assert rows["C3"][4] <= rows["DS"][4]          # p99
    assert rows["C3"][7] > rows["DS"][7] * 0.95    # throughput


def test_bench_skewed_record_sizes(run_experiment_benchmark):
    result = run_experiment_benchmark("skewed_records", strategies=("C3", "DS"), scale=SCALE)
    rows = {row[0]: row for row in result.rows}
    # Paper shape: C3 keeps its p99 advantage with Zipf-skewed record sizes.
    assert rows["C3"][4] < rows["DS"][4]
