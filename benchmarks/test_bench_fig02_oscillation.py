"""Benchmark regenerating Figure 2 — DS load oscillations on the hottest node."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=2)


def test_bench_fig02_load_oscillations(run_experiment_benchmark):
    result = run_experiment_benchmark("fig02", strategies=("DS", "C3"), scale=SCALE)
    rows = {row[0]: row for row in result.rows}
    # DS shows larger swings (oscillation score) than C3 on the hottest node.
    assert rows["DS"][5] > rows["C3"][5] * 0.8
