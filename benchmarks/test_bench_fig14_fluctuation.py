"""Benchmark regenerating Figure 14 — p99 vs service-time fluctuation interval."""

INTERVALS = (10.0, 100.0, 500.0)


def test_bench_fig14_fluctuation_sweep(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig14",
        strategies=("ORA", "C3", "LOR", "RR"),
        intervals_ms=INTERVALS,
        utilizations=(0.7, 0.45),
        client_counts=(40,),
        num_servers=10,
        num_requests=15_000,
        seeds=(0,),
    )
    data = result.data
    # Paper shape at the longest fluctuation interval and high utilisation:
    # the oracle is best, C3 tracks it, LOR and RR trail behind.
    key = lambda strategy: data[(0.7, 40, 500.0, strategy)]["p99"]
    assert key("C3") < key("LOR")
    assert key("C3") < key("RR")
    assert key("ORA") <= key("C3")
    # At the shortest interval (stale feedback) the schemes converge: C3 is
    # within a factor ~2 of LOR rather than far ahead.
    short = lambda strategy: data[(0.7, 40, 10.0, strategy)]["p99"]
    assert short("C3") < short("LOR") * 2.0
