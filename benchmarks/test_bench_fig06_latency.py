"""Benchmark regenerating Figure 6 — latency profile per workload, C3 vs DS."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=1)


def test_bench_fig06_latency_profile(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig06",
        strategies=("C3", "DS"),
        mixes=("read_heavy", "read_only", "update_heavy"),
        scale=SCALE,
    )
    rows = {(row[0], row[1]): row for row in result.rows}
    for mix in ("read_heavy", "read_only", "update_heavy"):
        c3_p99 = rows[(mix, "C3")][5]
        ds_p99 = rows[(mix, "DS")][5]
        # Paper shape: C3 improves the tail for every workload mix.
        assert c3_p99 < ds_p99
        # And does not sacrifice the median (allowing a small tolerance).
        assert rows[(mix, "C3")][3] <= rows[(mix, "DS")][3] * 1.15
