"""Benchmark: process-pool sweep execution vs serial on the same grid.

Runs an identical 3-config × 4-seed grid (the acceptance-criterion shape)
through the sweep runner twice — serially in-process, then through the
process pool — and records both wall-clock times.  On a multi-core machine
the pooled run must not lose to serial; on a single core the pool can only
add process overhead, so the speedup assertion is skipped there (the
determinism suite separately guarantees both modes produce byte-identical
results).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner import SweepRunner, SweepSpec, seed_range
from repro.simulator import SimulationConfig

#: 3 grid points × 4 seeds = 12 trials, each a real (small) simulation.
SPEC = SweepSpec(
    base=SimulationConfig(num_servers=9, num_clients=12, num_requests=1_200),
    grid={"strategy": ("C3", "LOR", "RR")},
    seeds=seed_range(4),
)

_CPUS = os.cpu_count() or 1


def test_bench_sweep_parallel_vs_serial(benchmark):
    started = time.perf_counter()
    serial_result = SweepRunner(parallel=False).run(SPEC)
    serial_s = time.perf_counter() - started

    pooled_result = benchmark.pedantic(
        lambda: SweepRunner(max_workers=min(4, max(2, _CPUS))).run(SPEC),
        rounds=1,
        iterations=1,
    )
    pooled_s = benchmark.stats.stats.mean

    assert serial_result.trial_digests() == pooled_result.trial_digests()
    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    benchmark.extra_info["grid"] = SPEC.describe()
    benchmark.extra_info["cpus"] = _CPUS
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(pooled_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(f"\nsweep {SPEC.describe()}: serial {serial_s:.2f}s, "
          f"pool {pooled_s:.2f}s, speedup {speedup:.2f}x on {_CPUS} CPU(s)")

    if _CPUS < 2:
        pytest.skip("single-CPU machine: a process pool cannot beat serial execution")
    # Multi-core: parallel wall-clock must beat serial (10% slack for pool
    # startup noise on small grids).
    assert pooled_s < serial_s * 1.1


def test_bench_sweep_cached_rerun_is_instant(benchmark, tmp_path):
    runner = SweepRunner(parallel=False, cache_dir=tmp_path)
    first = runner.run(SPEC)
    assert first.executed == SPEC.num_trials

    rerun = benchmark.pedantic(lambda: runner.run(SPEC), rounds=1, iterations=1)
    assert rerun.executed == 0
    assert rerun.cached == SPEC.num_trials
    assert rerun.trial_digests() == first.trial_digests()
    benchmark.extra_info["first_run_s"] = round(first.wall_time_s, 3)
    benchmark.extra_info["cached_rerun_s"] = round(rerun.wall_time_s, 3)
    # Serving 12 trials from cache must be at least 10x faster than running them.
    assert rerun.wall_time_s < first.wall_time_s / 10
