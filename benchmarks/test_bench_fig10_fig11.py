"""Benchmarks regenerating Figures 10 and 11 — higher load and dynamic workloads."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=6)


def test_bench_fig10_higher_utilisation(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig10", strategies=("C3", "DS"), base_generators=60, load_increase=0.75, scale=SCALE
    )
    degradation = {(row[0], row[1]): row[4] for row in result.rows}
    # Paper shape: DS's p99 degrades at least as badly as C3's under +75% load.
    assert degradation[("DS", "p99")] >= degradation[("C3", "p99")] - 25.0


def test_bench_fig11_dynamic_workload(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig11",
        strategies=("C3", "DS"),
        read_generators=40,
        joining_generators=20,
        scale=SCALE,
    )
    rows = {row[0]: row for row in result.rows}
    for strategy in ("C3", "DS"):
        # Both systems serve the read-heavy generators before and after the join.
        assert rows[strategy][1] > 0 and rows[strategy][2] > 0
    # Paper shape: C3 degrades gracefully — its worst smoothed latency after
    # the join stays below DS's.
    assert rows["C3"][5] <= rows["DS"][5] * 1.25
