"""Micro-benchmarks of the selector ``submit``/``on_response`` hot paths.

Unlike the experiment benchmarks (whole simulated figures), these measure
the per-request cost of the selector API itself — the innermost loop of
every simulation — for the paper's strategy (C3) and the two cheapest
baselines (LOR, P2C).  They feed the same ``BENCH_baseline.json``
regression gate as the rest of the suite, so a slowdown in the scoring or
accounting path fails CI even if no figure benchmark happens to notice.
"""

import numpy as np

from repro.core.config import C3Config
from repro.core.feedback import ServerFeedback
from repro.strategies import make_selector

#: submit/on_response pairs per round — enough to clear the regression
#: gate's 50 ms floor on every strategy measured.
N_OPS = 30_000

#: Overlapping replica groups of 3 over 9 servers (RF-3 style routing).
GROUPS = [tuple(range(start, start + 3)) for start in range(7)]


def _drive(selector, n_ops=N_OPS):
    """Run ``n_ops`` submit/response cycles through one selector."""
    feedback = [
        ServerFeedback(queue_size=float(q), service_time=1.0 + 0.25 * q) for q in range(8)
    ]
    now = 0.0
    sent = 0
    for i in range(n_ops):
        decision = selector.submit(i, GROUPS[i % len(GROUPS)], now)
        now += 0.01
        if decision.sent:
            sent += 1
            selector.on_response(decision.server_id, feedback[i % 8], 2.0 + (i % 5) * 0.5, now)
    return sent


def _bench_selector(benchmark, name, **kwargs):
    def run():
        selector = make_selector(name, rng=np.random.default_rng(7), **kwargs)
        return _drive(selector)

    sent = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = name
    benchmark.extra_info["ops"] = N_OPS
    benchmark.extra_info["sent"] = sent
    assert sent > 0


def test_bench_selector_hotpath_c3(benchmark):
    # High initial rate so the loop measures scoring + accounting, not
    # backpressure parking (the rate controller still runs every window).
    _bench_selector(benchmark, "C3", config=C3Config(initial_rate=100.0).with_clients(100))


def test_bench_selector_hotpath_lor(benchmark):
    _bench_selector(benchmark, "LOR")


def test_bench_selector_hotpath_p2c(benchmark):
    _bench_selector(benchmark, "P2C")
