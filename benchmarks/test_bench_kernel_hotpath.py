"""Benchmarks of the batched event-loop kernel against the object path.

The batched kernel is the flat simulator's hot-path engine: typed heap
entries instead of Event objects, arena request state instead of Request
instances, inlined per-event handlers, and dense per-server/per-client
accounting.  Exact-mode results are digest-identical to the object path
(``tests/simulator/test_kernel_equivalence.py`` pins that), so the only
thing left to regress is speed — which these benchmarks gate two ways:

* the batched wall-clock itself feeds the ``BENCH_baseline.json``
  regression gate like every other benchmark;
* the object/batched speedup ratio is measured interleaved (best-of-N of
  each, alternating, so box-load drift hits both paths equally) and
  asserted against a conservative floor.  Measured on the CI box: ~3.3x
  for LOR, ~2.4x for P2C/RAND, ~1.4x for C3/RR, where the shared
  irreducible costs (workload RNG draws, selector scoring) bound the
  ceiling.  The floor is set below the noise band of the weakest measured
  run, not at the headline number.
"""

import time

from repro.simulator.simulation import ReplicaSelectionSimulation, SimulationConfig

#: Hot-path configuration: the default read-heavy workload at default
#: utilization/read-repair, sized so one run comfortably clears the
#: regression gate's 50 ms floor on both kernels.
N_REQUESTS = 20_000
BASE = dict(num_servers=10, num_clients=12, num_requests=N_REQUESTS, seed=7)


def _run(kernel: str, strategy: str) -> str:
    config = SimulationConfig(kernel=kernel, strategy=strategy, **BASE)
    return ReplicaSelectionSimulation(config).run().digest()


def _timed(kernel: str, strategy: str) -> tuple[float, str]:
    start = time.perf_counter()
    digest = _run(kernel, strategy)
    return time.perf_counter() - start, digest


def _speedup(strategy: str, rounds: int = 3) -> tuple[float, str, str]:
    """Interleaved best-of-``rounds`` object/batched ratio + both digests."""
    best_object = best_batched = float("inf")
    for _ in range(rounds):
        elapsed, object_digest = _timed("object", strategy)
        best_object = min(best_object, elapsed)
        elapsed, batched_digest = _timed("batched", strategy)
        best_batched = min(best_batched, elapsed)
    return best_object / best_batched, object_digest, batched_digest


def test_bench_kernel_hotpath_lor_batched(benchmark):
    """Batched-kernel wall clock on the hottest configuration (LOR)."""
    digest = benchmark.pedantic(lambda: _run("batched", "LOR"), rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = "LOR"
    benchmark.extra_info["requests"] = N_REQUESTS
    assert digest


def test_bench_kernel_hotpath_c3_batched(benchmark):
    """Batched-kernel wall clock with the paper's strategy (C3)."""
    digest = benchmark.pedantic(lambda: _run("batched", "C3"), rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = "C3"
    benchmark.extra_info["requests"] = N_REQUESTS
    assert digest


def test_bench_kernel_speedup_and_equivalence(benchmark):
    """The batched kernel must stay several times faster than the object path.

    The assertion floor (2.5x on LOR) sits under the measured 2.9–3.3x so
    CI noise cannot flake it, while still catching any change that erodes
    the batched kernel's advantage.  Digest equality is re-asserted here so
    the speedup can never silently come from diverging behavior.
    """

    def measure():
        ratio, object_digest, batched_digest = _speedup("LOR")
        assert object_digest == batched_digest
        return ratio

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = "LOR"
    benchmark.extra_info["speedup"] = round(ratio, 2)
    assert ratio >= 2.5
