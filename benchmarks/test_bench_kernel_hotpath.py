"""Benchmarks of the batched event-loop kernel against the object path.

The batched kernel is the flat simulator's hot-path engine: typed heap
entries instead of Event objects, arena request state instead of Request
instances, inlined per-event handlers (including the C3 submit/response
path against the scorer's dense arrays), monotone FIFO lanes for the
constant-latency ENQUEUE/RESPONSE event kinds, and dense per-server/
per-client accounting.  Exact-mode results are digest-identical to the
object path per RNG regime (``tests/simulator/test_kernel_equivalence.py``
pins ``rng="v1"``, ``tests/simulator/test_rng_block.py`` pins
``rng="block"``), so the only thing left to regress is speed — which
these benchmarks gate two ways:

* the batched wall-clock itself feeds the ``BENCH_baseline.json``
  regression gate like every other benchmark;
* the object/batched speedup ratio is measured interleaved (best-of-N of
  each, alternating, so box-load drift hits both paths equally) and
  asserted against a conservative floor.  Measured on the CI box:
  ~3.1x for LOR and ~2.8x for C3 under ``rng="v1"``, rising to ~4.0x
  (LOR) and ~3.2x (C3) under ``rng="block"``, where block-drawn variates
  remove the per-arrival Generator-call overhead that both kernels
  otherwise share.  The floors are set below the noise band of the
  weakest measured run, not at the headline numbers; the issue's
  aspirational 8x(LOR)/10x targets remain out of reach while the
  irreducible per-request selector/service arithmetic stays in Python
  (see ROADMAP item 1 for the remaining gap).
"""

import time

from repro.simulator.simulation import ReplicaSelectionSimulation, SimulationConfig

#: Hot-path configuration: the default read-heavy workload at default
#: utilization/read-repair, sized so one run comfortably clears the
#: regression gate's 50 ms floor on both kernels.
N_REQUESTS = 20_000
BASE = dict(num_servers=10, num_clients=12, num_requests=N_REQUESTS, seed=7)


def _run(kernel: str, strategy: str, rng: str = "v1") -> str:
    config = SimulationConfig(kernel=kernel, strategy=strategy, rng=rng, **BASE)
    return ReplicaSelectionSimulation(config).run().digest()


def _timed(kernel: str, strategy: str, rng: str) -> tuple[float, str]:
    start = time.perf_counter()
    digest = _run(kernel, strategy, rng)
    return time.perf_counter() - start, digest


def _speedup(strategy: str, rng: str = "v1", rounds: int = 5) -> tuple[float, str, str]:
    """Interleaved best-of-``rounds`` object/batched ratio + both digests."""
    best_object = best_batched = float("inf")
    for _ in range(rounds):
        elapsed, object_digest = _timed("object", strategy, rng)
        best_object = min(best_object, elapsed)
        elapsed, batched_digest = _timed("batched", strategy, rng)
        best_batched = min(best_batched, elapsed)
    return best_object / best_batched, object_digest, batched_digest


def _gate_speedup(benchmark, strategy: str, rng: str, floor: float, rounds: int = 5) -> None:
    """Shared speedup gate: interleaved measurement + digest equality + floor.

    Digest equality is re-asserted inside every gate so a speedup can never
    silently come from diverging behavior.
    """

    def measure():
        ratio, object_digest, batched_digest = _speedup(strategy, rng, rounds)
        assert object_digest == batched_digest
        return ratio

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["rng"] = rng
    benchmark.extra_info["speedup"] = round(ratio, 2)
    assert ratio >= floor, (
        f"batched kernel speedup for {strategy} under rng={rng!r} fell to "
        f"{ratio:.2f}x (floor {floor}x)"
    )


def test_bench_kernel_hotpath_lor_batched(benchmark):
    """Batched-kernel wall clock on the hottest configuration (LOR)."""
    digest = benchmark.pedantic(lambda: _run("batched", "LOR"), rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = "LOR"
    benchmark.extra_info["requests"] = N_REQUESTS
    assert digest


def test_bench_kernel_hotpath_c3_batched(benchmark):
    """Batched-kernel wall clock with the paper's strategy (C3)."""
    digest = benchmark.pedantic(lambda: _run("batched", "C3"), rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = "C3"
    benchmark.extra_info["requests"] = N_REQUESTS
    assert digest


def test_bench_kernel_hotpath_c3_batched_block(benchmark):
    """Batched-kernel wall clock for C3 under the block RNG regime."""
    digest = benchmark.pedantic(
        lambda: _run("batched", "C3", rng="block"), rounds=3, iterations=1
    )
    benchmark.extra_info["strategy"] = "C3"
    benchmark.extra_info["rng"] = "block"
    benchmark.extra_info["requests"] = N_REQUESTS
    assert digest


def test_bench_kernel_speedup_and_equivalence(benchmark):
    """The batched kernel must stay several times faster than the object path.

    The assertion floor (2.5x on LOR, ``rng="v1"``) sits under the measured
    2.9–3.3x so CI noise cannot flake it, while still catching any change
    that erodes the batched kernel's advantage.
    """
    _gate_speedup(benchmark, "LOR", "v1", floor=2.5, rounds=3)


def test_bench_kernel_speedup_c3(benchmark):
    """C3 speedup gate, ``rng="v1"``: floor 2.2x under a measured ~2.8x.

    PR 7 landed C3 at ~1.4x (the scheduler/scorer stack ran as objects);
    inlining submit/response against the dense scorer arrays brought it to
    ~2.8x — comfortably past the issue's >=2.5x-over-PR-7 target.
    """
    _gate_speedup(benchmark, "C3", "v1", floor=2.2)


def test_bench_kernel_speedup_block_lor(benchmark):
    """LOR speedup gate, ``rng="block"``: floor 3.0x under a measured ~4.0x.

    The issue's aspirational 8x is not reachable on this box — the object
    path itself gets faster under block draws (the BlockRNG adapter serves
    its selectors too), so the ratio's ceiling is set by the per-request
    Python arithmetic both kernels share.  The floor is honest, not
    aspirational; ROADMAP item 1 records the remaining gap.
    """
    _gate_speedup(benchmark, "LOR", "block", floor=3.0)


def test_bench_kernel_speedup_block_c3(benchmark):
    """C3 speedup gate, ``rng="block"``: floor 2.4x under a measured ~3.2x."""
    _gate_speedup(benchmark, "C3", "block", floor=2.4)
