"""Benchmark regenerating Figure 7 — read throughput, C3 vs DS."""

from repro.experiments.common import ClusterScale

SCALE = ClusterScale(num_nodes=15, num_generators=60, duration_ms=2_000.0, seed=4)


def test_bench_fig07_throughput(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "fig07",
        strategies=("C3", "DS"),
        mixes=("read_heavy", "update_heavy"),
        scale=SCALE,
    )
    rows = {(row[0], row[1]): row for row in result.rows}
    for mix in ("read_heavy", "update_heavy"):
        # Paper shape: C3 achieves higher throughput than Dynamic Snitching
        # (26–43 % in the paper; we only assert the direction).
        assert rows[(mix, "C3")][2] > rows[(mix, "DS")][2]
