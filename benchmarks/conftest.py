"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one of the paper's tables/figures: it runs
the corresponding experiment once (``benchmark.pedantic`` with a single
round — the experiments are deterministic simulations, not micro-benchmarks),
prints the experiment's report table (run pytest with ``-s`` to see it), and
attaches the headline numbers to ``benchmark.extra_info`` so they are
preserved in the benchmark JSON.
"""

from __future__ import annotations

import pytest

from repro.experiments import registry


@pytest.fixture
def run_experiment_benchmark(benchmark):
    """Run one registered experiment under pytest-benchmark and report it."""

    def runner(experiment_id: str, **kwargs):
        fn = registry.get(experiment_id)
        result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
        print()
        print(result.to_text())
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["title"] = result.title
        benchmark.extra_info["rows"] = [
            [str(cell) for cell in row] for row in result.rows
        ]
        return result

    return runner
