"""Declarative scenario components.

Each component is a frozen dataclass of plain-JSON-able knobs; ``start``
instantiates the corresponding imperative process from
:mod:`repro.scenarios.processes` (or schedules events directly) against a
:class:`~repro.scenarios.base.ScenarioContext`.  Components are the
vocabulary builtin scenarios are written in, and the intended extension
point for new ones: a new workload is a new combination of these (or one new
component), not a new simulator code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import ScenarioComponent, ScenarioContext
from .processes import (
    ArrivalRateSchedule,
    BimodalFluctuation,
    CrashSchedule,
    LatencyInflation,
    TransientSlowdowns,
)

__all__ = [
    "BimodalServiceRates",
    "CrashWindows",
    "GCPauses",
    "HeterogeneousServiceRates",
    "LoadSpike",
    "NetworkDelayChange",
    "SlowServers",
]


@dataclass(frozen=True)
class BimodalServiceRates(ScenarioComponent):
    """The paper's §6 fluctuation model as a component.

    Servers flip between μ and ``rate_multiplier × μ`` every
    ``interval_ms``, independently, with probability ``fast_probability`` of
    the fast mode.
    """

    interval_ms: float = 100.0
    rate_multiplier: float = 3.0
    fast_probability: float = 0.5
    targets: object = "all"

    def start(self, ctx: ScenarioContext) -> None:
        process = BimodalFluctuation(
            loop=ctx.loop,
            servers=ctx.resolve_targets(self.targets),
            interval_ms=self.interval_ms,
            rate_multiplier=self.rate_multiplier,
            fast_probability=self.fast_probability,
            rng=ctx.spawn_rng(),
        )
        object.__setattr__(self, "_process", process)
        process.start()

    def stop(self) -> None:
        getattr(self, "_process").stop()


@dataclass(frozen=True)
class GCPauses(ScenarioComponent):
    """Poisson-arriving GC-pause-like slowdowns on the target servers."""

    mean_interarrival_ms: float = 1000.0
    mean_duration_ms: float = 100.0
    slowdown_factor: float = 4.0
    targets: object = "all"

    def start(self, ctx: ScenarioContext) -> None:
        process = TransientSlowdowns(
            loop=ctx.loop,
            servers=ctx.resolve_targets(self.targets),
            mean_interarrival_ms=self.mean_interarrival_ms,
            mean_duration_ms=self.mean_duration_ms,
            slowdown_factor=self.slowdown_factor,
            rng=ctx.spawn_rng(),
        )
        object.__setattr__(self, "_process", process)
        process.start()

    def stop(self) -> None:
        getattr(self, "_process").stop()


@dataclass(frozen=True)
class SlowServers(ScenarioComponent):
    """Scripted slowdown episodes on the target servers.

    ``end_ms=None`` makes the slowdown permanent — a heterogeneity /
    "one bad node" model rather than an episode.
    """

    factor: float = 4.0
    start_ms: float = 0.0
    end_ms: float | None = None
    targets: object = 0

    def start(self, ctx: ScenarioContext) -> None:
        processes = []
        for server in ctx.resolve_targets(self.targets):
            process = LatencyInflation(
                ctx.loop, server, episodes=[(self.start_ms, self.end_ms, self.factor)]
            )
            process.start()
            processes.append(process)
        object.__setattr__(self, "_processes", processes)

    def stop(self) -> None:
        for process in getattr(self, "_processes"):
            process.stop()


@dataclass(frozen=True)
class CrashWindows(ScenarioComponent):
    """Crash + restart the target servers on a staggered schedule.

    Target server ``k`` (in resolution order) crashes at
    ``first_at_ms + k × stagger_ms`` and restarts ``down_ms`` later
    (``down_ms=None`` = permanent failure).  ``repeats`` > 1 replays the
    window every ``period_ms``.
    """

    first_at_ms: float = 250.0
    down_ms: float | None = 400.0
    stagger_ms: float = 600.0
    repeats: int = 1
    period_ms: float = 2000.0
    targets: object = (0,)

    def start(self, ctx: ScenarioContext) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        windows = []
        for k, server in enumerate(ctx.resolve_targets(self.targets)):
            for r in range(self.repeats):
                start = self.first_at_ms + k * self.stagger_ms + r * self.period_ms
                end = None if self.down_ms is None else start + self.down_ms
                windows.append((server, start, end))
        process = CrashSchedule(ctx.loop, windows)
        object.__setattr__(self, "_process", process)
        process.start()

    def stop(self) -> None:
        getattr(self, "_process").stop()


@dataclass(frozen=True)
class NetworkDelayChange(ScenarioComponent):
    """Swap the network model at ``at_ms`` (latency step and/or jitter).

    With ``jitter_ms=0`` this is a pure latency step
    (:class:`~repro.simulator.network.ConstantLatency`); with a positive
    jitter the model becomes
    :class:`~repro.simulator.network.JitteredLatency` around ``delay_ms``.
    """

    at_ms: float = 0.0
    delay_ms: float = 0.25
    jitter_ms: float = 0.0

    def start(self, ctx: ScenarioContext) -> None:
        from ..simulator.network import ConstantLatency, JitteredLatency

        if self.jitter_ms > 0:
            model = JitteredLatency(self.delay_ms, self.jitter_ms, rng=ctx.spawn_rng())
        else:
            model = ConstantLatency(self.delay_ms)
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_original", ctx.network)
        event = ctx.loop.schedule_at(self.at_ms, ctx.set_network, model)
        object.__setattr__(self, "_event", event)

    def stop(self) -> None:
        # Cancel the pending swap (no-op if it already fired) before
        # restoring, so a stale event cannot re-apply the model afterwards.
        getattr(self, "_event").cancel()
        getattr(self, "_ctx").set_network(getattr(self, "_original"))


@dataclass(frozen=True)
class LoadSpike(ScenarioComponent):
    """Multiply the arrival rate by ``factor`` between ``start_ms`` and ``end_ms``."""

    start_ms: float = 500.0
    end_ms: float | None = 1000.0
    factor: float = 2.0

    def start(self, ctx: ScenarioContext) -> None:
        steps = [(self.start_ms, self.factor)]
        if self.end_ms is not None:
            if self.end_ms <= self.start_ms:
                raise ValueError("end_ms must follow start_ms")
            steps.append((self.end_ms, 1.0))
        process = ArrivalRateSchedule(ctx.loop, ctx.arrival_process, steps)
        object.__setattr__(self, "_process", process)
        process.start()

    def stop(self) -> None:
        getattr(self, "_process").stop()


@dataclass(frozen=True)
class HeterogeneousServiceRates(ScenarioComponent):
    """Static per-server speed diversity.

    Each target server gets a service-*time* multiplier drawn uniformly from
    ``[1/spread, spread]`` (from the scenario RNG stream), modeling a fleet
    of unequal machines rather than time-varying behavior.
    """

    spread: float = 2.0
    targets: object = "all"

    def start(self, ctx: ScenarioContext) -> None:
        if self.spread < 1.0:
            raise ValueError("spread must be >= 1")
        rng = ctx.spawn_rng()
        servers = ctx.resolve_targets(self.targets)
        for server in servers:
            server.set_service_time_multiplier(
                float(rng.uniform(1.0 / self.spread, self.spread)), source=self
            )
        object.__setattr__(self, "_servers", servers)

    def stop(self) -> None:
        for server in getattr(self, "_servers"):
            server.set_service_time_multiplier(1.0, source=self)
