"""Scenario core: the context handed to components and the Scenario container.

A :class:`Scenario` is a named, ordered list of
:class:`ScenarioComponent` instances.  Components are declarative
descriptions ("GC pauses on all servers", "crash server 0 at t=250 ms for
400 ms"); when the simulation starts they attach imperative processes
(:mod:`repro.scenarios.processes`) to the event loop through a
:class:`ScenarioContext`, which exposes the attachment points the simulator
offers — servers, the network model, the workload arrival process, and a
seeded RNG stream.

Determinism: every random decision inside a scenario draws from RNGs spawned
via :meth:`ScenarioContext.spawn_rng`, which derive deterministically from
the simulation seed.  Components spawn their RNGs in declaration order, so a
scenario's randomness is a pure function of ``(config, seed)`` — the golden
digest suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.engine import EventLoop
    from ..simulator.network import NetworkModel
    from ..simulator.server import SimServer
    from ..simulator.simulation import ReplicaSelectionSimulation, SimulationConfig
    from ..simulator.workload import PoissonArrivalProcess

__all__ = ["Scenario", "ScenarioComponent", "ScenarioContext"]


class ScenarioContext:
    """Everything a component may attach to, plus deterministic RNG spawning.

    Parameters
    ----------
    loop:
        The simulation's event loop.
    servers:
        The simulated servers in id order (``servers[i]`` is server ``i``).
    config:
        The resolved :class:`~repro.simulator.SimulationConfig`.
    rng:
        The scenario's root RNG (derived from the simulation seed); use
        :meth:`spawn_rng` rather than drawing from it directly so sibling
        components stay independent.
    simulation:
        The owning simulation, used for network swaps; ``None`` for
        standalone/unit-test contexts (network components then error).
    """

    def __init__(
        self,
        loop: "EventLoop",
        servers: Sequence["SimServer"],
        config: "SimulationConfig",
        rng: np.random.Generator,
        simulation: "ReplicaSelectionSimulation | None" = None,
    ) -> None:
        self.loop = loop
        self.servers = list(servers)
        self.config = config
        self.rng = rng
        self.simulation = simulation

    # ------------------------------------------------------------------ rng
    def spawn_rng(self) -> np.random.Generator:
        """A child RNG derived deterministically from the scenario stream."""
        return np.random.default_rng(self.rng.integers(2**63))

    # -------------------------------------------------------------- targets
    def resolve_targets(self, targets) -> list["SimServer"]:
        """Resolve a declarative target spec into concrete servers.

        Accepted specs:

        * ``"all"`` / ``None`` — every server;
        * an ``int`` — the server at that index (negative indexes allowed);
        * a ``float`` fraction in (0, 1) — the first ``round(f × N)``
          servers (at least one);
        * a sequence of ``int`` indexes.
        """
        servers = self.servers
        if targets is None or targets == "all":
            return list(servers)
        if isinstance(targets, bool):
            raise ValueError("targets must not be a bool")
        if isinstance(targets, int):
            return [self._server_at(targets)]
        if isinstance(targets, float):
            if not 0.0 < targets < 1.0:
                raise ValueError("fractional targets must be in (0, 1)")
            count = max(1, round(targets * len(servers)))
            return list(servers[:count])
        return [self._server_at(int(i)) for i in targets]

    def _server_at(self, index: int) -> "SimServer":
        if not -len(self.servers) <= index < len(self.servers):
            raise ValueError(
                f"scenario target index {index} is out of range for "
                f"{len(self.servers)} servers"
            )
        return self.servers[index]

    # -------------------------------------------------------------- network
    @property
    def network(self) -> "NetworkModel":
        """The currently active network model."""
        if self.simulation is None:
            raise ValueError("this scenario context has no simulation attached")
        return self.simulation.network

    def set_network(self, model: "NetworkModel") -> None:
        """Swap the network model for the simulation and every client."""
        if self.simulation is None:
            raise ValueError("this scenario context has no simulation attached")
        self.simulation.network = model
        for client in self.simulation.clients:
            client.network = model

    # ------------------------------------------------------------- workload
    @property
    def arrival_process(self) -> "PoissonArrivalProcess":
        """The workload generator's arrival process (for load shaping)."""
        if self.simulation is None or self.simulation.generator is None:
            raise ValueError("this scenario context has no workload generator attached")
        return self.simulation.generator.process


class ScenarioComponent:
    """One composable perturbation.

    Subclasses implement :meth:`start` (attach processes / schedule events on
    the context) and may override :meth:`stop` to tear their perturbation
    down so event loops and servers can be reused.
    """

    def start(self, ctx: ScenarioContext) -> None:
        raise NotImplementedError

    def stop(self) -> None:  # pragma: no cover - trivial default
        """Undo the perturbation (default: nothing to undo)."""


@dataclass(frozen=True)
class Scenario:
    """A named, ordered composition of perturbation components.

    Attributes
    ----------
    name:
        Registry name (what ``SimulationConfig.scenario`` refers to).
    components:
        The perturbations, started in order.
    rate_factor:
        Mean service-rate multiplier the scenario induces, used by
        :attr:`SimulationConfig.effective_rate_multiplier` to size the
        arrival rate for a target utilization (1.0 = capacity unchanged).
    description:
        One-line human description for ``c3-repro scenarios``.
    """

    name: str
    components: tuple[ScenarioComponent, ...] = ()
    rate_factor: float = 1.0
    description: str = ""
    _started: list = field(default_factory=list, repr=False, compare=False)

    def start(self, ctx: ScenarioContext) -> None:
        """Start every component against ``ctx`` (in declaration order)."""
        for component in self.components:
            component.start(ctx)
            self._started.append(component)

    def stop(self) -> None:
        """Stop every started component, restoring perturbed state."""
        while self._started:
            self._started.pop().stop()
