"""Imperative perturbation processes — the primitives scenarios are built from.

Each process attaches to the event loop and manipulates simulator objects
(server speed, server liveness, arrival rate) over time.  They are the
engine-level building blocks: the declarative layer
(:mod:`repro.scenarios.components`) instantiates them, and
:mod:`repro.simulator.fluctuation` re-exports the three historical ones
(``BimodalFluctuation``, ``LatencyInflation``, ``TransientSlowdowns``) so the
paper-era API keeps working.

Every process supports ``stop()``: it cancels any events the process still
has scheduled and restores the state it perturbed (service-rate multipliers,
crashed servers, arrival rates).  This closes a reuse bug: a perturbation
event that fires exactly at the simulation horizon — ``run(until=h)`` fires
events *at* ``h`` — leaves servers perturbed, and an :class:`EventLoop` that
is then ``clear()``-ed and reused would run its next scenario against
degraded servers.  ``stop()`` is the symmetric teardown that makes reuse
safe; the fluctuation regression suite pins this behavior.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..simulator.engine import Event, EventLoop
    from ..simulator.server import SimServer
    from ..simulator.workload import PoissonArrivalProcess

__all__ = [
    "ArrivalRateSchedule",
    "BimodalFluctuation",
    "CrashSchedule",
    "LatencyInflation",
    "TransientSlowdowns",
]


class BimodalFluctuation:
    """Every ``interval_ms``, each server independently picks one of two modes.

    Reproduces the paper's §6 fluctuation model: servers flip between their
    nominal service rate μ and ``D × μ`` with probability
    ``fast_probability`` per flip.

    Parameters
    ----------
    loop:
        Event loop to schedule the periodic mode switches on.
    servers:
        Servers whose speed is driven by this process.
    interval_ms:
        The fluctuation interval ``T``.
    rate_multiplier:
        The ``D`` parameter: the alternative mode's service *rate* is
        ``D × μ`` (so its service time is ``1/D`` of nominal).  The paper uses
        ``D = 3``.
    fast_probability:
        Probability of picking the ``D×`` mode at each flip (0.5 in the paper,
        i.e. uniform).
    rng:
        Random generator used for the independent per-server coin flips.
    """

    def __init__(
        self,
        loop: "EventLoop",
        servers: Sequence["SimServer"],
        interval_ms: float = 100.0,
        rate_multiplier: float = 3.0,
        fast_probability: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if not 0.0 <= fast_probability <= 1.0:
            raise ValueError("fast_probability must be in [0, 1]")
        self.loop = loop
        self.servers = list(servers)
        self.interval_ms = float(interval_ms)
        self.rate_multiplier = float(rate_multiplier)
        self.fast_probability = float(fast_probability)
        self.rng = rng or np.random.default_rng()
        self.flips = 0
        self._started = False
        self._stopped = False
        self._next_flip: "Event | None" = None

    @property
    def mean_service_rate_factor(self) -> float:
        """The average rate multiplier ``(1 + D)/2`` used for sizing load."""
        return (1.0 + self.rate_multiplier) / 2.0

    def start(self) -> None:
        """Apply an initial mode to every server and begin flipping."""
        if self._started:
            return
        self._started = True
        self._flip()

    def stop(self) -> None:
        """Cancel the pending flip and restore every server to nominal speed."""
        self._stopped = True
        if self._next_flip is not None:
            self._next_flip.cancel()
            self._next_flip = None
        for server in self.servers:
            server.set_service_rate_multiplier(1.0, source=self)

    def _flip(self) -> None:
        if self._stopped:
            return
        for server in self.servers:
            if self.rng.random() < self.fast_probability:
                server.set_service_rate_multiplier(self.rate_multiplier, source=self)
            else:
                server.set_service_rate_multiplier(1.0, source=self)
            self.flips += 1
        self._next_flip = self.loop.schedule(self.interval_ms, self._flip)


class LatencyInflation:
    """Deterministic, scripted slow-downs of a specific server.

    Used to reproduce the Figure 13 experiment where a tracked node's
    latencies are artificially inflated three times during a run.

    Parameters
    ----------
    loop / server:
        Event loop and the server to manipulate.
    episodes:
        Iterable of ``(start_ms, end_ms, slowdown_factor)`` tuples; during
        each episode the server's service time is multiplied by the factor.
        An ``end_ms`` of ``None`` makes the slowdown permanent (a "slow
        node" rather than an episode).
    """

    def __init__(
        self,
        loop: "EventLoop",
        server: "SimServer",
        episodes: Iterable[tuple[float, float | None, float]],
    ) -> None:
        self.loop = loop
        self.server = server
        self.episodes = sorted(episodes, key=lambda e: (e[0], e[1] if e[1] is not None else float("inf")))
        for start, end, factor in self.episodes:
            if end is not None and end <= start:
                raise ValueError(f"episode end must follow start: {(start, end)}")
            if factor <= 0:
                raise ValueError("slowdown factor must be positive")
        self.active_episodes = 0
        self._events: list["Event"] = []
        self._stopped = False

    def start(self) -> None:
        """Schedule all episodes."""
        for start, end, factor in self.episodes:
            self._events.append(self.loop.schedule_at(start, self._begin, factor))
            if end is not None:
                self._events.append(self.loop.schedule_at(end, self._end))

    def stop(self) -> None:
        """Cancel pending episode edges and restore the nominal service time."""
        self._stopped = True
        for event in self._events:
            event.cancel()
        self._events.clear()
        self.active_episodes = 0
        self.server.set_service_time_multiplier(1.0, source=self)

    def _begin(self, factor: float) -> None:
        if self._stopped:
            return
        self.active_episodes += 1
        self.server.set_service_time_multiplier(factor, source=self)

    def _end(self) -> None:
        if self._stopped:
            return
        self.active_episodes = max(0, self.active_episodes - 1)
        if self.active_episodes == 0:
            self.server.set_service_time_multiplier(1.0, source=self)


class TransientSlowdowns:
    """Poisson-arriving transient slowdowns (GC-pause-like events).

    Each affected server is slowed by ``slowdown_factor`` for an
    exponentially distributed duration.  Events arrive per server as a
    Poisson process with the given mean inter-arrival time.
    """

    def __init__(
        self,
        loop: "EventLoop",
        servers: Sequence["SimServer"],
        mean_interarrival_ms: float = 5000.0,
        mean_duration_ms: float = 200.0,
        slowdown_factor: float = 4.0,
        rng: np.random.Generator | None = None,
        on_event: Callable[["SimServer", float, float], None] | None = None,
    ) -> None:
        if mean_interarrival_ms <= 0 or mean_duration_ms <= 0:
            raise ValueError("mean durations must be positive")
        if slowdown_factor <= 0:
            raise ValueError("slowdown_factor must be positive")
        self.loop = loop
        self.servers = list(servers)
        self.mean_interarrival_ms = float(mean_interarrival_ms)
        self.mean_duration_ms = float(mean_duration_ms)
        self.slowdown_factor = float(slowdown_factor)
        self.rng = rng or np.random.default_rng()
        self.on_event = on_event
        self.events = 0
        self._pending: dict[object, "Event"] = {}
        self._stopped = False

    def start(self) -> None:
        """Schedule the first slowdown for every server."""
        for server in self.servers:
            self._schedule_next(server)

    def stop(self) -> None:
        """Cancel pending pause edges and restore every server's speed."""
        self._stopped = True
        for event in self._pending.values():
            event.cancel()
        self._pending.clear()
        for server in self.servers:
            server.set_service_time_multiplier(1.0, source=self)

    def _schedule_next(self, server: "SimServer") -> None:
        gap = float(self.rng.exponential(self.mean_interarrival_ms))
        self._pending[server.server_id] = self.loop.schedule(gap, self._begin, server)

    def _begin(self, server: "SimServer") -> None:
        if self._stopped:
            return
        duration = float(self.rng.exponential(self.mean_duration_ms))
        server.set_service_time_multiplier(self.slowdown_factor, source=self)
        self.events += 1
        if self.on_event is not None:
            self.on_event(server, self.loop.now, duration)
        self._pending[server.server_id] = self.loop.schedule(duration, self._end, server)

    def _end(self, server: "SimServer") -> None:
        if self._stopped:
            return
        server.set_service_time_multiplier(1.0, source=self)
        self._schedule_next(server)


class CrashSchedule:
    """Timed crash/restart windows for a set of servers.

    Each window ``(start_ms, end_ms)`` crashes the target server at
    ``start_ms`` and restores it at ``end_ms`` (``None`` = never: a permanent
    failure).  While a server is down it starts no new service and clients
    route around it; requests already in flight on the network are queued and
    resume when the server restarts (see :meth:`SimServer.crash`).
    """

    def __init__(
        self,
        loop: "EventLoop",
        windows: Sequence[tuple["SimServer", float, float | None]],
    ) -> None:
        for _server, start, end in windows:
            if start < 0:
                raise ValueError("crash start must be non-negative")
            if end is not None and end <= start:
                raise ValueError(f"crash window end must follow start: {(start, end)}")
        self.loop = loop
        self.windows = list(windows)
        self.crashes = 0
        self._events: list["Event"] = []
        self._stopped = False

    def start(self) -> None:
        """Schedule every crash/restart edge."""
        for server, start, end in self.windows:
            self._events.append(self.loop.schedule_at(start, self._crash, server))
            if end is not None:
                self._events.append(self.loop.schedule_at(end, self._restore, server))

    def stop(self) -> None:
        """Cancel pending edges and restart anything still down."""
        self._stopped = True
        for event in self._events:
            event.cancel()
        self._events.clear()
        for server, _start, _end in self.windows:
            if not server.is_up:
                server.restore()

    def _crash(self, server: "SimServer") -> None:
        if self._stopped:
            return
        self.crashes += 1
        server.crash()

    def _restore(self, server: "SimServer") -> None:
        if self._stopped:
            return
        server.restore()


class ArrivalRateSchedule:
    """Timed arrival-rate changes (load spikes, ramps) on an arrival process.

    ``steps`` is a sequence of ``(at_ms, rate_factor)`` pairs; at each
    ``at_ms`` the arrival rate becomes ``base_rate × rate_factor`` where the
    base rate is captured when the schedule starts.  A factor of ``1.0``
    restores nominal load, so a spike is simply
    ``[(t0, 2.0), (t1, 1.0)]``.
    """

    def __init__(
        self,
        loop: "EventLoop",
        process: "PoissonArrivalProcess",
        steps: Sequence[tuple[float, float]],
    ) -> None:
        for at, factor in steps:
            if at < 0:
                raise ValueError("step time must be non-negative")
            if factor <= 0:
                raise ValueError("rate factor must be positive")
        self.loop = loop
        self.process = process
        self.steps = sorted(steps)
        self.changes = 0
        self._base_rate: float | None = None
        self._events: list["Event"] = []
        self._stopped = False

    def start(self) -> None:
        """Capture the base rate and schedule every step."""
        self._base_rate = self.process.rate_per_ms
        for at, factor in self.steps:
            self._events.append(self.loop.schedule_at(at, self._apply, factor))

    def stop(self) -> None:
        """Cancel pending steps and restore the base arrival rate."""
        self._stopped = True
        for event in self._events:
            event.cancel()
        self._events.clear()
        if self._base_rate is not None:
            self.process.set_rate(self._base_rate)

    def _apply(self, factor: float) -> None:
        if self._stopped:
            return
        self.changes += 1
        assert self._base_rate is not None
        self.process.set_rate(self._base_rate * factor)
