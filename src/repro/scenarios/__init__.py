"""Composable fault/perturbation scenarios for the simulator.

Three layers:

* :mod:`repro.scenarios.processes` — imperative, loop-attached perturbation
  processes (the primitives; also re-exported as the historical
  :mod:`repro.simulator.fluctuation` API);
* :mod:`repro.scenarios.components` — declarative components that
  instantiate the processes against a :class:`ScenarioContext`;
* :mod:`repro.scenarios.registry` — named builtin scenarios
  (``baseline``, ``bimodal``, ``gc-storm``, ``crash-recovery``,
  ``slow-node``, ``network-jitter``, ``load-spike``, ``heterogeneous``)
  addressable from :attr:`SimulationConfig.scenario`, sweep grids and the
  CLI.
"""

from .base import Scenario, ScenarioComponent, ScenarioContext
from .components import (
    BimodalServiceRates,
    CrashWindows,
    GCPauses,
    HeterogeneousServiceRates,
    LoadSpike,
    NetworkDelayChange,
    SlowServers,
)
from .processes import (
    ArrivalRateSchedule,
    BimodalFluctuation,
    CrashSchedule,
    LatencyInflation,
    TransientSlowdowns,
)
from .registry import (
    ScenarioDefinition,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_rate_factor,
    validate_scenario,
)

__all__ = [
    "ArrivalRateSchedule",
    "BimodalFluctuation",
    "BimodalServiceRates",
    "CrashSchedule",
    "CrashWindows",
    "GCPauses",
    "HeterogeneousServiceRates",
    "LatencyInflation",
    "LoadSpike",
    "NetworkDelayChange",
    "Scenario",
    "ScenarioComponent",
    "ScenarioContext",
    "ScenarioDefinition",
    "SlowServers",
    "TransientSlowdowns",
    "build_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_rate_factor",
    "validate_scenario",
]
