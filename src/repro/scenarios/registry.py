"""The builtin scenario registry.

Scenarios are referenced by name from :attr:`SimulationConfig.scenario`
(with knob overrides in ``scenario_params``), which makes them sweepable
grid dimensions, cacheable by content hash, and CLI-addressable
(``c3-repro simulate --scenario gc-storm``,
``c3-repro sweep --scenario gc-storm --scenario crash-recovery …``).

Each :class:`ScenarioDefinition` declares its knobs with defaults; unknown
knob names are rejected so a typo'd ``scenario_params`` fails loudly instead
of silently running the default scenario.  ``register_scenario`` is public:
downstream code can add its own named scenarios and immediately sweep over
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from .base import Scenario, ScenarioComponent
from .components import (
    BimodalServiceRates,
    CrashWindows,
    GCPauses,
    HeterogeneousServiceRates,
    LoadSpike,
    NetworkDelayChange,
    SlowServers,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.simulation import SimulationConfig

__all__ = [
    "ScenarioDefinition",
    "build_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_rate_factor",
    "validate_scenario",
]

#: Builder: (config, resolved params) -> components.
Factory = Callable[["SimulationConfig", dict], Sequence[ScenarioComponent]]
#: Rate factor: (config, resolved params) -> mean service-rate multiplier.
RateFactor = Callable[["SimulationConfig", dict], float]


@dataclass(frozen=True)
class ScenarioDefinition:
    """A named scenario template: knobs + component factory."""

    name: str
    description: str
    factory: Factory
    knobs: Mapping[str, Any] = field(default_factory=dict)
    rate_factor: RateFactor | None = None

    def resolve_params(self, params: Mapping[str, Any] | None) -> dict:
        """Merge ``params`` over the knob defaults, rejecting unknown keys."""
        params = dict(params or {})
        unknown = sorted(set(params) - set(self.knobs))
        if unknown:
            raise ValueError(
                f"unknown scenario_params {unknown} for scenario {self.name!r}; "
                f"knobs: {', '.join(sorted(self.knobs)) or '(none)'}"
            )
        resolved = dict(self.knobs)
        resolved.update(params)
        return resolved

    def build(self, config: "SimulationConfig") -> Scenario:
        """Instantiate the scenario for ``config``."""
        params = self.resolve_params(config.scenario_params)
        components = tuple(self.factory(config, params))
        factor = self.rate_factor(config, params) if self.rate_factor else 1.0
        return Scenario(
            name=self.name,
            components=components,
            rate_factor=float(factor),
            description=self.description,
        )


_REGISTRY: dict[str, ScenarioDefinition] = {}


def register_scenario(definition: ScenarioDefinition) -> ScenarioDefinition:
    """Register a scenario definition under its name (unique)."""
    if definition.name in _REGISTRY:
        raise ValueError(f"scenario {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition
    return definition


def scenario_names() -> tuple[str, ...]:
    """Every registered scenario name, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> ScenarioDefinition:
    """Look a scenario up by name (ValueError lists the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available scenarios: {', '.join(scenario_names())}"
        ) from None


def validate_scenario(name: str, params: Mapping[str, Any] | None = None) -> None:
    """Raise ValueError for an unknown name or unknown knob keys."""
    get_scenario(name).resolve_params(params)


def build_scenario(config: "SimulationConfig") -> Scenario:
    """Build the scenario named by ``config.scenario`` for this run."""
    if config.scenario is None:
        raise ValueError("config.scenario is None; nothing to build")
    return get_scenario(config.scenario).build(config)


def scenario_rate_factor(config: "SimulationConfig") -> float:
    """The scenario's mean service-rate multiplier (for load sizing)."""
    definition = get_scenario(config.scenario)
    params = definition.resolve_params(config.scenario_params)
    if definition.rate_factor is None:
        return 1.0
    return float(definition.rate_factor(config, params))


# --------------------------------------------------------------------------
# Builtin scenarios.
# --------------------------------------------------------------------------

register_scenario(
    ScenarioDefinition(
        name="baseline",
        description="No perturbation: homogeneous servers at steady load",
        factory=lambda config, params: (),
    )
)


def _bimodal_components(config: "SimulationConfig", params: dict) -> Sequence[ScenarioComponent]:
    return (
        BimodalServiceRates(
            interval_ms=(
                config.fluctuation_interval_ms
                if params["interval_ms"] is None
                else params["interval_ms"]
            ),
            rate_multiplier=(
                config.fluctuation_multiplier
                if params["rate_multiplier"] is None
                else params["rate_multiplier"]
            ),
            fast_probability=params["fast_probability"],
        ),
    )


def _bimodal_rate_factor(config: "SimulationConfig", params: dict) -> float:
    multiplier = (
        config.fluctuation_multiplier
        if params["rate_multiplier"] is None
        else params["rate_multiplier"]
    )
    fast = params["fast_probability"]
    return (1.0 - fast) + fast * multiplier


register_scenario(
    ScenarioDefinition(
        name="bimodal",
        description="Paper §6 fluctuation: servers flip between μ and D·μ every interval",
        factory=_bimodal_components,
        knobs={"interval_ms": None, "rate_multiplier": None, "fast_probability": 0.5},
        rate_factor=_bimodal_rate_factor,
    )
)

register_scenario(
    ScenarioDefinition(
        name="gc-storm",
        description="Frequent long GC-like pauses hitting every server",
        factory=lambda config, params: (
            GCPauses(
                mean_interarrival_ms=params["mean_interarrival_ms"],
                mean_duration_ms=params["mean_duration_ms"],
                slowdown_factor=params["slowdown_factor"],
            ),
        ),
        knobs={
            "mean_interarrival_ms": 400.0,
            "mean_duration_ms": 60.0,
            "slowdown_factor": 6.0,
        },
    )
)

def _crash_recovery_components(config: "SimulationConfig", params: dict) -> Sequence[ScenarioComponent]:
    targets = params["targets"]
    if targets is None:
        # Default: two well-separated servers (one for tiny clusters), so
        # the scenario works at any num_servers without knob surgery.
        targets = tuple(sorted({0, config.num_servers // 2}))
    return (
        CrashWindows(
            first_at_ms=params["first_at_ms"],
            down_ms=params["down_ms"],
            stagger_ms=params["stagger_ms"],
            repeats=int(params["repeats"]),
            period_ms=params["period_ms"],
            targets=tuple(targets),
        ),
    )


register_scenario(
    ScenarioDefinition(
        name="crash-recovery",
        description="Servers crash and restart on a staggered schedule; clients route around them",
        factory=_crash_recovery_components,
        knobs={
            "first_at_ms": 250.0,
            "down_ms": 400.0,
            "stagger_ms": 600.0,
            "repeats": 1,
            "period_ms": 2000.0,
            "targets": None,
        },
    )
)

register_scenario(
    ScenarioDefinition(
        name="slow-node",
        description="One permanently slow server (degraded disk / noisy neighbor)",
        factory=lambda config, params: (
            SlowServers(
                factor=params["factor"],
                start_ms=params["start_ms"],
                end_ms=params["end_ms"],
                targets=int(params["target"]),
            ),
        ),
        knobs={"factor": 4.0, "start_ms": 0.0, "end_ms": None, "target": 0},
    )
)

register_scenario(
    ScenarioDefinition(
        name="network-jitter",
        description="Network latency becomes jittery mid-run (EC2-like variance)",
        factory=lambda config, params: (
            NetworkDelayChange(
                at_ms=params["at_ms"],
                delay_ms=(
                    2.0 * config.network_delay_ms
                    if params["delay_ms"] is None
                    else params["delay_ms"]
                ),
                jitter_ms=(
                    1.6 * config.network_delay_ms
                    if params["jitter_ms"] is None
                    else params["jitter_ms"]
                ),
            ),
        ),
        knobs={"at_ms": 250.0, "delay_ms": None, "jitter_ms": None},
    )
)

register_scenario(
    ScenarioDefinition(
        name="load-spike",
        description="Arrival rate multiplied during a window (flash crowd)",
        factory=lambda config, params: (
            LoadSpike(
                start_ms=params["start_ms"],
                end_ms=params["end_ms"],
                factor=params["factor"],
            ),
        ),
        knobs={"start_ms": 400.0, "end_ms": 900.0, "factor": 1.6},
    )
)

register_scenario(
    ScenarioDefinition(
        name="heterogeneous",
        description="Static per-server speed diversity (unequal machines)",
        factory=lambda config, params: (
            HeterogeneousServiceRates(spread=params["spread"]),
        ),
        knobs={"spread": 2.5},
    )
)
