"""Figure 8 — load conditioning of the most heavily utilised node.

Under a Zipfian access pattern some replica groups are much hotter than
others; the figure shows the distribution of reads served per 100 ms by the
node that served the most reads in each run.  Despite C3's higher overall
throughput, its hottest node serves *fewer* requests per window and with a
smaller spread between the median and the 99th percentile — the signature of
proper load conditioning.
"""

from __future__ import annotations

import numpy as np

from ..analysis.ecdf import ecdf
from ..analysis.oscillation import load_conditioning
from .base import ExperimentResult, registry
from .common import ClusterScale, run_workload_comparison

__all__ = ["run"]


@registry.register("fig08", "Load distribution on the most heavily utilised node (Figure 8)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    mixes: tuple[str, ...] = ("read_heavy", "read_only", "update_heavy"),
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the hottest-node load distribution comparison of Figure 8."""
    scale = scale or ClusterScale()
    results = run_workload_comparison(strategies=strategies, mixes=mixes, scale=scale)

    rows = []
    data = {}
    for mix in mixes:
        for strategy in strategies:
            result = results[(mix, strategy)]
            series = result.hottest_server_series()
            active = series[series > 0] if series.size else series
            report = load_conditioning(active if active.size else series)
            rows.append(
                [
                    mix,
                    strategy,
                    report.median,
                    report.p99,
                    report.maximum,
                    report.spread_p99_median,
                    float(np.mean(series)) if series.size else 0.0,
                ]
            )
            data[(mix, strategy)] = {
                "series": series,
                "report": report,
                "ecdf": ecdf(series),
                "result": result,
            }

    return ExperimentResult(
        experiment_id="fig08",
        title="Reads served per 100 ms by the most heavily utilised node",
        headers=[
            "workload",
            "strategy",
            "median/window",
            "p99/window",
            "max/window",
            "p99 - median",
            "mean/window (all windows)",
        ],
        rows=rows,
        notes=[
            "Paper: with C3 the most heavily utilised node has a lower load range over time — the "
            "difference between the 99th percentile and the median number of requests served per "
            "100 ms window is lower than with Dynamic Snitching.",
        ],
        data=data,
    )
