"""Figure 5 — the cubic growth curve used for rate adaptation.

The curve ``rate(ΔT) = γ(ΔT − (βR0/γ)^(1/3))³ + R0`` has three operating
regions: steep growth at low rates, a saddle around the last-known saturation
rate R0, and optimistic probing beyond it.  The experiment samples the curve
and reports where each region begins and ends for the paper's parameters
(β = 0.2, saddle ≈ 100 ms).
"""

from __future__ import annotations

import numpy as np

from ..core.config import C3Config
from ..core.rate_control import cubic_inflection_ms, cubic_rate
from ..strategies import StrategySpec, c3_config_from_params
from .base import ExperimentResult, registry

__all__ = ["run", "curve_points", "region_boundaries"]


def curve_points(
    saturation_rate: float, beta: float, gamma: float, max_elapsed_ms: float = 200.0, step_ms: float = 5.0
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the cubic curve over ``[0, max_elapsed_ms]``."""
    elapsed = np.arange(0.0, max_elapsed_ms + step_ms, step_ms)
    rates = np.array([cubic_rate(t, saturation_rate, beta, gamma) for t in elapsed])
    return elapsed, rates


def region_boundaries(saturation_rate: float, beta: float, gamma: float, tolerance: float = 0.05) -> dict:
    """ΔT boundaries of the three regions (low-rate, saddle, probing).

    The saddle is defined as the span where the rate stays within
    ``tolerance`` of R0; the low-rate region precedes it, optimistic probing
    follows it.
    """
    inflection = cubic_inflection_ms(saturation_rate, beta, gamma)
    band = tolerance * saturation_rate
    # rate(ΔT) − R0 = γ(ΔT − inflection)³, so |ΔT − inflection| ≤ (band/γ)^(1/3).
    half_width = (band / gamma) ** (1.0 / 3.0)
    return {
        "inflection_ms": inflection,
        "saddle_start_ms": max(0.0, inflection - half_width),
        "saddle_end_ms": inflection + half_width,
        "saddle_width_ms": 2 * half_width,
    }


@registry.register("fig05", "Cubic rate-adaptation growth curve (Figure 5)")
def run(
    saturation_rate: float = 50.0,
    saddle_ms: float = 100.0,
    beta: float = 0.2,
    strategy: str = "C3",
) -> ExperimentResult:
    """Reproduce the shape of Figure 5 for the paper's parameters.

    The curve's knobs are addressed through the strategy-spec grammar: the
    default ``"C3"`` uses the paper values (as tuned by ``saturation_rate``,
    ``saddle_ms`` and ``beta``), while e.g. ``strategy="c3:cubic_c=4e-4"``
    pins the cubic scaling factor γ explicitly and
    ``strategy="c3:beta=0.4"`` overrides the multiplicative decrease — the
    same spec strings a parameter sweep would grid over.
    """
    spec = StrategySpec.parse(strategy)
    if spec.name != "C3":
        raise ValueError(f"fig05 plots the C3 growth curve; got strategy {spec.name!r}")
    config = c3_config_from_params(
        spec.params_dict,
        C3Config(beta=beta, saddle_duration_ms=saddle_ms, initial_rate=saturation_rate),
    )
    beta = config.beta
    gamma = config.effective_gamma(saturation_rate)
    boundaries = region_boundaries(saturation_rate, beta, gamma)
    elapsed, rates = curve_points(saturation_rate, beta, gamma)

    sample_points = [0.0, boundaries["saddle_start_ms"], boundaries["inflection_ms"], boundaries["saddle_end_ms"], 150.0, 200.0]
    rows = []
    for t in sample_points:
        rate = cubic_rate(t, saturation_rate, beta, gamma)
        if t < boundaries["saddle_start_ms"]:
            region = "low-rate (steep growth)"
        elif t <= boundaries["saddle_end_ms"]:
            region = "saddle (stable)"
        else:
            region = "optimistic probing"
        rows.append([t, rate, region])

    return ExperimentResult(
        experiment_id="fig05",
        title="Cubic growth curve for rate control (rate vs time since last decrease)",
        headers=["elapsed ΔT (ms)", "sending rate (req per δ)", "region"],
        rows=rows,
        notes=[
            f"gamma = {gamma:.3g} chosen so the saddle spans roughly {saddle_ms:.0f} ms "
            f"(measured saddle width ≈ {boundaries['saddle_width_ms']:.0f} ms around ΔT = "
            f"{boundaries['inflection_ms']:.0f} ms).",
            "The curve starts below R0 after a multiplicative decrease, flattens around R0, then probes beyond it.",
        ],
        data={"elapsed": elapsed, "rates": rates, "boundaries": boundaries, "gamma": gamma},
    )
