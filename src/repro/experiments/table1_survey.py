"""Table 1 — replica selection mechanisms in popular NoSQL solutions.

The table is a survey, not a measurement; it is encoded as data so that the
report harness can regenerate it and so tests can assert the claims the rest
of the reproduction relies on (only Cassandra ships an adaptive, load-based
scheme — which is why it is the paper's baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import ExperimentResult, registry

__all__ = ["SystemSurveyEntry", "SURVEY", "run"]


@dataclass(frozen=True, slots=True)
class SystemSurveyEntry:
    """One row of Table 1."""

    system: str
    mechanism: str
    load_based: bool
    adaptive: bool


#: The survey of Table 1, with the two properties the paper's argument uses.
SURVEY: tuple[SystemSurveyEntry, ...] = (
    SystemSurveyEntry(
        system="Cassandra",
        mechanism="Dynamic Snitching: considers history of read latencies and I/O load",
        load_based=True,
        adaptive=True,
    ),
    SystemSurveyEntry(
        system="OpenStack Swift",
        mechanism="Read from a single node and retry in case of failures",
        load_based=False,
        adaptive=False,
    ),
    SystemSurveyEntry(
        system="MongoDB",
        mechanism="Optionally select nearest node by network latency (no CPU or I/O load)",
        load_based=False,
        adaptive=False,
    ),
    SystemSurveyEntry(
        system="Riak",
        mechanism="Recommendation is to use an external load balancer such as Nginx",
        load_based=False,
        adaptive=False,
    ),
)


@registry.register("table1", "Replica selection mechanisms in popular NoSQL solutions (Table 1)")
def run() -> ExperimentResult:
    """Regenerate Table 1."""
    rows = [
        [entry.system, entry.mechanism, "yes" if entry.load_based else "no", "yes" if entry.adaptive else "no"]
        for entry in SURVEY
    ]
    adaptive_systems = [e.system for e in SURVEY if e.adaptive]
    return ExperimentResult(
        experiment_id="table1",
        title="Replica selection mechanisms in popular NoSQL solutions",
        headers=["system", "replica selection mechanism", "load-based", "adaptive"],
        rows=rows,
        notes=[
            "Only Cassandra employs a form of adaptive replica selection, which is why the paper "
            f"(and this reproduction) uses it as the baseline. Adaptive systems: {', '.join(adaptive_systems)}.",
        ],
        data={"survey": SURVEY},
    )
