"""§5 "Comparison against request reissues" — speculative retries under DS.

Cassandra can reissue a read to another replica after waiting for the 99th
percentile latency.  The paper found that enabling this on top of Dynamic
Snitching *degraded* latencies (up to 5× at p99): with response times already
highly variable, coordinators speculate too often, adding load to already
stressed disks.  The experiment compares DS, DS + speculative retry, and C3.
"""

from __future__ import annotations

from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("speculative", "Speculative retries on top of DS vs C3 (§5)")
def run(
    workload_mix: str = "read_heavy",
    retry_percentile: float = 99.0,
    hedging: str | None = None,
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the speculative-retry comparison.

    The retry mechanism can be addressed two equivalent ways: the legacy
    ``retry_percentile`` spelling (the default, pinned by the regression
    suite) or a ``hedging`` control spec such as ``"hedge:quantile=0.99"``
    — ``retry_percentile=p`` and ``hedging=f"hedge:quantile={p / 100}"``
    produce identical rows, which the controls test suite asserts
    row-for-row.
    """
    scale = scale or ClusterScale()
    if hedging is not None:
        spec_overrides = dict(strategy="DS", hedging=hedging)
    else:
        spec_overrides = dict(strategy="DS", speculative_retry_percentile=retry_percentile)
    scenarios = [
        ("DS", dict(strategy="DS")),
        ("DS+spec", spec_overrides),
        ("C3", dict(strategy="C3")),
    ]
    rows = []
    data = {}
    for label, overrides in scenarios:
        strategy = overrides.pop("strategy")
        result = run_single_cluster(strategy, workload_mix=workload_mix, scale=scale, **overrides)
        summary = result.read_summary
        rows.append(
            [
                label,
                summary.mean,
                summary.median,
                summary.p99,
                summary.p999,
                result.extra.get("speculative_retries", 0),
                result.throughput_rps,
            ]
        )
        data[label] = result

    notes = [
        "Paper: speculative retries configured at the p99 threshold degraded DS latencies by up to "
        "5x at the 99th percentile because coordinators speculate too many requests when response "
        "times are already highly variable; C3 needs no reissues to improve the tail.",
    ]
    if "DS" in data and "DS+spec" in data:
        base = data["DS"].read_summary.p99
        spec = data["DS+spec"].read_summary.p99
        if base > 0:
            notes.append(f"Reproduced: p99 with speculation is {spec / base:.2f}x the DS baseline.")
    return ExperimentResult(
        experiment_id="speculative",
        title="Effect of p99 speculative retries on top of Dynamic Snitching",
        headers=["configuration", "mean", "median", "p99", "p99.9", "retries fired", "throughput (ops/s)"],
        rows=rows,
        notes=notes,
        data=data,
    )
