"""Figure 11 — adaptation to a dynamic workload change.

An update-heavy workload joins a system already serving a read-heavy
workload; the read-heavy generators' latencies are observed around the join
point.  With C3 the degradation is graceful; with Dynamic Snitching the
time-series shows synchronised latency spikes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.timeseries import moving_median
from ..cluster import GeneratorGroup
from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("fig11", "Latency of read-heavy generators when update-heavy load joins (Figure 11)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    read_generators: int = 40,
    joining_generators: int = 20,
    scale: ClusterScale | None = None,
    join_fraction: float = 0.5,
    median_window: int = 50,
) -> ExperimentResult:
    """Reproduce the dynamic-workload experiment of Figure 11.

    The join point is placed at ``join_fraction`` of the run (the paper adds
    40 update-heavy generators to 80 read-heavy ones at 640 s of a longer
    run; durations here are scaled down).
    """
    scale = scale or ClusterScale()
    join_at = scale.duration_ms * join_fraction
    rows = []
    data = {}
    for strategy in strategies:
        groups = [
            GeneratorGroup(count=read_generators, mix="read_heavy", label="readers"),
            GeneratorGroup(
                count=joining_generators, mix="update_heavy", start_at_ms=join_at, label="updaters"
            ),
        ]
        result = run_single_cluster(
            strategy,
            scale=scale,
            generator_groups=groups,
            num_generators=read_generators,
        )
        metrics_extra = result.extra
        # Latency time series of the read-heavy group only.
        times, latencies = _series_from_result(result, group="readers")
        before = latencies[times < join_at]
        after = latencies[times >= join_at]
        smoothed = moving_median(latencies, window=median_window) if latencies.size else latencies
        smoothed_after = smoothed[times >= join_at] if latencies.size else smoothed
        rows.append(
            [
                strategy,
                float(np.median(before)) if before.size else 0.0,
                float(np.median(after)) if after.size else 0.0,
                float(np.percentile(before, 99)) if before.size else 0.0,
                float(np.percentile(after, 99)) if after.size else 0.0,
                float(smoothed_after.max()) if smoothed_after.size else 0.0,
            ]
        )
        data[strategy] = {
            "times": times,
            "latencies": latencies,
            "smoothed": smoothed,
            "join_at_ms": join_at,
            "result": result,
            "extra": metrics_extra,
        }
    return ExperimentResult(
        experiment_id="fig11",
        title="Read-heavy generators' latency before/after update-heavy generators join",
        headers=[
            "strategy",
            "median before (ms)",
            "median after (ms)",
            "p99 before (ms)",
            "p99 after (ms)",
            "max moving-median after (ms)",
        ],
        rows=rows,
        notes=[
            "Paper: both systems degrade when the new generators join, but C3 degrades gracefully "
            "while DS shows synchronised latency spikes in the moving-median time series.",
        ],
        data=data,
    )


def _series_from_result(result, group: str) -> tuple[np.ndarray, np.ndarray]:
    """Extract the (times, latencies) series of one generator group."""
    samples = result.extra.get("operation_samples")
    if samples is None:
        # Fall back to the aggregate distribution when per-sample data was not
        # retained (older results): treat every completion as belonging to the
        # requested group.
        latencies = result.read_latencies_ms
        times = np.linspace(0.0, result.duration_ms, num=latencies.size, endpoint=False)
        return times, latencies
    filtered = [(s.completed_at, s.latency_ms) for s in samples if s.group == group and s.is_read]
    filtered.sort()
    if not filtered:
        return np.zeros(0), np.zeros(0)
    arr = np.asarray(filtered, dtype=float)
    return arr[:, 0], arr[:, 1]
