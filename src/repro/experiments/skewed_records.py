"""§5 "Skewed record sizes" — variable-length records in the control loop.

C3's feedback is per-request service time, so Zipf-distributed record sizes
(max 2 KB, favouring shorter values) could in principle confuse the control
loop.  The paper finds C3 still improves every latency metric; in particular
the 99th percentile drops from ~30 ms (DS) to just under 14 ms (C3) — more
than a 2× improvement.
"""

from __future__ import annotations

from ..cluster import GeneratorGroup
from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("skewed_records", "Zipf-skewed record sizes, C3 vs DS (§5)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the skewed-record-size experiment."""
    scale = scale or ClusterScale()
    rows = []
    data = {}
    for strategy in strategies:
        groups = [
            GeneratorGroup(
                count=scale.num_generators,
                mix=workload_mix,
                label="skewed_records",
                skewed_record_sizes=True,
            )
        ]
        result = run_single_cluster(
            strategy,
            workload_mix=workload_mix,
            scale=scale,
            generator_groups=groups,
        )
        summary = result.read_summary
        rows.append([strategy, summary.mean, summary.median, summary.p95, summary.p99, summary.p999])
        data[strategy] = result

    notes = [
        "Paper: with Zipf-distributed field sizes (2 KB max records) C3 improves every latency "
        "metric; the 99th percentile is just under 14 ms with C3 vs ~30 ms with DS (>2x).",
    ]
    if "C3" in data and "DS" in data:
        c3_p99 = data["C3"].read_summary.p99
        ds_p99 = data["DS"].read_summary.p99
        if c3_p99 > 0:
            notes.append(f"Reproduced: p99 improvement DS/C3 = {ds_p99 / c3_p99:.2f}x.")
    return ExperimentResult(
        experiment_id="skewed_records",
        title="Read latencies (ms) with Zipf-skewed record sizes",
        headers=["strategy", "mean", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=notes,
        data=data,
    )
