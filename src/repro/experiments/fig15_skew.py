"""Figure 15 — performance under heavy client demand skews (flat simulator).

20 % (respectively 50 %) of the clients generate 80 % of the total demand;
the 99th-percentile latency is compared across strategies and fluctuation
intervals.  C3's concurrency compensation (heavier clients project larger
queue estimates) keeps it ahead of LOR and RR regardless of the skew.
"""

from __future__ import annotations

import numpy as np

from ..simulator import DemandSkew, SimulationConfig, run_simulation
from .base import ExperimentResult, registry

__all__ = ["run"]


@registry.register("fig15", "p99 latency under client demand skew (Figure 15)")
def run(
    strategies: tuple[str, ...] = ("ORA", "C3", "LOR", "RR"),
    skews: tuple[float, ...] = (0.2, 0.5),
    intervals_ms: tuple[float, ...] = (100.0, 500.0),
    num_clients: int = 40,
    num_servers: int = 10,
    num_requests: int = 15_000,
    utilization: float = 0.7,
    seeds: tuple[int, ...] = (0,),
) -> ExperimentResult:
    """Reproduce the demand-skew comparison of Figure 15 (scaled down)."""
    rows = []
    data = {}
    for skew_fraction in skews:
        skew = DemandSkew(client_fraction=skew_fraction, demand_fraction=0.8)
        for interval in intervals_ms:
            for strategy in strategies:
                p99s = []
                for seed in seeds:
                    config = SimulationConfig(
                        num_servers=num_servers,
                        num_clients=num_clients,
                        num_requests=num_requests,
                        utilization=utilization,
                        fluctuation_interval_ms=interval,
                        strategy=strategy,
                        demand_skew=skew,
                        seed=seed,
                    )
                    p99s.append(run_simulation(config).summary.p99)
                p99 = float(np.mean(p99s))
                rows.append([f"{int(skew_fraction * 100)}% of clients", interval, strategy, p99])
                data[(skew_fraction, interval, strategy)] = p99
    return ExperimentResult(
        experiment_id="fig15",
        title="99th percentile latency (ms) when a client subset generates 80% of demand",
        headers=["demand skew", "interval (ms)", "strategy", "p99"],
        rows=rows,
        notes=[
            "Paper: regardless of whether 20% or 50% of the clients generate 80% of the demand, "
            "C3 outperforms LOR and RR and tracks the oracle.",
        ],
        data=data,
    )
