"""Figure 15 — performance under heavy client demand skews (flat simulator).

20 % (respectively 50 %) of the clients generate 80 % of the total demand;
the 99th-percentile latency is compared across strategies and fluctuation
intervals.  C3's concurrency compensation (heavier clients project larger
queue estimates) keeps it ahead of LOR and RR regardless of the skew.
"""

from __future__ import annotations

from ..runner import SweepRunner
from ..simulator import DemandSkew, SimulationConfig
from .base import ExperimentResult, registry
from .common import sweep_flat

__all__ = ["run"]


@registry.register("fig15", "p99 latency under client demand skew (Figure 15)")
def run(
    strategies: tuple[str, ...] = ("ORA", "C3", "LOR", "RR"),
    skews: tuple[float, ...] = (0.2, 0.5),
    intervals_ms: tuple[float, ...] = (100.0, 500.0),
    num_clients: int = 40,
    num_servers: int = 10,
    num_requests: int = 15_000,
    utilization: float = 0.7,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Reproduce the demand-skew comparison of Figure 15 (scaled down)."""
    base = SimulationConfig(
        num_servers=num_servers,
        num_clients=num_clients,
        num_requests=num_requests,
        utilization=utilization,
    )
    grid = {
        "demand_skew": tuple(
            DemandSkew(client_fraction=fraction, demand_fraction=0.8) for fraction in skews
        ),
        "fluctuation_interval_ms": intervals_ms,
        "strategy": strategies,
    }
    rows = []
    data = {}
    for point in sweep_flat(base, grid, seeds, runner=runner).aggregates():
        skew_fraction = point.params["demand_skew"]["client_fraction"]
        interval = point.params["fluctuation_interval_ms"]
        strategy = point.params["strategy"]
        p99 = point.metrics["p99"].mean
        rows.append([f"{int(skew_fraction * 100)}% of clients", interval, strategy, p99])
        data[(skew_fraction, interval, strategy)] = p99
    return ExperimentResult(
        experiment_id="fig15",
        title="99th percentile latency (ms) when a client subset generates 80% of demand",
        headers=["demand skew", "interval (ms)", "strategy", "p99"],
        rows=rows,
        notes=[
            "Paper: regardless of whether 20% or 50% of the clients generate 80% of the demand, "
            "C3 outperforms LOR and RR and tracks the oracle.",
        ],
        data=data,
    )
