"""Figure 13 — sending-rate adaptation and backpressure over time.

A seven-node cluster serves a steady workload while one tracked node's
latencies are artificially inflated three times; the figure shows how two
coordinators' sending rates towards that node adapt (multiplicative decrease
into the low-rate region, recovery through the saddle, optimistic probing)
and when backpressure fires.

The latency inflation is reproduced by scripting compaction episodes on the
tracked node (a compaction multiplies its read service times), mirroring the
``tc``-based inflation of the paper's testbed run.
"""

from __future__ import annotations

import numpy as np

from ..cluster import CassandraCluster, ClusterConfig
from .base import ExperimentResult, registry

__all__ = ["run"]


@registry.register("fig13", "Sending-rate adaptation against a degrading peer (Figure 13)")
def run(
    num_nodes: int = 7,
    num_generators: int = 100,
    duration_ms: float = 3_000.0,
    episodes: tuple[tuple[float, float], ...] = ((0.30, 0.45), (0.55, 0.60), (0.70, 0.75)),
    slowdown_factor: float = 6.0,
    observer_count: int = 2,
    initial_rate: float = 3.0,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce the rate-adaptation trace of Figure 13 (summary statistics).

    The tracked node's latencies are inflated by ``slowdown_factor`` during
    each episode (the paper used Linux ``tc`` on the testbed).  The paper's
    coordinators handle enough traffic that their per-server rate limiters
    are genuinely exercised; at this scaled-down load that regime is
    recreated by starting from a lower per-server rate and relaxing the
    light-sender guards of the controller (see C3Config.rate_min_utilisation).
    """
    from ..core.config import C3Config

    config = ClusterConfig(
        num_nodes=num_nodes,
        num_generators=num_generators,
        duration_ms=duration_ms,
        strategy="C3",
        c3_config=C3Config(
            initial_rate=initial_rate,
            rate_min_utilisation=0.15,
            rate_excess_tolerance=1.3,
        ).with_clients(num_nodes),
        record_rate_history=True,
        compaction_enabled=False,
        gc_enabled=False,
        seed=seed,
    )
    cluster = CassandraCluster(config)
    tracked = cluster.node_ids[-1]
    tracked_node = cluster.nodes[tracked]

    episode_windows = [(duration_ms * start, duration_ms * end) for start, end in episodes]
    for start_ms, end_ms in episode_windows:
        cluster.loop.schedule_at(start_ms, tracked_node.set_slowdown, slowdown_factor)
        cluster.loop.schedule_at(end_ms, tracked_node.clear_slowdown)

    result = cluster.run()

    observers = cluster.node_ids[:observer_count]
    rows = []
    data = {"tracked_node": tracked, "episodes_ms": episode_windows, "result": result}
    for observer in observers:
        selector = cluster.coordinators[observer].selector
        history = selector.rate_history(tracked)
        increases = [e for e in history if e.kind == "increase"]
        decreases = [e for e in history if e.kind == "decrease"]
        decreases_in_episode = [
            e
            for e in decreases
            if any(start <= e.time <= end + 200.0 for start, end in episode_windows)
        ]
        rates = np.array([e.new_rate for e in history]) if history else np.zeros(0)
        rows.append(
            [
                f"coordinator {observer}",
                len(increases),
                len(decreases),
                len(decreases_in_episode),
                float(rates.min()) if rates.size else selector.sending_rates().get(tracked, 0.0),
                float(rates.max()) if rates.size else selector.sending_rates().get(tracked, 0.0),
                selector.sending_rates().get(tracked, 0.0),
            ]
        )
        data[f"history_{observer}"] = history
    rows.append(
        [
            "cluster",
            "-",
            "-",
            "-",
            "-",
            "-",
            result.backpressure_events,
        ]
    )

    return ExperimentResult(
        experiment_id="fig13",
        title=f"Rate adaptation of {observer_count} coordinators towards node {tracked} (3 degradation episodes)",
        headers=[
            "observer",
            "rate increases",
            "rate decreases",
            "decreases near episodes",
            "min rate",
            "max rate",
            "final/backpressure",
        ],
        rows=rows,
        notes=[
            "Paper: both coordinators' estimates of the degraded peer's capacity agree over time; "
            "the trace shows multiplicative decreases into the low-rate region during the three "
            "inflation episodes, recovery through the saddle region afterwards, and a handful of "
            "backpressure events when the inflation ends and the generators throttle up.",
            "The last row reports cluster-wide backpressure events in the 'final/backpressure' column.",
        ],
        data=data,
    )
