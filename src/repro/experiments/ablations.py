"""Ablation studies of C3's design choices (DESIGN.md §5).

The paper motivates three design choices that these ablations probe directly
on the flat simulator:

* the **cubic exponent** ``b`` of the scoring function (b = 3 in C3, b = 1 is
  the linear scoring Figure 4 argues against);
* the **concurrency-compensation weight** ``w`` (set to the number of clients
  in the paper; 0 disables the compensation entirely);
* **rate control** (C3 with the ranking only, no rate limiter/backpressure).
"""

from __future__ import annotations

import numpy as np

from ..core.config import C3Config
from ..simulator import SimulationConfig, run_simulation
from .base import ExperimentResult, registry

__all__ = ["run_exponent_ablation", "run_concurrency_ablation", "run_rate_control_ablation"]

_DEFAULT_SIM = dict(
    num_servers=30,
    num_clients=90,
    num_requests=5_000,
    utilization=0.7,
    fluctuation_interval_ms=200.0,
)


def _run_c3(config_overrides: dict, c3_config: C3Config, seed: int = 0) -> dict:
    params = dict(_DEFAULT_SIM)
    params.update(config_overrides)
    sim_config = SimulationConfig(strategy="C3", c3_config=c3_config, seed=seed, **params)
    summary = run_simulation(sim_config).summary
    return summary.as_dict()


@registry.register("ablation_exponent", "Scoring-function exponent ablation (b = 1, 2, 3, 4)")
def run_exponent_ablation(
    exponents: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0),
    num_clients: int = 90,
    seeds: tuple[int, ...] = (0,),
    **sim_overrides,
) -> ExperimentResult:
    """Sweep the queue-penalty exponent ``b`` of the scoring function."""
    rows = []
    data = {}
    for exponent in exponents:
        metrics = []
        for seed in seeds:
            c3_config = C3Config(score_exponent=exponent).with_clients(num_clients)
            metrics.append(_run_c3({**sim_overrides, "num_clients": num_clients}, c3_config, seed))
        averaged = {k: float(np.mean([m[k] for m in metrics])) for k in metrics[0]}
        rows.append([exponent, averaged["median"], averaged["p95"], averaged["p99"], averaged["p99.9"]])
        data[exponent] = averaged
    return ExperimentResult(
        experiment_id="ablation_exponent",
        title="C3 latency (ms) as a function of the scoring exponent b",
        headers=["exponent b", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=[
            "The paper argues b = 3 balances preferring fast servers against robustness to "
            "service-time changes; b = 1 reproduces the linear scoring that builds long queues at "
            "momentarily-fast servers.",
        ],
        data=data,
    )


@registry.register("ablation_concurrency", "Concurrency-compensation weight ablation (w = 0, 1, n)")
def run_concurrency_ablation(
    num_clients: int = 90,
    seeds: tuple[int, ...] = (0,),
    **sim_overrides,
) -> ExperimentResult:
    """Sweep the concurrency-compensation weight ``w`` in the queue estimate."""
    weights = [("w = 0 (off)", 0.0), ("w = 1", 1.0), (f"w = n ({num_clients})", float(num_clients))]
    rows = []
    data = {}
    for label, weight in weights:
        metrics = []
        for seed in seeds:
            c3_config = C3Config(concurrency_weight=weight)
            metrics.append(_run_c3({**sim_overrides, "num_clients": num_clients}, c3_config, seed))
        averaged = {k: float(np.mean([m[k] for m in metrics])) for k in metrics[0]}
        rows.append([label, averaged["median"], averaged["p95"], averaged["p99"], averaged["p99.9"]])
        data[label] = averaged
    return ExperimentResult(
        experiment_id="ablation_concurrency",
        title="C3 latency (ms) as a function of the concurrency-compensation weight",
        headers=["weight", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=[
            "The paper sets w to the number of clients so that clients with more outstanding "
            "requests project larger queues and back off, providing robustness to synchronisation.",
        ],
        data=data,
    )


@registry.register("ablation_rate_control", "Rate control on/off ablation")
def run_rate_control_ablation(
    num_clients: int = 90,
    seeds: tuple[int, ...] = (0,),
    utilization: float = 0.85,
    **sim_overrides,
) -> ExperimentResult:
    """Compare full C3 against ranking-only C3 (no rate control/backpressure).

    The difference is most visible near saturation, so the default
    utilisation is higher than in the other ablations.
    """
    variants = [
        ("C3 (ranking + rate control)", True),
        ("C3 ranking only", False),
    ]
    rows = []
    data = {}
    for label, enabled in variants:
        metrics = []
        for seed in seeds:
            c3_config = C3Config(rate_control_enabled=enabled).with_clients(num_clients)
            metrics.append(
                _run_c3(
                    {**sim_overrides, "num_clients": num_clients, "utilization": utilization},
                    c3_config,
                    seed,
                )
            )
        averaged = {k: float(np.mean([m[k] for m in metrics])) for k in metrics[0]}
        rows.append([label, averaged["median"], averaged["p95"], averaged["p99"], averaged["p99.9"]])
        data[label] = averaged
    return ExperimentResult(
        experiment_id="ablation_rate_control",
        title=f"C3 latency (ms) with and without rate control (utilization {utilization:.0%})",
        headers=["variant", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=[
            "Rate control bounds the combined demand on a single server; the RR baseline of "
            "Figure 14 isolates the complementary question (rate control without ranking).",
        ],
        data=data,
    )
