"""Ablation studies of C3's design choices (DESIGN.md §5).

The paper motivates three design choices that these ablations probe directly
on the flat simulator:

* the **cubic exponent** ``b`` of the scoring function (b = 3 in C3, b = 1 is
  the linear scoring Figure 4 argues against);
* the **concurrency-compensation weight** ``w`` (set to the number of clients
  in the paper; 0 disables the compensation entirely);
* **rate control** (C3 with the ranking only, no rate limiter/backpressure).

Each ablation is a *strategy parameter sweep*: the variants are expressed as
:class:`~repro.strategies.StrategySpec` strings (``"C3:b=2"``,
``"C3:rate_control_enabled=false"``) gridded through
:func:`~repro.experiments.common.sweep_flat`, so they inherit process
pooling, per-trial caching and seed aggregation from the sweep runner like
every other grid dimension — no bespoke loops.
"""

from __future__ import annotations

from typing import Sequence

from ..runner import SweepRunner
from ..simulator import SimulationConfig
from ..strategies import StrategySpec
from .base import ExperimentResult, registry
from .common import sweep_flat

__all__ = ["run_exponent_ablation", "run_concurrency_ablation", "run_rate_control_ablation"]

_DEFAULT_SIM = dict(
    num_servers=30,
    num_clients=90,
    num_requests=5_000,
    utilization=0.7,
    fluctuation_interval_ms=200.0,
)

#: Aggregate metrics reported per variant, in column order.
_METRIC_COLUMNS = (("median", "median"), ("p95", "p95"), ("p99", "p99"), ("p999", "p99.9"))


def _c3_param_sweep(
    variants: Sequence[tuple[str, str]],
    seeds: Sequence[int],
    runner: SweepRunner | None,
    sim_params: dict,
) -> tuple[list[list], dict]:
    """Sweep labelled C3 param specs and reduce each to its metric row.

    ``variants`` is ``[(label, spec string), ...]``; the sweep grids the
    specs on the ``strategy`` axis (replicated across ``seeds``) and each
    label's row/data reports the seed-averaged latency metrics.
    """
    base = SimulationConfig(**sim_params)
    grid = {"strategy": tuple(spec for _, spec in variants)}
    result = sweep_flat(base, grid, seeds, runner=runner)
    by_strategy = {point.params["strategy"]: point for point in result.aggregates()}

    rows: list[list] = []
    data: dict = {}
    for label, spec in variants:
        point = by_strategy[StrategySpec.parse(spec).canonical()]
        metrics = {name: point.metrics[key].mean for key, name in _METRIC_COLUMNS}
        metrics["throughput_rps"] = point.metrics["throughput_rps"].mean
        rows.append([label] + [metrics[name] for _, name in _METRIC_COLUMNS])
        data[label] = metrics
    return rows, data


@registry.register("ablation_exponent", "Scoring-function exponent ablation (b = 1, 2, 3, 4)")
def run_exponent_ablation(
    exponents: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0),
    num_clients: int = 90,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
    **sim_overrides,
) -> ExperimentResult:
    """Sweep the queue-penalty exponent ``b`` of the scoring function."""
    variants = [(exponent, f"C3:b={exponent}") for exponent in exponents]
    rows, data = _c3_param_sweep(
        variants,
        seeds,
        runner,
        {**_DEFAULT_SIM, **sim_overrides, "num_clients": num_clients},
    )
    return ExperimentResult(
        experiment_id="ablation_exponent",
        title="C3 latency (ms) as a function of the scoring exponent b",
        headers=["exponent b", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=[
            "The paper argues b = 3 balances preferring fast servers against robustness to "
            "service-time changes; b = 1 reproduces the linear scoring that builds long queues at "
            "momentarily-fast servers.",
        ],
        data=data,
    )


@registry.register("ablation_concurrency", "Concurrency-compensation weight ablation (w = 0, 1, n)")
def run_concurrency_ablation(
    num_clients: int = 90,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
    **sim_overrides,
) -> ExperimentResult:
    """Sweep the concurrency-compensation weight ``w`` in the queue estimate."""
    variants = [
        ("w = 0 (off)", "C3:w=0"),
        ("w = 1", "C3:w=1"),
        # w = n is the spec default (concurrency_weight=None -> number of
        # clients), so the bare name is the paper's configuration.
        (f"w = n ({num_clients})", "C3"),
    ]
    rows, data = _c3_param_sweep(
        variants,
        seeds,
        runner,
        {**_DEFAULT_SIM, **sim_overrides, "num_clients": num_clients},
    )
    return ExperimentResult(
        experiment_id="ablation_concurrency",
        title="C3 latency (ms) as a function of the concurrency-compensation weight",
        headers=["weight", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=[
            "The paper sets w to the number of clients so that clients with more outstanding "
            "requests project larger queues and back off, providing robustness to synchronisation.",
        ],
        data=data,
    )


@registry.register("ablation_rate_control", "Rate control on/off ablation")
def run_rate_control_ablation(
    num_clients: int = 90,
    seeds: tuple[int, ...] = (0,),
    utilization: float = 0.85,
    runner: SweepRunner | None = None,
    **sim_overrides,
) -> ExperimentResult:
    """Compare full C3 against ranking-only C3 (no rate control/backpressure).

    The difference is most visible near saturation, so the default
    utilisation is higher than in the other ablations.
    """
    variants = [
        ("C3 (ranking + rate control)", "C3"),
        ("C3 ranking only", "C3:rate_control_enabled=false"),
    ]
    rows, data = _c3_param_sweep(
        variants,
        seeds,
        runner,
        {
            **_DEFAULT_SIM,
            **sim_overrides,
            "num_clients": num_clients,
            "utilization": utilization,
        },
    )
    return ExperimentResult(
        experiment_id="ablation_rate_control",
        title=f"C3 latency (ms) with and without rate control (utilization {utilization:.0%})",
        headers=["variant", "median", "p95", "p99", "p99.9"],
        rows=rows,
        notes=[
            "Rate control bounds the combined demand on a single server; the RR baseline of "
            "Figure 14 isolates the complementary question (rate control without ranking).",
        ],
        data=data,
    )
