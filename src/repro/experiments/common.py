"""Shared experiment runners (cluster workload comparisons).

Figures 6, 7 and 8 all come from the same set of EC2 runs (three workload
mixes × {C3, Dynamic Snitching}); :func:`run_workload_comparison` is the
shared runner those experiment modules use, with scaled-down defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_cluster
from ..simulator.metrics import SimulationResult

__all__ = ["ClusterScale", "run_workload_comparison", "run_single_cluster"]


@dataclass(frozen=True, slots=True)
class ClusterScale:
    """Scaled-down deployment knobs shared by the cluster experiments.

    The paper uses 15 nodes, 120 (or 210) YCSB generators, 10 M operations
    per measurement and five repetitions.  The defaults here use the same
    node count but fewer generators, a few simulated seconds and one seed so
    the whole benchmark suite finishes in minutes on a laptop.
    """

    num_nodes: int = 15
    num_generators: int = 60
    duration_ms: float = 2_000.0
    num_keys: int = 10_000
    seed: int = 1
    disk: str = "hdd"

    def to_config(self, strategy: str, workload_mix: str, **overrides) -> ClusterConfig:
        """Build a :class:`ClusterConfig` for one strategy/mix combination."""
        params = dict(
            num_nodes=self.num_nodes,
            num_generators=self.num_generators,
            duration_ms=self.duration_ms,
            num_keys=self.num_keys,
            seed=self.seed,
            disk=self.disk,
            strategy=strategy,
            workload_mix=workload_mix,
        )
        params.update(overrides)
        return ClusterConfig(**params)


def run_single_cluster(
    strategy: str,
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
    **overrides,
) -> SimulationResult:
    """Run one cluster scenario."""
    scale = scale or ClusterScale()
    return run_cluster(scale.to_config(strategy, workload_mix, **overrides))


def run_workload_comparison(
    strategies: tuple[str, ...] = ("C3", "DS"),
    mixes: tuple[str, ...] = ("read_heavy", "read_only", "update_heavy"),
    scale: ClusterScale | None = None,
    **overrides,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (mix, strategy) combination and return their results.

    Returns a dict keyed by ``(workload_mix, strategy)``.
    """
    scale = scale or ClusterScale()
    results: dict[tuple[str, str], SimulationResult] = {}
    for mix in mixes:
        for strategy in strategies:
            results[(mix, strategy)] = run_single_cluster(
                strategy, workload_mix=mix, scale=scale, **overrides
            )
    return results
