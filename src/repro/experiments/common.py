"""Shared experiment runners (flat-simulator sweeps and cluster comparisons).

Two families of experiments share infrastructure here:

* Flat-simulator sweeps (figures 14, 15, …) expand a parameter grid across
  seeds; :func:`sweep_flat` routes them through the
  :mod:`repro.runner` subsystem, so every such experiment inherits process
  pooling, per-trial caching and CI aggregation from a single call.
* Cluster workload comparisons (figures 6, 7, 8 — three workload mixes ×
  {C3, Dynamic Snitching} on the same EC2-style deployment);
  :func:`run_workload_comparison` is their shared runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..cluster import ClusterConfig, run_cluster
from ..runner import SweepRunner, SweepResult, SweepSpec
from ..simulator import SimulationConfig
from ..simulator.metrics import SimulationResult

__all__ = [
    "ClusterScale",
    "run_scenario_comparison",
    "run_workload_comparison",
    "run_single_cluster",
    "sweep_flat",
]


def sweep_flat(
    base: SimulationConfig,
    grid: Mapping[str, Sequence[Any]],
    seeds: Sequence[int],
    runner: SweepRunner | None = None,
    metrics_mode: str | None = None,
) -> SweepResult:
    """Run a flat-simulator parameter grid × seeds through the sweep runner.

    Experiments default to a serial, cache-less runner so a bare
    ``registry.run("fig14")`` behaves exactly like the pre-runner code path;
    passing ``runner=SweepRunner(max_workers=8, cache_dir=...)`` (directly or
    via ``registry.run(..., runner=...)``) turns the same experiment into a
    pooled, cached sweep without touching the experiment module.

    ``metrics_mode`` overrides the base config's latency-collection mode for
    every trial — ``"streaming"`` turns any figure sweep into a fixed-memory
    scale-mode run (histogram summaries within the configured error bound,
    pooled percentiles via bucket-merge) without touching the experiment.
    """
    if metrics_mode is not None:
        base = base.copy(metrics_mode=metrics_mode)
    runner = runner or SweepRunner(parallel=False)
    return runner.run(SweepSpec(base=base, grid=grid, seeds=seeds))


def run_scenario_comparison(
    scenario: str,
    strategies: Sequence[str],
    num_servers: int,
    num_clients: int,
    num_requests: int,
    utilization: float,
    seeds: Sequence[int],
    runner: SweepRunner | None = None,
    reference: str = "baseline",
    failure_detector: str = "binary",
    hedging: str | None = None,
) -> dict[tuple[str, str], dict]:
    """Sweep ``{reference, scenario} × strategies`` and aggregate per point.

    The shared core of the scenario-engine experiments (``gc_storm``,
    ``crash_recovery``): a flat-simulator grid comparing every strategy
    under a perturbation scenario against an unperturbed reference, with
    the legacy fluctuation disabled so the scenario is the only dynamic.
    Returns ``{(scenario, strategy): {median, p99, p999, throughput_rps}}``.
    ``scenario == reference`` degenerates to a single-scenario sweep rather
    than running the reference twice.

    ``failure_detector`` and ``hedging`` (control specs, see
    :mod:`repro.controls`) apply to every point of the grid — e.g.
    ``failure_detector="phi:threshold=8"`` reruns a crash-recovery
    comparison with phi-accrual suspicion instead of ground-truth crash
    knowledge.  The defaults reproduce the legacy sweep byte-for-byte.
    """
    base = SimulationConfig(
        num_servers=num_servers,
        num_clients=num_clients,
        num_requests=num_requests,
        utilization=utilization,
        fluctuation_enabled=False,
        failure_detector=failure_detector,
        hedging=hedging,
    )
    scenarios = (reference,) if scenario == reference else (reference, scenario)
    grid = {"scenario": scenarios, "strategy": tuple(strategies)}
    results: dict[tuple[str, str], dict] = {}
    for point in sweep_flat(base, grid, seeds, runner=runner).aggregates():
        key = (point.params["scenario"], point.params["strategy"])
        results[key] = {
            "median": point.metrics["median"].mean,
            "p99": point.metrics["p99"].mean,
            "p999": point.metrics["p999"].mean,
            "throughput_rps": point.metrics["throughput_rps"].mean,
        }
    return results


@dataclass(frozen=True, slots=True)
class ClusterScale:
    """Scaled-down deployment knobs shared by the cluster experiments.

    The paper uses 15 nodes, 120 (or 210) YCSB generators, 10 M operations
    per measurement and five repetitions.  The defaults here use the same
    node count but fewer generators, a few simulated seconds and one seed so
    the whole benchmark suite finishes in minutes on a laptop.
    """

    num_nodes: int = 15
    num_generators: int = 60
    duration_ms: float = 2_000.0
    num_keys: int = 10_000
    seed: int = 1
    disk: str = "hdd"

    def to_config(self, strategy: str, workload_mix: str, **overrides) -> ClusterConfig:
        """Build a :class:`ClusterConfig` for one strategy/mix combination."""
        params = dict(
            num_nodes=self.num_nodes,
            num_generators=self.num_generators,
            duration_ms=self.duration_ms,
            num_keys=self.num_keys,
            seed=self.seed,
            disk=self.disk,
            strategy=strategy,
            workload_mix=workload_mix,
        )
        params.update(overrides)
        return ClusterConfig(**params)


def run_single_cluster(
    strategy: str,
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
    **overrides,
) -> SimulationResult:
    """Run one cluster scenario."""
    scale = scale or ClusterScale()
    return run_cluster(scale.to_config(strategy, workload_mix, **overrides))


def run_workload_comparison(
    strategies: tuple[str, ...] = ("C3", "DS"),
    mixes: tuple[str, ...] = ("read_heavy", "read_only", "update_heavy"),
    scale: ClusterScale | None = None,
    **overrides,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (mix, strategy) combination and return their results.

    Returns a dict keyed by ``(workload_mix, strategy)``.
    """
    scale = scale or ClusterScale()
    results: dict[tuple[str, str], SimulationResult] = {}
    for mix in mixes:
        for strategy in strategies:
            results[(mix, strategy)] = run_single_cluster(
                strategy, workload_mix=mix, scale=scale, **overrides
            )
    return results
