"""Figure 2 — load oscillations caused by Dynamic Snitching.

The paper records the number of read requests a single Cassandra node
services per 100 ms window and finds that, under Dynamic Snitching, the most
heavily utilised node swings between 0 and ~500 requests per window —
symptomatic of herd behaviour.  The experiment runs the cluster substrate
under DS (and, for contrast, C3) and reports oscillation metrics of the
hottest node's load series.
"""

from __future__ import annotations

from ..analysis.oscillation import burstiness, load_conditioning, oscillation_score
from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("fig02", "Load oscillations under Dynamic Snitching (Figure 2)")
def run(
    strategies: tuple[str, ...] = ("DS", "C3"),
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Measure per-100 ms load swings on the hottest node per strategy."""
    scale = scale or ClusterScale()
    rows = []
    data = {}
    for strategy in strategies:
        result = run_single_cluster(strategy, workload_mix=workload_mix, scale=scale)
        series = result.hottest_server_series()
        report = load_conditioning(series)
        rows.append(
            [
                strategy,
                report.minimum,
                report.median,
                report.p99,
                report.maximum,
                oscillation_score(series),
                burstiness(series),
            ]
        )
        data[strategy] = {"series": series, "report": report, "result": result}
    return ExperimentResult(
        experiment_id="fig02",
        title="Reads served per 100 ms by the most heavily utilised node",
        headers=[
            "strategy",
            "min/window",
            "median/window",
            "p99/window",
            "max/window",
            "oscillation score",
            "Fano factor",
        ],
        rows=rows,
        notes=[
            "Paper: under DS the hottest node's per-100 ms load ranges from 0 up to ~500 even under "
            "stable conditions (herd behaviour); C3 keeps the series in a narrow band.",
            "The oscillation score is the mean window-to-window swing normalised by the mean load; "
            "the Fano factor is variance/mean of the per-window counts.",
        ],
        data=data,
    )
