"""Experiment harness: one module per paper figure/table plus ablations.

Importing this package registers every experiment into
:data:`repro.experiments.registry`; use :func:`run_experiment` (or the
``c3-repro`` CLI) to run one by id.
"""

from .base import ExperimentResult, ExperimentRegistry, registry
from .common import ClusterScale, run_single_cluster, run_workload_comparison, sweep_flat

# Importing the modules registers their experiments.
from . import (  # noqa: F401  (imported for registration side effects)
    ablations,
    crash_recovery,
    fig01_motivating,
    fig02_oscillation,
    fig04_scoring,
    fig05_cubic_curve,
    fig06_latency,
    fig07_throughput,
    fig08_load_conditioning,
    fig09_load_timeseries,
    fig10_higher_load,
    fig11_dynamic_workload,
    fig12_ssd,
    fig13_rate_adaptation,
    fig14_fluctuation,
    fig15_skew,
    gc_storm,
    skewed_records,
    speculative_retry,
    table1_survey,
)

__all__ = [
    "ClusterScale",
    "ExperimentRegistry",
    "ExperimentResult",
    "list_experiments",
    "registry",
    "run_experiment",
    "run_single_cluster",
    "run_workload_comparison",
    "sweep_flat",
]


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id (see DESIGN.md for the index)."""
    return registry.run(experiment_id, **kwargs)


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return registry.ids()
