"""Figure 4 — linear vs cubic scoring functions.

For two servers with service times 4 ms and 20 ms, the figure compares the
queue-size estimate at which a client would consider the two servers equally
attractive: under a linear score the fast server must accumulate a 5× longer
queue before the slow server is preferred again; under the cubic score the
required imbalance shrinks to the cube root of the service-time ratio.
"""

from __future__ import annotations

import numpy as np

from ..core.scoring import cubic_score
from .base import ExperimentResult, registry

__all__ = ["run", "score_curve", "equal_score_queue"]


def score_curve(
    service_time_ms: float,
    queue_estimates: np.ndarray,
    exponent: float,
) -> np.ndarray:
    """Score as a function of the queue estimate (response-time term = 0)."""
    return np.array(
        [
            cubic_score(
                response_time=0.0,
                queue_estimate=float(q),
                service_time=service_time_ms,
                exponent=exponent,
            )
            for q in queue_estimates
        ]
    )


def equal_score_queue(
    fast_service_ms: float, slow_service_ms: float, slow_queue: float, exponent: float
) -> float:
    """Queue estimate at the fast server giving the same score as the slow one.

    Solves ``q_fast^b / μ_fast = q_slow^b / μ_slow`` for ``q_fast``:
    ``q_fast = q_slow * (μ_fast / μ_slow)^(1/b) = q_slow * (slow/fast)^(... )``.
    """
    if min(fast_service_ms, slow_service_ms, slow_queue) <= 0:
        raise ValueError("inputs must be positive")
    ratio = slow_service_ms / fast_service_ms
    return slow_queue * ratio ** (1.0 / exponent)


@registry.register("fig04", "Linear vs cubic scoring functions (Figure 4)")
def run(
    fast_service_ms: float = 4.0,
    slow_service_ms: float = 20.0,
    slow_queue: float = 20.0,
    max_queue: int = 100,
) -> ExperimentResult:
    """Reproduce the linear-vs-cubic comparison of Figure 4."""
    queues = np.arange(0, max_queue + 1, dtype=float)
    curves = {
        (exponent, service): score_curve(service, queues, exponent)
        for exponent in (1.0, 3.0)
        for service in (fast_service_ms, slow_service_ms)
    }
    rows = []
    for exponent in (1.0, 3.0):
        q_equal = equal_score_queue(fast_service_ms, slow_service_ms, slow_queue, exponent)
        rows.append(
            [
                "linear (b=1)" if exponent == 1.0 else "cubic (b=3)",
                slow_queue,
                q_equal,
                q_equal / slow_queue,
            ]
        )
    return ExperimentResult(
        experiment_id="fig04",
        title="Queue imbalance tolerated before the slow replica is preferred again",
        headers=[
            "scoring function",
            "slow-server queue estimate",
            "fast-server queue for equal score",
            "imbalance ratio",
        ],
        rows=rows,
        notes=[
            "Paper: with a linear score a queue estimate of 20 at the 20 ms server is only matched "
            "by a queue of 100 at the 4 ms server; the cubic score shrinks the required imbalance "
            "to 20·(20/4)^(1/3) ≈ 34, penalising long queues.",
        ],
        data={"queues": queues, "curves": curves},
    )
