"""Figure 9 — per-node load over time, C3 vs Dynamic Snitching.

The figure shows the number of reads received per 100 ms by a single node
over the course of a run: with C3 coordinators adjust their sending rates to
the peer's perceived capacity and the profile is smooth; with DS it shows
synchronised vertical bursts and oscillations.
"""

from __future__ import annotations

import numpy as np

from ..analysis.oscillation import burstiness, oscillation_score
from ..analysis.timeseries import moving_median
from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("fig09", "Per-node load over time, C3 vs DS (Figure 9)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the load-vs-time comparison of Figure 9."""
    scale = scale or ClusterScale()
    rows = []
    data = {}
    for strategy in strategies:
        result = run_single_cluster(strategy, workload_mix=workload_mix, scale=scale)
        series = result.hottest_server_series().astype(float)
        smoothed = moving_median(series, window=5) if series.size else series
        rows.append(
            [
                strategy,
                float(series.mean()) if series.size else 0.0,
                float(series.std()) if series.size else 0.0,
                float(series.max()) if series.size else 0.0,
                oscillation_score(series),
                burstiness(series),
                float(np.ptp(smoothed)) if smoothed.size else 0.0,
            ]
        )
        data[strategy] = {"series": series, "smoothed": smoothed, "result": result}
    return ExperimentResult(
        experiment_id="fig09",
        title="Reads received per 100 ms by the hottest node over time",
        headers=[
            "strategy",
            "mean/window",
            "std/window",
            "max/window",
            "oscillation score",
            "Fano factor",
            "smoothed peak-to-peak",
        ],
        rows=rows,
        notes=[
            "Paper: C3 produces a smoother load profile free of oscillations, with per-window load "
            "lower than DS because requests are spread over more servers.",
        ],
        data=data,
    )
