"""GC-storm scenario — C3 vs baselines under frequent long pauses.

The paper's motivation (§1–2) names garbage-collection pauses as a primary
source of the performance fluctuations adaptive replica selection must
absorb.  This experiment drives the flat simulator through the scenario
engine's ``gc-storm`` scenario (Poisson-arriving multi-tens-of-ms pauses on
every server) and compares C3 against least-outstanding-requests and
Cassandra's dynamic snitch, with the unperturbed ``baseline`` scenario as
the reference point.  The interesting quantity is how much each strategy's
tail inflates between baseline and storm.
"""

from __future__ import annotations

from ..runner import SweepRunner
from .base import ExperimentResult, registry
from .common import run_scenario_comparison

__all__ = ["run"]

_DEFAULT_STRATEGIES = ("C3", "LOR", "DS")


@registry.register("gc_storm", "Tail latency under GC-pause storms (scenario engine)")
def run(
    strategies: tuple[str, ...] = _DEFAULT_STRATEGIES,
    scenario: str = "gc-storm",
    num_servers: int = 10,
    num_clients: int = 40,
    num_requests: int = 6_000,
    utilization: float = 0.6,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Compare strategies under ``scenario`` against the unperturbed baseline."""
    results = run_scenario_comparison(
        scenario, strategies, num_servers, num_clients, num_requests,
        utilization, seeds, runner=runner,
    )
    rows = []
    for (scenario_name, strategy), stats in results.items():
        baseline_p99 = results[("baseline", strategy)]["p99"]
        inflation = stats["p99"] / baseline_p99 if baseline_p99 > 0 else float("nan")
        rows.append(
            [
                scenario_name,
                strategy,
                stats["median"],
                stats["p99"],
                stats["p999"],
                inflation,
            ]
        )
    return ExperimentResult(
        experiment_id="gc_storm",
        title=f"Tail latency under the {scenario!r} scenario vs baseline",
        headers=["scenario", "strategy", "median (ms)", "p99 (ms)", "p99.9 (ms)", "p99 vs baseline"],
        rows=rows,
        notes=[
            "Expectation (paper §1–2, §6): feedback-driven C3 keeps its p99 inflation under a "
            "storm well below queue-blind strategies, because the cubic replica ranking walks "
            "around paused servers while LOR/DS keep feeding them until their queues betray them.",
            f"Scenario engine: scaled to {num_servers} servers, {num_requests} requests/run, "
            f"seeds={list(seeds)}; rerun with --scenario to swap in any registered scenario.",
        ],
        data=results,
    )
