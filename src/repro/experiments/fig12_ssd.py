"""Figure 12 — C3 vs Dynamic Snitching on SSD-backed nodes.

With SSD storage the cluster sustains a higher load (the paper uses 210
generators on m3.xlarge instances); latencies drop for both strategies, but
C3 still improves the 99.9th percentile by more than 3× and keeps the
p99→p99.9 gap under ~5 ms, while also raising throughput by ~50 %.
"""

from __future__ import annotations

from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("fig12", "Latency on SSD-backed nodes, C3 vs DS (Figure 12)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    generators: int = 105,
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the SSD experiment of Figure 12."""
    scale = scale or ClusterScale()
    rows = []
    data = {}
    for strategy in strategies:
        result = run_single_cluster(
            strategy,
            workload_mix=workload_mix,
            scale=scale,
            disk="ssd",
            num_generators=generators,
        )
        summary = result.read_summary
        rows.append(
            [
                strategy,
                summary.mean,
                summary.median,
                summary.p95,
                summary.p99,
                summary.p999,
                summary.p999 - summary.p99,
                result.throughput_rps,
            ]
        )
        data[strategy] = result

    notes = [
        "Paper: on SSD-backed instances both strategies are much faster than on spinning disks, "
        "but C3 still improves the 99.9th percentile by more than 3x, keeps the p99-to-p99.9 gap "
        "under ~5 ms (vs ~20 ms for DS), improves the mean by ~3 ms and the throughput by ~50 %.",
    ]
    if "C3" in data and "DS" in data:
        c3, ds = data["C3"].read_summary, data["DS"].read_summary
        if c3.p999 > 0:
            notes.append(f"Reproduced: p99.9 improvement DS/C3 = {ds.p999 / c3.p999:.2f}x.")
        if data["DS"].throughput_rps > 0:
            notes.append(
                "Reproduced: throughput C3/DS = "
                f"{data['C3'].throughput_rps / data['DS'].throughput_rps:.2f}x."
            )
    return ExperimentResult(
        experiment_id="fig12",
        title=f"Read latencies (ms) and throughput with SSD storage ({generators} generators)",
        headers=["strategy", "mean", "median", "p95", "p99", "p99.9", "p99.9 - p99", "throughput (ops/s)"],
        rows=rows,
        notes=notes,
        data=data,
    )
