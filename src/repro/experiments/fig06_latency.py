"""Figure 6 — Cassandra's read-latency profile under C3 vs Dynamic Snitching.

Three workload mixes (read-heavy, read-only, update-heavy) are run against
the cluster substrate with both strategies; the experiment reports the mean,
median, 95th, 99th and 99.9th percentile read latencies plus the
tail-to-median spread the paper highlights (24.5 ms for C3 vs 83.9 ms for DS
on the read-heavy workload — a >3× improvement).
"""

from __future__ import annotations

from ..analysis.ecdf import ecdf
from .base import ExperimentResult, registry
from .common import ClusterScale, run_workload_comparison

__all__ = ["run"]


@registry.register("fig06", "Read latency profile per workload, C3 vs DS (Figure 6)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    mixes: tuple[str, ...] = ("read_heavy", "read_only", "update_heavy"),
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the latency-profile comparison of Figure 6."""
    scale = scale or ClusterScale()
    results = run_workload_comparison(strategies=strategies, mixes=mixes, scale=scale)

    rows = []
    data = {}
    for mix in mixes:
        for strategy in strategies:
            result = results[(mix, strategy)]
            summary = result.read_summary
            rows.append(
                [
                    mix,
                    strategy,
                    summary.mean,
                    summary.median,
                    summary.p95,
                    summary.p99,
                    summary.p999,
                    summary.tail_span,
                ]
            )
            data[(mix, strategy)] = {
                "summary": summary,
                "ecdf": ecdf(result.read_latencies_ms),
                "result": result,
            }

    notes = [
        "Paper: C3 improves mean, median and tail latencies for every mix; on the read-heavy "
        "workload the p99.9-minus-median spread shrinks from 83.91 ms (DS) to 24.5 ms (C3), "
        "and by ~2.6x for the other two mixes.",
    ]
    for mix in mixes:
        if ("C3" in strategies) and ("DS" in strategies):
            c3_span = data[(mix, "C3")]["summary"].tail_span
            ds_span = data[(mix, "DS")]["summary"].tail_span
            if c3_span > 0:
                notes.append(f"Reproduced {mix}: spread improvement DS/C3 = {ds_span / c3_span:.2f}x.")
    return ExperimentResult(
        experiment_id="fig06",
        title="Read latencies (ms) per workload mix and strategy",
        headers=["workload", "strategy", "mean", "median", "p95", "p99", "p99.9", "p99.9 - median"],
        rows=rows,
        notes=notes,
        data=data,
    )
