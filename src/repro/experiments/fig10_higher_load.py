"""Figure 10 — performance degradation at higher system utilisation.

The paper increases the number of YCSB generators from 120 to 210 (+75 %)
and observes that C3's latency profile degrades roughly proportionally to the
added load, whereas Dynamic Snitching's p95/p99 degrade by up to 150 % and
its mean is 70 % higher than C3's under the heavier load.
"""

from __future__ import annotations

from .base import ExperimentResult, registry
from .common import ClusterScale, run_single_cluster

__all__ = ["run"]


@registry.register("fig10", "Degradation when the generator count rises by 75% (Figure 10)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    base_generators: int = 60,
    load_increase: float = 0.75,
    workload_mix: str = "read_heavy",
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the higher-utilisation comparison of Figure 10."""
    scale = scale or ClusterScale()
    high_generators = int(round(base_generators * (1.0 + load_increase)))
    rows = []
    data = {}
    for strategy in strategies:
        summaries = {}
        for label, generators in (("base", base_generators), ("high", high_generators)):
            result = run_single_cluster(
                strategy,
                workload_mix=workload_mix,
                scale=scale,
                num_generators=generators,
            )
            summaries[label] = result.read_summary
            data[(strategy, label)] = result
        base, high = summaries["base"], summaries["high"]
        for metric, base_v, high_v in (
            ("mean", base.mean, high.mean),
            ("p95", base.p95, high.p95),
            ("p99", base.p99, high.p99),
            ("p99.9", base.p999, high.p999),
        ):
            degradation = (high_v / base_v - 1.0) * 100.0 if base_v > 0 else 0.0
            rows.append([strategy, metric, base_v, high_v, degradation])

    return ExperimentResult(
        experiment_id="fig10",
        title=(
            f"Read latency (ms) when generators increase from {base_generators} to {high_generators} "
            f"(+{load_increase * 100:.0f}%)"
        ),
        headers=["strategy", "metric", "base load", "high load", "degradation (%)"],
        rows=rows,
        notes=[
            "Paper: for a 75 % increase in demand C3 degrades roughly proportionally even at the "
            "99.9th percentile, while DS degrades by ~82 % at the median/p99.9 and up to 150 % at "
            "p95/p99, with a mean 70 % higher than C3's.",
        ],
        data=data,
    )
