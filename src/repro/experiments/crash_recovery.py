"""Crash/recovery scenario — routing around failed replicas.

Exercises the scenario engine's ``crash-recovery`` scenario: servers crash
on a staggered schedule and restart later, while clients filter dead
replicas out of the candidate set and park requests whose whole replica
group is down.  Strategies are compared on how gracefully the tail degrades
through the outages and how quickly completed throughput recovers; the
``baseline`` scenario provides the no-failure reference.
"""

from __future__ import annotations

from ..runner import SweepRunner
from .base import ExperimentResult, registry
from .common import run_scenario_comparison

__all__ = ["run"]

_DEFAULT_STRATEGIES = ("C3", "LOR", "DS")


@registry.register("crash_recovery", "Tail latency through server crash + restart windows (scenario engine)")
def run(
    strategies: tuple[str, ...] = _DEFAULT_STRATEGIES,
    scenario: str = "crash-recovery",
    num_servers: int = 10,
    num_clients: int = 40,
    num_requests: int = 6_000,
    utilization: float = 0.6,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Compare strategies across crash/restart windows vs the baseline."""
    results = run_scenario_comparison(
        scenario, strategies, num_servers, num_clients, num_requests,
        utilization, seeds, runner=runner,
    )
    rows = []
    for (scenario_name, strategy), stats in results.items():
        baseline_tp = results[("baseline", strategy)]["throughput_rps"]
        retained = stats["throughput_rps"] / baseline_tp if baseline_tp > 0 else float("nan")
        rows.append(
            [
                scenario_name,
                strategy,
                stats["median"],
                stats["p99"],
                stats["throughput_rps"],
                retained,
            ]
        )
    return ExperimentResult(
        experiment_id="crash_recovery",
        title=f"Latency and throughput through the {scenario!r} scenario vs baseline",
        headers=[
            "scenario", "strategy", "median (ms)", "p99 (ms)",
            "throughput (req/s)", "throughput retained",
        ],
        rows=rows,
        notes=[
            "During each outage the survivors absorb the dead server's share of the load, so the "
            "p99 reflects both the routing detour and the post-restart queue drain; 'throughput "
            "retained' is the scenario's completed-request rate relative to the same strategy's "
            "baseline (the run is open-loop, so lost capacity shows up as elongated duration).",
            f"Scenario engine: staggered crash/restart windows from the 'crash-recovery' registry "
            f"defaults; scaled to {num_servers} servers, {num_requests} requests/run, seeds={list(seeds)}.",
        ],
        data=results,
    )
