"""Shared infrastructure for the per-figure experiment modules.

Every experiment module exposes a ``run(...)`` function with scaled-down
defaults that returns an :class:`ExperimentResult` — a named collection of
table rows that can be rendered as text (the benchmark harness prints these,
which is how a reader compares the reproduction against the paper's figures).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..analysis.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import SweepRunner

__all__ = ["ExperimentResult", "ExperimentRegistry", "registry"]


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Identifier matching DESIGN.md's per-experiment index (e.g. ``fig06``).
    title:
        Human-readable description of the reproduced artifact.
    headers / rows:
        The table that corresponds to the paper's figure/table.
    notes:
        Free-form remarks (scaling applied, qualitative comparison vs paper).
    data:
        Raw data for programmatic consumers (tests, plotting).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence]
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def to_text(self, precision: int = 2) -> str:
        """Render the result as a fixed-width text report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows, precision=precision))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def row_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by header name."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __str__(self) -> str:
        return self.to_text()


class ExperimentRegistry:
    """Registry mapping experiment ids to their ``run`` callables."""

    def __init__(self) -> None:
        self._experiments: dict[str, Callable[..., ExperimentResult]] = {}
        self._descriptions: dict[str, str] = {}

    def register(self, experiment_id: str, description: str = "") -> Callable:
        """Decorator registering a ``run`` function under ``experiment_id``."""

        def decorator(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
            if experiment_id in self._experiments:
                raise ValueError(f"experiment {experiment_id!r} is already registered")
            self._experiments[experiment_id] = fn
            self._descriptions[experiment_id] = description or (fn.__doc__ or "").strip()
            return fn

        return decorator

    def get(self, experiment_id: str) -> Callable[..., ExperimentResult]:
        """The ``run`` callable for an experiment id."""
        if experiment_id not in self._experiments:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {', '.join(sorted(self._experiments))}"
            )
        return self._experiments[experiment_id]

    def supports_param(self, experiment_id: str, name: str) -> bool:
        """Whether an experiment's ``run`` accepts the keyword ``name``."""
        return name in inspect.signature(self.get(experiment_id)).parameters

    def supports_runner(self, experiment_id: str) -> bool:
        """Whether an experiment's ``run`` accepts a sweep ``runner``.

        Simulation-sweep experiments take ``runner`` and dispatch their
        trials through :class:`~repro.runner.SweepRunner` (process pool,
        caching); analytic and cluster experiments do not.
        """
        return self.supports_param(experiment_id, "runner")

    def run(
        self, experiment_id: str, runner: "SweepRunner | None" = None, **kwargs
    ) -> ExperimentResult:
        """Run an experiment by id.

        ``runner`` is forwarded to experiments that support it (see
        :meth:`supports_runner`) and silently dropped for the rest, so one
        call site can fan a shared pooled/cached runner across the whole
        fig01–fig15 catalogue.
        """
        fn = self.get(experiment_id)
        if runner is not None and self.supports_runner(experiment_id):
            kwargs["runner"] = runner
        return fn(**kwargs)

    def ids(self) -> list[str]:
        """All registered experiment ids, sorted."""
        return sorted(self._experiments)

    def describe(self, experiment_id: str) -> str:
        """The registered description of an experiment."""
        return self._descriptions.get(experiment_id, "")


#: The global registry the experiment modules register into.
registry = ExperimentRegistry()
