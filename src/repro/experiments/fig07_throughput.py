"""Figure 7 — read throughput under C3 vs Dynamic Snitching.

Because the YCSB generators are closed-loop, lower latencies translate into
higher attainable throughput; the paper measures 26–43 % higher throughput
with C3 (and ~50 % on SSDs).  The experiment runs the same scenarios as
Figure 6 and reports operations per second.
"""

from __future__ import annotations

from .base import ExperimentResult, registry
from .common import ClusterScale, run_workload_comparison

__all__ = ["run"]


@registry.register("fig07", "Read throughput per workload, C3 vs DS (Figure 7)")
def run(
    strategies: tuple[str, ...] = ("C3", "DS"),
    mixes: tuple[str, ...] = ("read_heavy", "read_only", "update_heavy"),
    scale: ClusterScale | None = None,
) -> ExperimentResult:
    """Reproduce the throughput comparison of Figure 7."""
    scale = scale or ClusterScale()
    results = run_workload_comparison(strategies=strategies, mixes=mixes, scale=scale)

    rows = []
    data = {}
    for mix in mixes:
        throughputs = {}
        for strategy in strategies:
            result = results[(mix, strategy)]
            throughputs[strategy] = result.throughput_rps
            data[(mix, strategy)] = result
        for strategy in strategies:
            improvement = (
                throughputs[strategy] / throughputs["DS"] - 1.0
                if "DS" in throughputs and throughputs["DS"] > 0
                else 0.0
            )
            rows.append([mix, strategy, throughputs[strategy], improvement * 100.0])

    return ExperimentResult(
        experiment_id="fig07",
        title="Throughput (operations/second) per workload mix and strategy",
        headers=["workload", "strategy", "throughput (ops/s)", "vs DS (%)"],
        rows=rows,
        notes=[
            "Paper: C3 improves read throughput by 26 % (update-heavy) to 43 % (read-heavy); the "
            "read-heavy vs update-heavy throughput gap of ~75 % is consistent across strategies.",
        ],
        data=data,
    )
