"""Figure 1 — the motivating example: LOR vs an ideal allocation.

Two servers with service times of 4 ms and 10 ms; three clients each receive
a burst of four requests.  If every client balances its own outstanding
requests (LOR) the servers get an equal share (6 requests each) and the last
response arrives after 60 ms; an allocation that compensates the slower
server with a shorter queue finishes in 32 ms.

The experiment computes both allocations analytically and also replays the
LOR allocation on the discrete-event substrate with deterministic service
times, confirming the simulator agrees with the arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..simulator import EventLoop, Request, SimServer
from .base import ExperimentResult, registry

__all__ = ["run", "ideal_allocation_max_latency", "split_allocation_max_latency"]


def split_allocation_max_latency(
    service_times_ms: tuple[float, ...], requests_per_server: tuple[int, ...]
) -> float:
    """Max completion time when each server serially works its own share."""
    if len(service_times_ms) != len(requests_per_server):
        raise ValueError("need one request count per server")
    return max(st * n for st, n in zip(service_times_ms, requests_per_server))


def ideal_allocation_max_latency(service_times_ms: tuple[float, ...], total_requests: int) -> tuple[float, tuple[int, ...]]:
    """Best achievable max completion time for ``total_requests`` requests.

    Exhaustively searches the (small) allocation space, mirroring the ideal
    allocation of Figure 1 that compensates higher service times with lower
    queue lengths.
    """
    if total_requests < 0:
        raise ValueError("total_requests must be non-negative")
    n_servers = len(service_times_ms)
    if n_servers == 0:
        raise ValueError("need at least one server")

    best_latency = float("inf")
    best_alloc: tuple[int, ...] = (0,) * n_servers

    def explore(idx: int, remaining: int, alloc: list[int]) -> None:
        nonlocal best_latency, best_alloc
        if idx == n_servers - 1:
            candidate = alloc + [remaining]
            latency = split_allocation_max_latency(service_times_ms, tuple(candidate))
            if latency < best_latency:
                best_latency = latency
                best_alloc = tuple(candidate)
            return
        for count in range(remaining + 1):
            explore(idx + 1, remaining - count, alloc + [count])

    explore(0, total_requests, [])
    return best_latency, best_alloc


def _simulate_split(service_times_ms: tuple[float, ...], requests_per_server: tuple[int, ...]) -> float:
    """Replay an allocation on the event-loop substrate (deterministic)."""
    loop = EventLoop()
    completions: list[float] = []

    def on_complete(request, feedback, service_time):
        completions.append(loop.now)

    servers = [
        SimServer(
            loop,
            server_id=i,
            base_service_time_ms=st,
            concurrency=1,
            deterministic=True,
            on_complete=on_complete,
            rng=np.random.default_rng(0),
        )
        for i, st in enumerate(service_times_ms)
    ]
    for sid, count in enumerate(requests_per_server):
        for _ in range(count):
            request = Request.create(client_id=0, replica_group=(sid,), created_at=0.0)
            servers[sid].enqueue(request)
    loop.run_until_idle()
    return max(completions) if completions else 0.0


@registry.register("fig01", "LOR vs ideal allocation for a burst of requests (Figure 1)")
def run(
    service_times_ms: tuple[float, float] = (4.0, 10.0),
    clients: int = 3,
    burst_per_client: int = 4,
) -> ExperimentResult:
    """Reproduce Figure 1's arithmetic and verify it on the simulator."""
    total = clients * burst_per_client
    lor_split = tuple(total // len(service_times_ms) for _ in service_times_ms)
    lor_latency = split_allocation_max_latency(service_times_ms, lor_split)
    lor_simulated = _simulate_split(service_times_ms, lor_split)
    ideal_latency, ideal_alloc = ideal_allocation_max_latency(service_times_ms, total)
    ideal_simulated = _simulate_split(service_times_ms, ideal_alloc)

    rows = [
        ["LOR (equal split)", str(lor_split), lor_latency, lor_simulated],
        ["Ideal allocation", str(ideal_alloc), ideal_latency, ideal_simulated],
    ]
    return ExperimentResult(
        experiment_id="fig01",
        title="Least-outstanding-requests vs ideal allocation (max latency, ms)",
        headers=["allocation", "requests per server", "analytic max latency", "simulated max latency"],
        rows=rows,
        notes=[
            "Paper: LOR yields 60 ms, the ideal allocation 32 ms for (4 ms, 10 ms) servers "
            "and a 12-request burst.",
            f"Reproduced: LOR {lor_latency:.0f} ms vs ideal {ideal_latency:.0f} ms.",
        ],
        data={
            "lor_latency": lor_latency,
            "ideal_latency": ideal_latency,
            "ideal_allocation": ideal_alloc,
        },
    )
