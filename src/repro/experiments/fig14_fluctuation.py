"""Figure 14 — impact of time-varying service times (flat simulator).

The §6 sweep: servers flip between their nominal rate μ and D·μ every
``fluctuation interval`` milliseconds; the 99th-percentile latency is
reported for the oracle (ORA), C3, least-outstanding-requests (LOR) and
rate-limited round-robin (RR) at high (70 %) and low (45 %) utilisation and
for different client counts.  LOR and RR degrade as the interval grows while
C3 stays close to the oracle.
"""

from __future__ import annotations

from ..runner import SweepRunner
from ..simulator import SimulationConfig
from .base import ExperimentResult, registry
from .common import sweep_flat

__all__ = ["run", "sweep"]

_DEFAULT_INTERVALS = (10.0, 50.0, 100.0, 200.0, 300.0, 500.0)
_DEFAULT_STRATEGIES = ("ORA", "C3", "LOR", "RR")


def sweep(
    strategies: tuple[str, ...] = _DEFAULT_STRATEGIES,
    intervals_ms: tuple[float, ...] = _DEFAULT_INTERVALS,
    utilizations: tuple[float, ...] = (0.7, 0.45),
    client_counts: tuple[int, ...] = (40,),
    num_servers: int = 10,
    num_requests: int = 15_000,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
) -> dict[tuple, dict]:
    """Run the fluctuation sweep; returns {(util, clients, interval, strategy): stats}.

    The grid executes through the sweep runner (serial by default; pass a
    pooled/cached :class:`~repro.runner.SweepRunner` to parallelize).
    """
    base = SimulationConfig(num_servers=num_servers, num_requests=num_requests)
    grid = {
        "utilization": utilizations,
        "num_clients": client_counts,
        "fluctuation_interval_ms": intervals_ms,
        "strategy": strategies,
    }
    results: dict[tuple, dict] = {}
    for point in sweep_flat(base, grid, seeds, runner=runner).aggregates():
        p = point.params
        key = (p["utilization"], p["num_clients"], p["fluctuation_interval_ms"], p["strategy"])
        results[key] = {
            "p99": point.metrics["p99"].mean,
            "p999": point.metrics["p999"].mean,
            "median": point.metrics["median"].mean,
        }
    return results


@registry.register("fig14", "p99 latency vs service-time fluctuation interval (Figure 14)")
def run(
    strategies: tuple[str, ...] = _DEFAULT_STRATEGIES,
    intervals_ms: tuple[float, ...] = _DEFAULT_INTERVALS,
    utilizations: tuple[float, ...] = (0.7, 0.45),
    client_counts: tuple[int, ...] = (40,),
    num_servers: int = 10,
    num_requests: int = 15_000,
    seeds: tuple[int, ...] = (0,),
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Reproduce the fluctuation-interval sweep of Figure 14 (scaled down)."""
    results = sweep(
        strategies=strategies,
        intervals_ms=intervals_ms,
        utilizations=utilizations,
        client_counts=client_counts,
        num_servers=num_servers,
        num_requests=num_requests,
        seeds=seeds,
        runner=runner,
    )
    rows = []
    for (utilization, clients, interval, strategy), stats in results.items():
        rows.append(
            [
                "high (70%)" if utilization >= 0.6 else "low (45%)",
                clients,
                interval,
                strategy,
                stats["median"],
                stats["p99"],
            ]
        )
    notes = [
        "Paper: at a 10 ms fluctuation interval all feedback-driven schemes look alike (feedback is "
        "stale after one RTT); as the interval grows LOR and RR degrade sharply while C3 stays "
        "close to the oracle; at low utilisation C3's curve plateaus because it avoids slow "
        "servers entirely.",
        f"Scaled down: {num_servers} servers, {num_requests} requests/run, seeds={list(seeds)} "
        "(paper: 50 servers, 150/300 clients, 600k requests, 5 seeds); the run must span "
        "several fluctuation intervals for the comparison to be meaningful.",
    ]
    return ExperimentResult(
        experiment_id="fig14",
        title="99th percentile latency (ms) vs fluctuation interval",
        headers=["utilization", "clients", "interval (ms)", "strategy", "median", "p99"],
        rows=rows,
        notes=notes,
        data=results,
    )
