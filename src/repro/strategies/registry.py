"""The strategy registry: every selector registers itself under a canonical name.

Each strategy module declares a frozen *param dataclass* (defaults = the
paper's values) and registers its selector class with
:func:`register_strategy`::

    @register_strategy(
        "LRT",
        aliases=("LEAST_RESPONSE_TIME",),
        params=LRTParams,
        description="Lowest smoothed response time",
        context_args=("rng",),
    )
    class LeastResponseTimeSelector(StatefulSelector): ...

Registration makes the strategy addressable everywhere a strategy name is
accepted — ``SimulationConfig.strategy``, ``ClusterConfig.strategy``, sweep
grids, and the CLI — including the parameterized spec syntax of
:class:`~repro.strategies.spec.StrategySpec` (``"c3:cubic_c=2e-4"``).
``STRATEGY_NAMES``, the factory aliases, and the CLI listing are all derived
from this registry, so they can never drift apart.

Unknown strategy names and unknown parameters are rejected with a
closest-match ("did you mean …?") suggestion instead of surfacing as a deep
``TypeError`` from an untyped ``**kwargs`` passthrough.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

import numpy as np

from ..core.config import C3Config
from .base import ReplicaSelector
from .paramspec import resolve_param_overrides

__all__ = [
    "BuildContext",
    "StrategyInfo",
    "build_selector",
    "get_strategy",
    "register_strategy",
    "resolve_params",
    "resolve_strategy",
    "strategy_names",
]

#: Callback returning ``(pending_requests, current_service_time_ms)`` for a server.
ServerStateFn = Callable[[Hashable], tuple[float, float]]
#: Callback returning a peer's most recently gossiped iowait fraction [0, 1].
IowaitFn = Callable[[Hashable], float]


@dataclass(frozen=True, slots=True)
class BuildContext:
    """Runtime dependencies the harness supplies when building a selector.

    These are deliberately separate from strategy *parameters*: parameters
    are declarative, sweepable and hashed into cache keys, while the context
    carries live objects (RNG streams, ground-truth callbacks, the base
    :class:`~repro.core.config.C3Config`) that only exist inside a run.
    """

    rng: np.random.Generator | None = None
    server_state_fn: ServerStateFn | None = None
    iowait_fn: IowaitFn | None = None
    record_rate_history: bool = False
    c3_config: C3Config | None = None


#: Builder: (explicit params, context) -> selector instance.
Factory = Callable[[Mapping[str, Any], BuildContext], ReplicaSelector]
#: Optional early validation hook over the explicit (alias-resolved) params.
Validator = Callable[[Mapping[str, Any]], None]


@dataclass(frozen=True)
class StrategyInfo:
    """One registered strategy: canonical name, aliases, params, builder."""

    name: str
    aliases: tuple[str, ...]
    params_cls: type
    description: str
    factory: Factory
    param_aliases: Mapping[str, str] = field(default_factory=dict)
    requires: tuple[str, ...] = ()
    validate: Validator | None = None
    selector_cls: type | None = None

    def param_defaults(self) -> dict[str, Any]:
        """``{field name: default value}`` of the param dataclass."""
        instance = self.params_cls()
        return {
            f.name: getattr(instance, f.name) for f in dataclasses.fields(self.params_cls)
        }

    def aliases_for(self, field_name: str) -> tuple[str, ...]:
        """Registered short-hand aliases mapping to ``field_name``, sorted."""
        return tuple(
            sorted(alias for alias, target in self.param_aliases.items() if target == field_name)
        )


_REGISTRY: dict[str, StrategyInfo] = {}
#: Case-normalized name/alias token -> canonical name.
_LOOKUP: dict[str, str] = {}


def _normalize(token: str) -> str:
    return token.strip().upper()


def _register(info: StrategyInfo) -> None:
    if info.name in _REGISTRY:
        raise ValueError(f"strategy {info.name!r} is already registered")
    tokens = {_normalize(info.name), *(_normalize(alias) for alias in info.aliases)}
    for token in sorted(tokens):
        owner = _LOOKUP.get(token)
        if owner is not None:
            raise ValueError(
                f"strategy name/alias {token!r} is already registered by {owner!r}"
            )
    _REGISTRY[info.name] = info
    for token in tokens:
        _LOOKUP[token] = info.name


def _default_factory(cls: type, context_args: tuple[str, ...]) -> Factory:
    """Build ``cls(**param fields, **requested context attributes)``."""

    def build(params: Mapping[str, Any], ctx: BuildContext) -> ReplicaSelector:
        kwargs: dict[str, Any] = dict(params)
        for arg in context_args:
            kwargs[arg] = getattr(ctx, arg)
        return cls(**kwargs)

    return build


def register_strategy(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    params: type,
    description: str,
    context_args: tuple[str, ...] = (),
    param_aliases: Mapping[str, str] | None = None,
    factory: Factory | None = None,
    requires: tuple[str, ...] = (),
    validate: Validator | None = None,
) -> Callable[[type], type]:
    """Class decorator registering a selector under ``name``.

    Parameters
    ----------
    name:
        Canonical strategy name (the paper's abbreviation, e.g. ``"C3"``).
        Matching is case-insensitive everywhere.
    aliases:
        Alternate names accepted wherever a strategy is referenced.
    params:
        Frozen dataclass of the strategy's tunable parameters; field defaults
        are the paper's values.
    description:
        One-line description for ``c3-repro strategies`` and the README table.
    context_args:
        :class:`BuildContext` attribute names forwarded to the constructor by
        the default factory (ignored when ``factory`` is given).
    param_aliases:
        Short-hand parameter spellings (paper notation) mapped to field
        names, e.g. ``{"cubic_c": "gamma"}``.
    factory:
        Custom builder ``(explicit_params, ctx) -> selector`` for strategies
        whose parameters do not splat directly into the constructor.
    requires:
        Context attributes that must be non-None to build this strategy
        (e.g. the oracle's ground-truth callback).
    validate:
        Optional hook raising ``ValueError`` for invalid *values* at spec
        parse time (unknown names/keys are always rejected by the registry).
    """
    if not dataclasses.is_dataclass(params):
        raise TypeError(f"params must be a dataclass, got {params!r}")

    def decorator(cls: type) -> type:
        resolved_aliases = dict(param_aliases or {})
        field_names = {f.name for f in dataclasses.fields(params)}
        bad = sorted(set(resolved_aliases.values()) - field_names)
        if bad:
            raise ValueError(f"param_aliases target unknown fields {bad} on {params.__name__}")
        _register(
            StrategyInfo(
                name=name,
                aliases=tuple(aliases),
                params_cls=params,
                description=description,
                factory=factory or _default_factory(cls, tuple(context_args)),
                param_aliases=resolved_aliases,
                requires=tuple(requires),
                validate=validate,
                selector_cls=cls,
            )
        )
        return cls

    return decorator


def strategy_names() -> tuple[str, ...]:
    """Every registered canonical strategy name, in registration order."""
    return tuple(_REGISTRY)


def get_strategy(name: str) -> StrategyInfo:
    """The registration for a *canonical* name (KeyError when absent)."""
    return _REGISTRY[name]


def resolve_strategy(name: str) -> StrategyInfo:
    """Look a strategy up by name or alias, case-insensitively.

    Unknown names raise ``ValueError`` listing the valid names plus a
    closest-match suggestion when one is plausible.
    """
    if not isinstance(name, str):
        raise TypeError(f"strategy name must be a string, got {type(name).__name__}")
    canonical = _LOOKUP.get(_normalize(name))
    if canonical is None:
        close = difflib.get_close_matches(_normalize(name), sorted(_LOOKUP), n=1)
        hint = f"; did you mean {_LOOKUP[close[0]]!r}?" if close else ""
        raise ValueError(
            f"unknown strategy {name!r}; valid names: {', '.join(strategy_names())}{hint}"
        )
    return _REGISTRY[canonical]


# ---------------------------------------------------------------------------
# Parameter resolution: alias expansion, unknown-key rejection, type coercion.
# The mechanics are shared with the control registry via
# :mod:`repro.strategies.paramspec`.
# ---------------------------------------------------------------------------


def resolve_params(info: StrategyInfo, params: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalize explicit params for one strategy.

    Aliases are expanded to canonical field names, unknown keys are rejected
    with a did-you-mean suggestion, values are coerced to the annotated field
    types, and entries equal to the registered default are dropped — so two
    spellings of the same configuration normalize identically (and a bare
    name stays a bare name).
    """
    return resolve_param_overrides(
        info.params_cls,
        params,
        subject=f"strategy {info.name}",
        param_aliases=info.param_aliases,
        validate=info.validate,
    )


def build_selector(spec: "Any", ctx: BuildContext | None = None) -> ReplicaSelector:
    """Instantiate the selector described by a :class:`StrategySpec`."""
    ctx = ctx or BuildContext()
    info = resolve_strategy(spec.name)
    for requirement in info.requires:
        if getattr(ctx, requirement) is None:
            raise ValueError(f"the {info.name} strategy requires {requirement}")
    return info.factory(spec.params_dict, ctx)
