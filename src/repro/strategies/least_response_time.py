"""Least-response-time replica selection.

Another baseline the paper evaluated in simulation ("least-response time"):
clients track an EWMA of the response times observed from each replica and
send each request to the replica with the lowest smoothed response time.
Because the signal is purely historical it is prone to herding — exactly the
failure mode C3's concurrency compensation addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..core.ewma import EWMA
from ..core.feedback import ServerFeedback
from .base import StatefulSelector
from .registry import register_strategy

__all__ = ["LeastResponseTimeParams", "LeastResponseTimeSelector"]


@dataclass(frozen=True, slots=True)
class LeastResponseTimeParams:
    """LRT parameters."""

    #: EWMA smoothing weight for the per-replica response-time estimate.
    alpha: float = 0.9


@register_strategy(
    "LRT",
    aliases=("LEAST_RESPONSE_TIME",),
    params=LeastResponseTimeParams,
    description="Lowest EWMA-smoothed observed response time (herding-prone baseline)",
    context_args=("rng",),
)
class LeastResponseTimeSelector(StatefulSelector):
    """Pick the replica with the lowest smoothed observed response time."""

    name = "LRT"

    def __init__(self, alpha: float = 0.9, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.alpha = alpha
        self.rng = rng or np.random.default_rng()
        self._response_times: dict[Hashable, EWMA] = {}

    def _ewma(self, server_id: Hashable) -> EWMA:
        ewma = self._response_times.get(server_id)
        if ewma is None:
            ewma = EWMA(self.alpha)
            self._response_times[server_id] = ewma
        return ewma

    def smoothed_response_time(self, server_id: Hashable) -> float:
        """Current smoothed response time for a server (0 when unknown)."""
        return self._ewma(server_id).value

    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        # Servers never sampled score 0 and are therefore explored first.
        lowest = min(self._ewma(sid).value for sid in replica_group)
        candidates = [sid for sid in replica_group if self._ewma(sid).value == lowest]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[int(self.rng.integers(len(candidates)))]

    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        self._ewma(server_id).update(response_time)
