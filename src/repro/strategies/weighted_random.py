"""Weighted-random replica selection.

A family of baselines mentioned in §6 ("different variations of weighted
random strategies"): each replica is chosen with probability inversely
proportional to an estimate of its cost (queue-size feedback, outstanding
requests, or smoothed response time).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

import numpy as np

from ..core.ewma import EWMA
from ..core.feedback import ServerFeedback
from .base import StatefulSelector
from .registry import register_strategy

__all__ = ["WeightedRandomParams", "WeightedRandomSelector"]

_VALID_SIGNALS = ("outstanding", "queue", "response_time")


@dataclass(frozen=True, slots=True)
class WeightedRandomParams:
    """WRAND parameters."""

    #: Cost signal to weight by: ``outstanding`` / ``queue`` / ``response_time``.
    signal: str = "outstanding"
    #: EWMA smoothing weight for the feedback-based signals.
    alpha: float = 0.9


def _validate_wrand_params(params: Mapping[str, Any]) -> None:
    signal = params.get("signal", "outstanding")
    if signal not in _VALID_SIGNALS:
        raise ValueError(f"signal must be one of {_VALID_SIGNALS}, got {signal!r}")


@register_strategy(
    "WRAND",
    aliases=("WEIGHTED_RANDOM",),
    params=WeightedRandomParams,
    description="Random choice weighted inversely to an estimated per-replica cost",
    context_args=("rng",),
    validate=_validate_wrand_params,
)
class WeightedRandomSelector(StatefulSelector):
    """Choose replicas randomly with weights inverse to their estimated cost.

    Parameters
    ----------
    signal:
        Which cost estimate to weight by: ``"outstanding"`` (local in-flight
        count), ``"queue"`` (smoothed queue-size feedback), or
        ``"response_time"`` (smoothed observed response time).
    """

    name = "WRAND"

    def __init__(
        self,
        signal: str = "outstanding",
        alpha: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if signal not in _VALID_SIGNALS:
            raise ValueError(f"signal must be one of {_VALID_SIGNALS}, got {signal!r}")
        self.signal = signal
        self.alpha = alpha
        self.rng = rng or np.random.default_rng()
        self._outstanding: dict[Hashable, int] = defaultdict(int)
        self._queue_feedback: dict[Hashable, EWMA] = {}
        self._response_times: dict[Hashable, EWMA] = {}

    def _ewma(self, table: dict, server_id: Hashable) -> EWMA:
        ewma = table.get(server_id)
        if ewma is None:
            ewma = EWMA(self.alpha)
            table[server_id] = ewma
        return ewma

    def cost(self, server_id: Hashable) -> float:
        """The cost estimate used for weighting (>= 0)."""
        if self.signal == "outstanding":
            return float(self._outstanding[server_id])
        if self.signal == "queue":
            return self._ewma(self._queue_feedback, server_id).value
        return self._ewma(self._response_times, server_id).value

    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        group = tuple(replica_group)
        weights = np.array([1.0 / (1.0 + self.cost(sid)) for sid in group], dtype=float)
        total = weights.sum()
        if total <= 0:
            return group[int(self.rng.integers(len(group)))]
        probabilities = weights / total
        return group[int(self.rng.choice(len(group), p=probabilities))]

    def record_send(self, server_id: Hashable, now: float) -> None:
        self._outstanding[server_id] += 1

    def on_duplicate_send(self, server_id: Hashable, now: float) -> None:
        self._outstanding[server_id] += 1

    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        if self._outstanding[server_id] > 0:
            self._outstanding[server_id] -= 1
        if feedback is not None:
            self._ewma(self._queue_feedback, server_id).update(feedback.queue_size)
        self._ewma(self._response_times, server_id).update(response_time)

    def on_timeout(self, server_id: Hashable, now: float) -> None:
        if self._outstanding[server_id] > 0:
            self._outstanding[server_id] -= 1
