"""Replica-selection strategies: C3 and every baseline used in the paper.

Strategies live in a plugin registry (:mod:`repro.strategies.registry`):
each selector module registers itself under a canonical name with a typed,
frozen param dataclass whose defaults are the paper's values.  A
:class:`StrategySpec` — parsed from ``"c3"``, ``"c3:cubic_c=4e-4,b=3"``, or
``{"name": "c3", "params": {...}}`` — addresses one (strategy, parameters)
point, which makes strategy *parameters* a first-class sweep axis alongside
the strategy name itself.

:data:`STRATEGY_NAMES`, the accepted aliases, and the CLI's strategy listing
are all derived from the registry; :func:`make_selector` remains as the
convenience factory (now spec-aware: ``make_selector("c3:beta=0.5")``).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

import numpy as np

from ..core.config import C3Config
from .base import ReplicaSelector, SelectorDecision, StatefulSelector

# Selector modules self-register on import; the import order below fixes the
# canonical registration order reported by strategy_names() / STRATEGY_NAMES.
from .c3 import C3Params, C3Selector, c3_config_from_params
from .oracle import OracleParams, OracleSelector
from .least_outstanding import LeastOutstandingParams, LeastOutstandingSelector
from .round_robin import RoundRobinParams, RoundRobinSelector
from .random_choice import RandomParams, RandomSelector
from .least_response_time import LeastResponseTimeParams, LeastResponseTimeSelector
from .power_of_two import PowerOfTwoParams, PowerOfTwoSelector
from .weighted_random import WeightedRandomParams, WeightedRandomSelector
from .dynamic_snitch import DynamicSnitchParams, DynamicSnitchSelector

from .registry import (
    BuildContext,
    StrategyInfo,
    build_selector,
    get_strategy,
    register_strategy,
    resolve_strategy,
    strategy_names,
)
from .spec import StrategySpec

__all__ = [
    "BuildContext",
    "C3Params",
    "C3Selector",
    "DynamicSnitchParams",
    "DynamicSnitchSelector",
    "LeastOutstandingParams",
    "LeastOutstandingSelector",
    "LeastResponseTimeParams",
    "LeastResponseTimeSelector",
    "OracleParams",
    "OracleSelector",
    "PowerOfTwoParams",
    "PowerOfTwoSelector",
    "RandomParams",
    "RandomSelector",
    "ReplicaSelector",
    "RoundRobinParams",
    "RoundRobinSelector",
    "SelectorDecision",
    "StatefulSelector",
    "StrategyInfo",
    "StrategySpec",
    "WeightedRandomParams",
    "WeightedRandomSelector",
    "STRATEGY_NAMES",
    "build_selector",
    "c3_config_from_params",
    "get_strategy",
    "make_selector",
    "register_strategy",
    "resolve_strategy",
    "strategy_names",
]

#: Canonical strategy names, derived from the registry (registration order).
STRATEGY_NAMES = strategy_names()


def make_selector(
    name: "str | Mapping[str, Any] | StrategySpec",
    *,
    config: C3Config | None = None,
    rng: np.random.Generator | None = None,
    server_state_fn: Callable[[Hashable], tuple[float, float]] | None = None,
    iowait_fn: Callable[[Hashable], float] | None = None,
    record_rate_history: bool = False,
    **params: Any,
) -> ReplicaSelector:
    """Build a selector from a strategy name or parameterized spec.

    Parameters
    ----------
    name:
        A registered strategy name or alias (case-insensitive), a spec
        string (``"c3:cubic_c=4e-4"``), a mapping (``{"name": ...,
        "params": {...}}``), or a :class:`StrategySpec`.
    config:
        Base C3 configuration for the strategies that carry rate
        controllers (C3 and rate-limited RR).
    rng:
        Random generator for strategies that randomise tie-breaks.
    server_state_fn:
        Ground-truth callback required by the ``ORA`` strategy.
    iowait_fn:
        Gossip callback used by the ``DS`` strategy.
    record_rate_history:
        Enables per-server rate traces on the C3 strategy (Figure 13).
    params:
        Strategy parameters, validated against the registered param
        dataclass — unknown names are rejected with a closest-match
        suggestion.  Keyword params override same-named spec params.
    """
    spec = StrategySpec.parse(name)
    if params:
        spec = StrategySpec.of(spec.name, {**spec.params_dict, **params})
    return spec.build(
        rng=rng,
        server_state_fn=server_state_fn,
        iowait_fn=iowait_fn,
        record_rate_history=record_rate_history,
        c3_config=config,
    )
