"""Replica-selection strategies: C3 and every baseline used in the paper.

The :func:`make_selector` factory builds selectors by name, which is how the
simulation configs and the experiment harness request strategies.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from ..core.config import C3Config
from .base import ReplicaSelector, SelectorDecision, StatefulSelector
from .c3 import C3Selector
from .dynamic_snitch import DynamicSnitchSelector
from .least_outstanding import LeastOutstandingSelector
from .least_response_time import LeastResponseTimeSelector
from .oracle import OracleSelector
from .power_of_two import PowerOfTwoSelector
from .random_choice import RandomSelector
from .round_robin import RoundRobinSelector
from .weighted_random import WeightedRandomSelector

__all__ = [
    "C3Selector",
    "DynamicSnitchSelector",
    "LeastOutstandingSelector",
    "LeastResponseTimeSelector",
    "OracleSelector",
    "PowerOfTwoSelector",
    "RandomSelector",
    "ReplicaSelector",
    "RoundRobinSelector",
    "SelectorDecision",
    "StatefulSelector",
    "WeightedRandomSelector",
    "STRATEGY_NAMES",
    "make_selector",
]

#: Canonical names accepted by :func:`make_selector`.
STRATEGY_NAMES = (
    "C3",
    "ORA",
    "LOR",
    "RR",
    "RAND",
    "LRT",
    "P2C",
    "WRAND",
    "DS",
)


def make_selector(
    name: str,
    *,
    config: C3Config | None = None,
    rng: np.random.Generator | None = None,
    server_state_fn: Callable[[Hashable], tuple[float, float]] | None = None,
    iowait_fn: Callable[[Hashable], float] | None = None,
    record_rate_history: bool = False,
    **kwargs,
) -> ReplicaSelector:
    """Build a selector by its canonical name.

    Parameters
    ----------
    name:
        One of :data:`STRATEGY_NAMES` (case-insensitive).
    config:
        C3 configuration, used by the C3 and RR (rate-limited) strategies.
    rng:
        Random generator for strategies that randomise tie-breaks.
    server_state_fn:
        Ground-truth callback required by the ``ORA`` strategy.
    iowait_fn:
        Gossip callback used by the ``DS`` strategy.
    record_rate_history:
        Enables per-server rate traces on the C3 strategy (Figure 13).
    kwargs:
        Extra keyword arguments forwarded to the selector constructor.
    """
    key = name.strip().upper()
    if key == "C3":
        return C3Selector(config=config, record_rate_history=record_rate_history, **kwargs)
    if key in ("ORA", "ORACLE"):
        if server_state_fn is None:
            raise ValueError("the ORA strategy requires server_state_fn")
        return OracleSelector(server_state_fn=server_state_fn, **kwargs)
    if key in ("LOR", "LEAST_OUTSTANDING"):
        return LeastOutstandingSelector(rng=rng, **kwargs)
    if key in ("RR", "ROUND_ROBIN"):
        return RoundRobinSelector(config=config, **kwargs)
    if key in ("RAND", "RANDOM"):
        return RandomSelector(rng=rng, **kwargs)
    if key in ("LRT", "LEAST_RESPONSE_TIME"):
        return LeastResponseTimeSelector(rng=rng, **kwargs)
    if key in ("P2C", "POWER_OF_TWO"):
        return PowerOfTwoSelector(rng=rng, **kwargs)
    if key in ("WRAND", "WEIGHTED_RANDOM"):
        return WeightedRandomSelector(rng=rng, **kwargs)
    if key in ("DS", "DYNAMIC_SNITCH"):
        return DynamicSnitchSelector(iowait_fn=iowait_fn, rng=rng, **kwargs)
    raise ValueError(f"unknown strategy {name!r}; valid names: {', '.join(STRATEGY_NAMES)}")
