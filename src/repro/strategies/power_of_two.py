"""Power-of-two-choices replica selection (Mitzenmacher, discussed in §8).

Two replicas are sampled uniformly at random from the group and the one with
the smaller estimated load (locally outstanding requests plus the last
queue-size feedback) receives the request.  With a replication factor of 3
the distinction from full ranking is small — which is the paper's point —
but the strategy is included for completeness and for ablation studies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..core.ewma import EWMA
from ..core.feedback import ServerFeedback
from .base import StatefulSelector
from .registry import register_strategy

__all__ = ["PowerOfTwoParams", "PowerOfTwoSelector"]


@dataclass(frozen=True, slots=True)
class PowerOfTwoParams:
    """P2C parameters."""

    #: EWMA smoothing weight for the queue-size feedback estimate.
    alpha: float = 0.9


@register_strategy(
    "P2C",
    aliases=("POWER_OF_TWO",),
    params=PowerOfTwoParams,
    description="Power-of-two-choices: sample two replicas, pick the less loaded",
    context_args=("rng",),
)
class PowerOfTwoSelector(StatefulSelector):
    """Sample two replicas, pick the less loaded one."""

    name = "P2C"

    def __init__(self, alpha: float = 0.9, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.rng = rng or np.random.default_rng()
        self.alpha = alpha
        self._outstanding: dict[Hashable, int] = defaultdict(int)
        self._queue_feedback: dict[Hashable, EWMA] = {}

    def _queue_ewma(self, server_id: Hashable) -> EWMA:
        ewma = self._queue_feedback.get(server_id)
        if ewma is None:
            ewma = EWMA(self.alpha)
            self._queue_feedback[server_id] = ewma
        return ewma

    def load_estimate(self, server_id: Hashable) -> float:
        """Outstanding requests plus smoothed queue feedback."""
        return self._outstanding[server_id] + self._queue_ewma(server_id).value

    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        group = tuple(replica_group)
        if len(group) == 1:
            return group[0]
        idx = self.rng.choice(len(group), size=2, replace=False)
        a, b = group[int(idx[0])], group[int(idx[1])]
        return a if self.load_estimate(a) <= self.load_estimate(b) else b

    def record_send(self, server_id: Hashable, now: float) -> None:
        self._outstanding[server_id] += 1

    def on_duplicate_send(self, server_id: Hashable, now: float) -> None:
        self._outstanding[server_id] += 1

    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        if self._outstanding[server_id] > 0:
            self._outstanding[server_id] -= 1
        if feedback is not None:
            self._queue_ewma(server_id).update(feedback.queue_size)

    def on_timeout(self, server_id: Hashable, now: float) -> None:
        if self._outstanding[server_id] > 0:
            self._outstanding[server_id] -= 1

    # ------------------------------------------------------ batched-kernel seam
    def kernel_state(self, num_servers: int) -> tuple[list[int], list[float], list[bool]]:
        """Dense per-server state: (outstanding, EWMA values, EWMA seeded?).

        An unseeded EWMA contributes 0.0 to the load estimate but must seed
        directly from its first sample, so the kernel needs the seeded flag
        alongside the value.
        """
        outstanding = [self._outstanding[sid] for sid in range(num_servers)]
        values: list[float] = []
        seeded: list[bool] = []
        for sid in range(num_servers):
            ewma = self._queue_feedback.get(sid)
            initialized = ewma is not None and ewma.initialized
            values.append(ewma.value if initialized else 0.0)
            seeded.append(initialized)
        return outstanding, values, seeded

    def kernel_restore(
        self,
        outstanding: Sequence[int],
        values: Sequence[float],
        seeded: Sequence[bool],
        counts: Sequence[int],
        submitted: int,
        responses: int,
    ) -> None:
        """Fold the kernel's dense per-server state back into the selector."""
        self.requests_submitted = submitted
        self.responses_received = responses
        for sid, count in enumerate(outstanding):
            if count:
                self._outstanding[sid] = count
        for sid, initialized in enumerate(seeded):
            if initialized:
                ewma = self._queue_ewma(sid)
                ewma._value = values[sid]
                ewma._count = counts[sid]
