"""The canonical, parameterized strategy specification.

A :class:`StrategySpec` is ``(strategy name, explicit parameter overrides)``
in a *canonical* form:

* the name is the registry's canonical name (``"c3"`` → ``"C3"``);
* parameter aliases are expanded (``cubic_c`` → ``gamma``) and values are
  coerced to the registered field types;
* parameters equal to the registered default (the paper's value) are
  dropped, so every spelling of the same configuration — ``"c3"``,
  ``"C3:score_exponent=3"``, ``{"name": "c3"}`` — normalizes to the same
  spec, the same canonical string, and the same digest.  (Corollary:
  "explicitly set to the default" and "unset" are indistinguishable, so a
  default-valued param cannot override a non-default base ``c3_config`` —
  put every intended override in the spec itself.)

Specs parse from strings (``"c3"``, ``"c3:cubic_c=4e-4,b=3"``), from
mappings (``{"name": "c3", "params": {"beta": 0.5}}``), and from other
specs; :meth:`canonical` formats back to the string grammar so
``parse(spec.canonical()) == spec`` always holds.  The canonical string is
what :class:`~repro.simulator.simulation.SimulationConfig` stores, hashes
into sweep cache keys, and prints in reports — bare strategy names stay
byte-identical to the pre-registry era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.config import C3Config
from .base import ReplicaSelector
from .paramspec import format_params, parse_spec_string, spec_digest
from .registry import (
    BuildContext,
    IowaitFn,
    ServerStateFn,
    build_selector,
    resolve_params,
    resolve_strategy,
)

__all__ = ["StrategySpec"]


@dataclass(frozen=True)
class StrategySpec:
    """A validated, canonical ``(strategy, parameters)`` pair.

    Construct via :meth:`parse` (or :meth:`of`); the constructor itself does
    not validate, so hand-built instances bypass canonicalization.
    ``params`` is a sorted tuple of ``(field name, value)`` pairs holding
    only the *explicit, non-default* overrides.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    # ----------------------------------------------------------- construction
    @classmethod
    def parse(cls, value: "str | Mapping[str, Any] | StrategySpec") -> "StrategySpec":
        """Parse and canonicalize a strategy reference of any accepted form."""
        if isinstance(value, StrategySpec):
            return cls.of(value.name, value.params_dict)
        if isinstance(value, str):
            name, params = parse_spec_string(value, label="strategy spec")
            return cls.of(name, params)
        if isinstance(value, Mapping):
            unknown = sorted(set(value) - {"name", "params"})
            if unknown:
                raise ValueError(
                    f"unknown keys {unknown} in strategy mapping; expected "
                    f"{{'name': ..., 'params': {{...}}}}"
                )
            if "name" not in value:
                raise ValueError("strategy mapping needs a 'name' key")
            return cls.of(value["name"], dict(value.get("params") or {}))
        raise TypeError(
            f"cannot parse a strategy from {type(value).__name__}; "
            f"expected str, mapping, or StrategySpec"
        )

    @classmethod
    def of(cls, name: str, params: Mapping[str, Any] | None = None) -> "StrategySpec":
        """Build a canonical spec from a name and explicit params."""
        info = resolve_strategy(name)
        resolved = resolve_params(info, dict(params or {}))
        return cls(name=info.name, params=tuple(sorted(resolved.items())))

    # ------------------------------------------------------------- inspection
    @property
    def params_dict(self) -> dict[str, Any]:
        """The explicit overrides as a plain dict."""
        return dict(self.params)

    def canonical(self) -> str:
        """The canonical string form (parses back to an equal spec)."""
        if not self.params:
            return self.name
        return f"{self.name}:{format_params(self.params)}"

    def digest(self) -> str:
        """A stable content digest of the canonical spec.

        Two references to the same strategy configuration — whatever their
        spelling — share a digest; any parameter change produces a new one.
        This is what keeps runner cache keys and golden digests deterministic
        across refactors of the spec grammar.
        """
        return spec_digest(self.name, self.params_dict)

    def __str__(self) -> str:
        return self.canonical()

    # ------------------------------------------------------------------ build
    def build(
        self,
        *,
        rng: np.random.Generator | None = None,
        server_state_fn: ServerStateFn | None = None,
        iowait_fn: IowaitFn | None = None,
        record_rate_history: bool = False,
        c3_config: C3Config | None = None,
    ) -> ReplicaSelector:
        """Instantiate this spec's selector with the given runtime context."""
        ctx = BuildContext(
            rng=rng,
            server_state_fn=server_state_fn,
            iowait_fn=iowait_fn,
            record_rate_history=record_rate_history,
            c3_config=c3_config,
        )
        return build_selector(self, ctx)
