"""Least-outstanding-requests (LOR) replica selection.

The strategy used by Nginx / Amazon ELB style load balancers and one of the
paper's principal baselines (§2.2, §6): each client sends the request to the
replica to which it currently has the fewest outstanding requests.  Ties are
broken randomly so multiple LOR clients do not deterministically pile onto
the same server.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..core.feedback import ServerFeedback
from .base import StatefulSelector
from .registry import register_strategy

__all__ = ["LeastOutstandingParams", "LeastOutstandingSelector"]


@dataclass(frozen=True, slots=True)
class LeastOutstandingParams:
    """LOR has no tunable parameters — ties break uniformly at random."""


@register_strategy(
    "LOR",
    aliases=("LEAST_OUTSTANDING",),
    params=LeastOutstandingParams,
    description="Fewest locally-outstanding requests (Nginx/ELB-style least-connections)",
    context_args=("rng",),
)
class LeastOutstandingSelector(StatefulSelector):
    """Pick the replica with the fewest locally-outstanding requests."""

    name = "LOR"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.rng = rng or np.random.default_rng()
        self._outstanding: dict[Hashable, int] = defaultdict(int)

    def outstanding(self, server_id: Hashable) -> int:
        """Outstanding requests this client has at ``server_id``."""
        return self._outstanding[server_id]

    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        lowest = min(self._outstanding[sid] for sid in replica_group)
        candidates = [sid for sid in replica_group if self._outstanding[sid] == lowest]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[int(self.rng.integers(len(candidates)))]

    def record_send(self, server_id: Hashable, now: float) -> None:
        self._outstanding[server_id] += 1

    def on_duplicate_send(self, server_id: Hashable, now: float) -> None:
        self._outstanding[server_id] += 1

    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        if self._outstanding[server_id] > 0:
            self._outstanding[server_id] -= 1

    def on_timeout(self, server_id: Hashable, now: float) -> None:
        if self._outstanding[server_id] > 0:
            self._outstanding[server_id] -= 1

    def stats(self) -> dict:
        stats = super().stats()
        stats["outstanding_total"] = sum(self._outstanding.values())
        return stats

    # ------------------------------------------------------ batched-kernel seam
    def kernel_state(self, num_servers: int) -> list[int]:
        """Outstanding counts as a dense list indexed by (integer) server id.

        The batched kernel scores replica groups over this contiguous array
        instead of the defaultdict, then hands the final counts back through
        :meth:`kernel_restore` so post-run :meth:`stats` are unchanged.
        """
        return [self._outstanding[sid] for sid in range(num_servers)]

    def kernel_restore(self, outstanding: Sequence[int], submitted: int, responses: int) -> None:
        """Fold the kernel's dense per-server state back into the selector."""
        self.requests_submitted = submitted
        self.responses_received = responses
        for sid, count in enumerate(outstanding):
            if count:
                self._outstanding[sid] = count
