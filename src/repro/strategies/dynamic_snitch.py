"""A model of Cassandra's Dynamic Snitching (DS) — the paper's main baseline.

Dynamic Snitching (§2.3) ranks peers using:

* a *history* of observed read latencies per peer, reduced with a median
  over exponentially-decayed samples;
* gossiped one-second ``iowait`` averages, weighted far more heavily than
  the latency scores (the paper notes "up to two orders of magnitude more
  influence");
* scores recomputed only at fixed, discrete intervals (100 ms by default),
  with the latency histories reset every ``reset_interval_ms`` (10 minutes
  in Cassandra).

The interval-based recomputation is precisely what makes DS prone to the
synchronised load oscillations of Figure 2: between recomputations every
coordinator keeps sending to the same "best" peer.  This implementation
reproduces those dynamics; the gossiped iowait signal is provided by the
cluster substrate through an ``iowait_fn`` callback.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

import numpy as np

from ..core.feedback import ServerFeedback
from .base import StatefulSelector
from .registry import IowaitFn, register_strategy

__all__ = ["DynamicSnitchParams", "DynamicSnitchSelector", "IowaitFn"]


@dataclass(frozen=True, slots=True)
class DynamicSnitchParams:
    """Dynamic Snitching parameters (defaults = Cassandra's, per §2.3)."""

    update_interval_ms: float = 100.0
    reset_interval_ms: float = 600_000.0
    iowait_weight: float = 100.0
    history_size: int = 100
    badness_threshold: float = 0.0
    decay_alpha: float = 0.75


def _validate_ds_params(params: Mapping[str, Any]) -> None:
    if params.get("update_interval_ms", 100.0) <= 0:
        raise ValueError("update_interval_ms must be positive")
    if params.get("reset_interval_ms", 600_000.0) <= 0:
        raise ValueError("reset_interval_ms must be positive")
    if not 0.0 <= params.get("badness_threshold", 0.0) < 1.0:
        raise ValueError("badness_threshold must be in [0, 1)")


@register_strategy(
    "DS",
    aliases=("DYNAMIC_SNITCH",),
    params=DynamicSnitchParams,
    description="Cassandra Dynamic Snitching: interval-scored latency history + gossiped iowait",
    context_args=("rng", "iowait_fn"),
    validate=_validate_ds_params,
)
class DynamicSnitchSelector(StatefulSelector):
    """Interval-scored, latency-history + iowait based replica selection.

    Parameters
    ----------
    update_interval_ms:
        How often scores are recomputed (Cassandra: 100 ms).
    reset_interval_ms:
        How often latency histories are cleared (Cassandra: 10 minutes).
    iowait_fn:
        Optional callback to the gossip subsystem; returns the latest
        gossiped iowait for a peer (0 when unknown).
    iowait_weight:
        Multiplier applied to the iowait signal when composing the score.
        Cassandra weights I/O load much more heavily than latency; the
        default of 100 reflects the "two orders of magnitude" the paper
        measured.
    history_size:
        Maximum number of latency samples retained per peer.
    badness_threshold:
        Cassandra's ``dynamic_snitch_badness_threshold``: if the best dynamic
        score is within this fraction of the statically-preferred replica's
        score, the static (first listed) replica is used.  0 disables it.
    """

    name = "DS"

    def __init__(
        self,
        update_interval_ms: float = 100.0,
        reset_interval_ms: float = 600_000.0,
        iowait_fn: IowaitFn | None = None,
        iowait_weight: float = 100.0,
        history_size: int = 100,
        badness_threshold: float = 0.0,
        decay_alpha: float = 0.75,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if update_interval_ms <= 0:
            raise ValueError("update_interval_ms must be positive")
        if reset_interval_ms <= 0:
            raise ValueError("reset_interval_ms must be positive")
        if not 0.0 <= badness_threshold < 1.0:
            raise ValueError("badness_threshold must be in [0, 1)")
        self.update_interval_ms = float(update_interval_ms)
        self.reset_interval_ms = float(reset_interval_ms)
        self.iowait_fn = iowait_fn
        self.iowait_weight = float(iowait_weight)
        self.history_size = int(history_size)
        self.badness_threshold = float(badness_threshold)
        self.decay_alpha = float(decay_alpha)
        self.rng = rng or np.random.default_rng()

        self._latency_history: dict[Hashable, deque[float]] = defaultdict(
            lambda: deque(maxlen=self.history_size)
        )
        self._scores: dict[Hashable, float] = {}
        self._last_update = -float("inf")
        self._last_reset = 0.0
        self.score_recomputations = 0
        self.history_resets = 0

    # ---------------------------------------------------------------- scoring
    def _latency_score(self, server_id: Hashable) -> float:
        """Median over exponentially-decayed latency samples for a peer."""
        history = self._latency_history.get(server_id)
        if not history:
            return 0.0
        samples = np.asarray(history, dtype=float)
        # Exponentially weight newer samples more heavily, then take the
        # median of the weighted sequence (mirroring Cassandra's
        # ExponentiallyDecayingSample + median reduction).
        weights = self.decay_alpha ** np.arange(len(samples))[::-1]
        weighted = samples * weights / weights.mean()
        return float(np.median(weighted))

    def _iowait(self, server_id: Hashable) -> float:
        if self.iowait_fn is None:
            return 0.0
        return float(self.iowait_fn(server_id))

    def _recompute_scores(self, now: float) -> None:
        if now - self._last_reset >= self.reset_interval_ms:
            self._latency_history.clear()
            self._last_reset = now
            self.history_resets += 1
        peers = set(self._latency_history) | set(self._scores)
        self._scores = {
            sid: self._latency_score(sid) + self.iowait_weight * self._iowait(sid)
            for sid in peers
        }
        self._last_update = now
        self.score_recomputations += 1

    def _maybe_recompute(self, now: float) -> None:
        if now - self._last_update >= self.update_interval_ms:
            self._recompute_scores(now)

    def score(self, server_id: Hashable, now: float | None = None) -> float:
        """The current (possibly stale) DS score for a peer (lower = better)."""
        if now is not None:
            self._maybe_recompute(now)
        return self._scores.get(server_id, 0.0)

    # -------------------------------------------------------------- selection
    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        self._maybe_recompute(now)
        group = tuple(replica_group)
        scores = [self._scores.get(sid, 0.0) for sid in group]
        best_idx = int(np.argmin(scores))
        if self.badness_threshold > 0.0:
            static_first = 0
            static_score = scores[static_first]
            if static_score > 0 and scores[best_idx] >= static_score * (1.0 - self.badness_threshold):
                return group[static_first]
        best_score = scores[best_idx]
        candidates = [sid for sid, s in zip(group, scores) if s == best_score]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[int(self.rng.integers(len(candidates)))]

    # ---------------------------------------------------------------- updates
    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        self._latency_history[server_id].append(response_time)

    def stats(self) -> dict:
        stats = super().stats()
        stats.update(
            {
                "score_recomputations": self.score_recomputations,
                "history_resets": self.history_resets,
                "tracked_peers": len(self._latency_history),
            }
        )
        return stats
