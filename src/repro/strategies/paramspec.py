"""Shared spec-grammar machinery for named, parameterized registries.

The strategy registry (PR 5) introduced a small language for addressing one
(name, parameters) point in a design space — ``NAME[:key=value,...]`` with
case-insensitive names, JSON-scalar values, param aliases, type coercion
against a frozen param dataclass, and default-value dropping so every
spelling of the same configuration normalizes identically.  The control
registry (:mod:`repro.controls`) speaks the same language, so the grammar
and coercion rules live here, parameterized by a ``subject`` label
("strategy C3", "control phi") purely for error messages.

Everything in this module is pure string/type manipulation: no registry
state, no simulator imports.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import math
import types
import typing
from typing import Any, Callable, Mapping

__all__ = [
    "accepted_types",
    "coerce_value",
    "describe_types",
    "format_params",
    "format_value",
    "parse_spec_string",
    "parse_value",
    "resolve_param_overrides",
    "spec_digest",
]

#: Optional early validation hook over the explicit (alias-resolved) params.
Validator = Callable[[Mapping[str, Any]], None]


def parse_value(raw: str) -> Any:
    """A spec-string parameter value: JSON scalar, falling back to string."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def format_value(value: Any) -> str:
    """Format one canonical param value so that parsing round-trips it."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)  # shortest repr; json.loads round-trips it exactly
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if any(sep in text for sep in (",", "=", ":")) or text != text.strip():
        raise ValueError(f"cannot format parameter value {value!r} in spec syntax")
    return text


def format_params(params: Mapping[str, Any] | tuple[tuple[str, Any], ...]) -> str:
    """Render ``key=value`` pairs in canonical spec syntax."""
    items = params.items() if isinstance(params, Mapping) else params
    return ",".join(f"{key}={format_value(value)}" for key, value in items)


def parse_spec_string(text: str, label: str = "spec") -> tuple[str, dict[str, Any]]:
    """Split ``NAME[:key=value,...]`` into a name and raw params.

    ``label`` names the spec family in error messages ("strategy spec",
    "control spec").
    """
    name, sep, param_text = text.partition(":")
    if not name.strip():
        raise ValueError(f"{label} {text!r} has an empty name")
    if not sep:
        return name, {}
    params: dict[str, Any] = {}
    if not param_text.strip():
        raise ValueError(f"{label} {text!r} has a ':' but no parameters")
    for pair in param_text.split(","):
        key, eq, raw = pair.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ValueError(
                f"malformed parameter {pair.strip()!r} in {label} {text!r}; "
                f"expected KEY=VALUE"
            )
        if key in params:
            raise ValueError(f"parameter {key!r} repeated in {label} {text!r}")
        params[key] = parse_value(raw.strip())
    return name, params


def spec_digest(name: str, params: Mapping[str, Any]) -> str:
    """A stable sha256 content digest over a canonical (name, params) pair."""
    payload = json.dumps(
        {"name": name, "params": dict(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Type coercion against a frozen param dataclass.
# ---------------------------------------------------------------------------


def _type_hints(params_cls: type) -> dict[str, Any]:
    # Evaluated lazily (modules use `from __future__ import annotations`).
    return typing.get_type_hints(params_cls)


def accepted_types(hint: Any) -> tuple[set[type], bool]:
    """The concrete types a field hint accepts, plus whether None is allowed."""
    if hint is type(None):
        return set(), True
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is types.UnionType:
        accepted: set[type] = set()
        allows_none = False
        for arg in typing.get_args(hint):
            arg_types, arg_none = accepted_types(arg)
            accepted |= arg_types
            allows_none = allows_none or arg_none
        return accepted, allows_none
    return {hint}, False


def describe_types(accepted: set[type]) -> str:
    return " | ".join(sorted(t.__name__ for t in accepted)) or "nothing"


def coerce_value(subject: str, field_name: str, value: Any, hint: Any) -> Any:
    """Coerce ``value`` to the field's annotated type or raise ``ValueError``.

    ``subject`` names the owner in error messages, e.g. ``"strategy C3"``.
    """
    accepted, allows_none = accepted_types(hint)
    if value is None:
        if allows_none:
            return None
        raise ValueError(f"parameter {field_name!r} of {subject} does not accept null")
    if bool in accepted and isinstance(value, bool):
        return value
    if isinstance(value, bool):  # bool is an int subclass; keep it out of numbers
        raise ValueError(
            f"parameter {field_name!r} of {subject} expects "
            f"{describe_types(accepted)}, got a boolean"
        )
    if float in accepted and isinstance(value, (int, float)):
        # Non-finite values would break the canonical-string round trip
        # (repr(nan)/repr(inf) are not JSON) and make no sense as knobs.
        if not math.isfinite(value):
            raise ValueError(
                f"parameter {field_name!r} of {subject} must be finite, got {value!r}"
            )
        return float(value)
    if int in accepted and isinstance(value, int):
        return int(value)
    if int in accepted and isinstance(value, float) and value.is_integer():
        return int(value)
    if str in accepted and isinstance(value, str):
        return value
    raise ValueError(
        f"parameter {field_name!r} of {subject} expects "
        f"{describe_types(accepted)}, got {value!r}"
    )


def resolve_param_overrides(
    params_cls: type,
    params: Mapping[str, Any],
    *,
    subject: str,
    param_aliases: Mapping[str, str] | None = None,
    validate: Validator | None = None,
) -> dict[str, Any]:
    """Validate and normalize explicit params against a param dataclass.

    Aliases are expanded to canonical field names, unknown keys are rejected
    with a did-you-mean suggestion, values are coerced to the annotated field
    types, and entries equal to the registered default are dropped — so two
    spellings of the same configuration normalize identically (and a bare
    name stays a bare name).
    """
    aliases = dict(param_aliases or {})
    fields_by_name = {f.name: f for f in dataclasses.fields(params_cls)}
    hints = _type_hints(params_cls)
    defaults_instance = params_cls()
    defaults = {name: getattr(defaults_instance, name) for name in fields_by_name}
    valid = sorted(set(fields_by_name) | set(aliases))
    resolved: dict[str, Any] = {}
    for key, raw in params.items():
        field_name = aliases.get(key, key)
        if field_name not in fields_by_name:
            close = difflib.get_close_matches(key, valid, n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ValueError(
                f"unknown parameter {key!r} for {subject}"
                f" (valid parameters: {', '.join(valid) or '(none)'}){hint}"
            )
        if field_name in resolved:
            raise ValueError(
                f"parameter {field_name!r} of {subject} given more than once "
                f"(an alias and its target, or a repeated key)"
            )
        resolved[field_name] = coerce_value(subject, field_name, raw, hints[field_name])
    # Canonical form: a param explicitly set to its registered default is
    # indistinguishable from an unset param (both mean "the paper's value").
    normalized = {
        name: value for name, value in resolved.items() if value != defaults[name]
    }
    if validate is not None:
        validate(normalized)
    return normalized
