"""The C3 strategy adapter — wraps the core scheduler behind the selector API."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from ..core.config import C3Config
from ..core.feedback import ServerFeedback
from ..core.rate_control import CubicRateController, PerServerRateControl, RateControlEvent
from ..core.scheduler import C3Scheduler
from ..core.scoring import ReplicaScorer
from .base import ReplicaSelector, SelectorDecision
from .registry import BuildContext, register_strategy

__all__ = ["C3Params", "C3Selector", "c3_config_from_params"]


@dataclass(frozen=True, slots=True)
class C3Params:
    """Sweepable C3 parameters (defaults = the paper's §4 values).

    Fields mirror :class:`~repro.core.config.C3Config`; a spec param simply
    overrides the matching config field.  ``None`` means "derived": the
    concurrency weight defaults to the number of clients in the deployment,
    ``gamma`` to the saddle-duration heuristic, and the hysteresis to twice
    the rate window.  Paper-notation aliases are registered alongside:
    ``b`` (score exponent), ``w`` (concurrency weight), ``cubic_c`` (the
    cubic curve's scaling factor γ) and ``delta_ms`` (the rate window δ).
    """

    score_exponent: float = 3.0
    concurrency_weight: float | None = None
    ewma_alpha: float = 0.9
    rate_delta_ms: float = 20.0
    beta: float = 0.2
    smax: float = 10.0
    saddle_duration_ms: float = 100.0
    gamma: float | None = None
    hysteresis_ms: float | None = None
    initial_rate: float = 10.0
    min_rate: float = 0.1
    max_rate: float | None = None
    rate_control_enabled: bool = True
    rate_excess_tolerance: float = 1.2
    rate_min_utilisation: float = 0.4
    service_time_floor_ms: float = 1e-3


def c3_config_from_params(
    params: Mapping[str, Any], base: C3Config | None = None
) -> C3Config:
    """Apply explicit spec params over a base :class:`C3Config`.

    The base carries the deployment-derived defaults (notably
    ``with_clients``); params present in the spec override it field-by-field.
    Note the canonicalization consequence: a spec param equal to the
    registered default was dropped at parse time (it means "the paper
    value"), so it cannot *restore* a default over a base config that
    diverges from it — when mixing a custom ``c3_config`` with spec params,
    express every intended override in the spec.
    """
    config = base or C3Config()
    overrides = {key: value for key, value in params.items() if value is not None}
    return config.copy(**overrides) if overrides else config


def _validate_c3_params(params: Mapping[str, Any]) -> None:
    # C3Config.__post_init__ owns the value constraints; applying the params
    # to a default config surfaces them at spec-parse time.
    c3_config_from_params(params)


def _build_c3(params: Mapping[str, Any], ctx: BuildContext) -> "C3Selector":
    config = c3_config_from_params(params, ctx.c3_config)
    return C3Selector(config=config, record_rate_history=ctx.record_rate_history)


@register_strategy(
    "C3",
    params=C3Params,
    description="Adaptive replica selection: cubic scoring + distributed rate control (the paper's system)",
    param_aliases={
        "b": "score_exponent",
        "w": "concurrency_weight",
        "cubic_c": "gamma",
        "delta_ms": "rate_delta_ms",
    },
    factory=_build_c3,
    validate=_validate_c3_params,
)
class C3Selector(ReplicaSelector):
    """Replica selection with C3 ranking, rate control and backpressure.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.C3Config` controlling scoring and rate
        control.  Remember to call :meth:`C3Config.with_clients` (or set
        ``concurrency_weight``) so the concurrency compensation matches the
        deployment, as the paper prescribes.
    record_rate_history:
        Forwarded to the scheduler; enables the Figure 13 rate traces.
    """

    name = "C3"

    def __init__(self, config: C3Config | None = None, record_rate_history: bool = False) -> None:
        self.config = config or C3Config()
        self.scheduler = C3Scheduler(self.config, record_rate_history=record_rate_history)

    # ------------------------------------------------------------------ sends
    def submit(self, request: object, replica_group: Sequence[Hashable], now: float) -> SelectorDecision:
        decision = self.scheduler.submit(request, replica_group, now)
        return SelectorDecision(
            server_id=decision.server_id,
            backpressured=decision.backpressured,
            retry_after_ms=decision.retry_after_ms,
        )

    def kernel_submit(self, request: object, replica_group: Sequence[Hashable], now: float) -> object:
        # The scheduler's ScheduleDecision already carries server_id /
        # retry_after_ms; the batched kernel reads those directly, so the
        # SelectorDecision re-wrap above is pure overhead on its hot path.
        return self.scheduler.submit(request, replica_group, now)

    def kernel_state(
        self, num_servers: int
    ) -> "tuple[tuple, list[CubicRateController]] | None":
        """Live state views for the batched kernel's inlined C3 path.

        Returns ``(scorer_state, controllers)`` where ``scorer_state`` is
        :meth:`ReplicaScorer.kernel_state`'s tuple of live dense arrays and
        ``controllers`` is the eagerly-created per-server
        :class:`CubicRateController` list (creation draws no randomness and
        every controller's clock anchors at 0, so eager creation is
        digest-neutral).  Returns ``None`` — sending the kernel to the
        polymorphic fallback — when any component was subclassed or the
        scorer's slot table is not the identity over ``0..num_servers-1``.
        """
        scheduler = self.scheduler
        if type(scheduler) is not C3Scheduler:
            return None
        scorer = scheduler.scorer
        rate_control = scheduler.rate_control
        if type(scorer) is not ReplicaScorer or type(rate_control) is not PerServerRateControl:
            return None
        state = scorer.kernel_state(num_servers)
        if state is None:
            return None
        controllers = [rate_control.controller(sid) for sid in range(num_servers)]
        return state, controllers

    def kernel_restore(
        self,
        submitted: int,
        sent: int,
        backpressured: int,
        responses: int,
        scorer_sends: int,
        scorer_responses: int,
        scorer_evaluations: int,
    ) -> None:
        """Fold the kernel's locally-accumulated counter deltas back in.

        The dense scorer arrays, rate controllers and backlog queues are
        shared live with the kernel (fallback paths mutate them directly),
        so only the batched observability counters need restoring.
        """
        scheduler = self.scheduler
        scheduler.requests_submitted += submitted
        scheduler.requests_sent += sent
        scheduler.requests_backpressured += backpressured
        scheduler.responses_received += responses
        scheduler.scorer.kernel_restore(scorer_sends, scorer_responses, scorer_evaluations)

    def on_duplicate_send(self, server_id: Hashable, now: float) -> None:
        # Read-repair duplicates occupy the server and will generate
        # feedback, so they must be reflected in the outstanding count even
        # though they bypass ranking and rate limiting.
        self.scheduler.scorer.on_send(server_id, now)

    # -------------------------------------------------------------- responses
    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> list[tuple[object, Hashable]]:
        released = self.scheduler.on_response(server_id, feedback, response_time, now)
        return [(entry.request, chosen) for entry, chosen in released]

    def on_timeout(self, server_id: Hashable, now: float) -> None:
        self.scheduler.on_timeout(server_id, now)

    # ---------------------------------------------------------------- backlog
    def drain_backlog(self, now: float) -> list[tuple[object, Hashable]]:
        released = self.scheduler.drain_backlog(now)
        return [(entry.request, chosen) for entry, chosen in released]

    def pending_backlog(self) -> int:
        return self.scheduler.pending_backlog()

    def next_retry_ms(self, now: float) -> float | None:
        return self.scheduler.next_backlog_retry_ms(now)

    # ------------------------------------------------------------ observation
    def sending_rates(self) -> dict[Hashable, float]:
        """Current per-server sending rates (requests per δ window)."""
        return self.scheduler.sending_rates()

    def rate_history(self, server_id: Hashable) -> list[RateControlEvent]:
        """The recorded rate adjustments for one server (Figure 13 traces)."""
        return self.scheduler.rate_control.controller(server_id).history

    def stats(self) -> dict:
        return self.scheduler.stats()
