"""The C3 strategy adapter — wraps the core scheduler behind the selector API."""

from __future__ import annotations

from typing import Hashable, Sequence

from ..core.config import C3Config
from ..core.feedback import ServerFeedback
from ..core.scheduler import C3Scheduler
from .base import ReplicaSelector, SelectorDecision

__all__ = ["C3Selector"]


class C3Selector(ReplicaSelector):
    """Replica selection with C3 ranking, rate control and backpressure.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.C3Config` controlling scoring and rate
        control.  Remember to call :meth:`C3Config.with_clients` (or set
        ``concurrency_weight``) so the concurrency compensation matches the
        deployment, as the paper prescribes.
    record_rate_history:
        Forwarded to the scheduler; enables the Figure 13 rate traces.
    """

    name = "C3"

    def __init__(self, config: C3Config | None = None, record_rate_history: bool = False) -> None:
        self.config = config or C3Config()
        self.scheduler = C3Scheduler(self.config, record_rate_history=record_rate_history)

    # ------------------------------------------------------------------ sends
    def submit(self, request: object, replica_group: Sequence[Hashable], now: float) -> SelectorDecision:
        decision = self.scheduler.submit(request, replica_group, now)
        return SelectorDecision(
            server_id=decision.server_id,
            backpressured=decision.backpressured,
            retry_after_ms=decision.retry_after_ms,
        )

    def on_duplicate_send(self, server_id: Hashable, now: float) -> None:
        # Read-repair duplicates occupy the server and will generate
        # feedback, so they must be reflected in the outstanding count even
        # though they bypass ranking and rate limiting.
        self.scheduler.scorer.on_send(server_id, now)

    # -------------------------------------------------------------- responses
    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> list[tuple[object, Hashable]]:
        released = self.scheduler.on_response(server_id, feedback, response_time, now)
        return [(entry.request, chosen) for entry, chosen in released]

    def on_timeout(self, server_id: Hashable, now: float) -> None:
        self.scheduler.on_timeout(server_id, now)

    # ---------------------------------------------------------------- backlog
    def drain_backlog(self, now: float) -> list[tuple[object, Hashable]]:
        released = self.scheduler.drain_backlog(now)
        return [(entry.request, chosen) for entry, chosen in released]

    def pending_backlog(self) -> int:
        return self.scheduler.pending_backlog()

    def next_retry_ms(self, now: float) -> float | None:
        return self.scheduler.next_backlog_retry_ms(now)

    # ------------------------------------------------------------ observation
    def sending_rates(self) -> dict[Hashable, float]:
        """Current per-server sending rates (requests per δ window)."""
        return self.scheduler.sending_rates()

    def rate_history(self, server_id: Hashable):
        """The recorded rate adjustments for one server (Figure 13 traces)."""
        return self.scheduler.rate_control.controller(server_id).history

    def stats(self) -> dict:
        return self.scheduler.stats()
