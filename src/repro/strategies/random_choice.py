"""Uniform-random replica selection (a baseline the paper dismisses in §6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from .base import StatefulSelector
from .registry import register_strategy

__all__ = ["RandomParams", "RandomSelector"]


@dataclass(frozen=True, slots=True)
class RandomParams:
    """Uniform-random selection has no tunable parameters."""


@register_strategy(
    "RAND",
    aliases=("RANDOM",),
    params=RandomParams,
    description="Uniform-random replica choice (the paper's throwaway baseline)",
    context_args=("rng",),
)
class RandomSelector(StatefulSelector):
    """Pick a replica uniformly at random."""

    name = "RAND"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.rng = rng or np.random.default_rng()

    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        return replica_group[int(self.rng.integers(len(replica_group)))]
