"""Rate-limited round-robin (RR) replica selection.

The §6 baseline that isolates the contribution of C3's rate limiter: clients
keep the same per-server CUBIC rate controllers and backpressure queues as
C3 but replace the replica *ranking* with a plain per-replica-group
round-robin ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from ..core.backpressure import BackpressureQueues, BacklogEntry
from ..core.config import C3Config
from ..core.feedback import ServerFeedback
from ..core.rate_control import PerServerRateControl
from .base import ReplicaSelector, SelectorDecision
from .registry import BuildContext, register_strategy

__all__ = ["RoundRobinParams", "RoundRobinSelector"]


@dataclass(frozen=True, slots=True)
class RoundRobinParams:
    """RR parameters: the rate-control ablation switch plus its CUBIC knobs.

    ``None`` for a rate knob means "use the deployment's base C3 config"
    (the same controllers C3 runs with, per §6).
    """

    rate_limited: bool = True
    initial_rate: float | None = None
    rate_delta_ms: float | None = None
    beta: float | None = None
    smax: float | None = None


def _rr_config(params: Mapping[str, Any], base: C3Config | None) -> C3Config:
    config = base or C3Config()
    overrides = {
        key: value
        for key, value in params.items()
        if key != "rate_limited" and value is not None
    }
    return config.copy(**overrides) if overrides else config


def _validate_rr_params(params: Mapping[str, Any]) -> None:
    _rr_config(params, None)


def _build_round_robin(params: Mapping[str, Any], ctx: BuildContext) -> "RoundRobinSelector":
    return RoundRobinSelector(
        config=_rr_config(params, ctx.c3_config),
        rate_limited=bool(params.get("rate_limited", True)),
    )


@register_strategy(
    "RR",
    aliases=("ROUND_ROBIN",),
    params=RoundRobinParams,
    description="Round-robin ordering with C3's per-server rate limiting and backpressure",
    factory=_build_round_robin,
    validate=_validate_rr_params,
)
class RoundRobinSelector(ReplicaSelector):
    """Round-robin ordering with per-server rate limiting and backpressure.

    Parameters
    ----------
    config:
        C3 configuration (only the rate-control fields are used).
    rate_limited:
        When False the strategy degrades to plain round-robin with no
        backpressure (useful as a separate baseline and for ablations).
    """

    name = "RR"

    def __init__(self, config: C3Config | None = None, rate_limited: bool = True) -> None:
        self.config = config or C3Config()
        self.rate_limited = rate_limited
        self.rate_control = PerServerRateControl(self.config)
        self.backlog = BackpressureQueues()
        self._cursor: dict[frozenset, int] = {}
        self.requests_submitted = 0
        self.requests_backpressured = 0
        self.responses_received = 0

    # ------------------------------------------------------------------ order
    def _ordered(self, replica_group: tuple) -> list[Hashable]:
        key = frozenset(replica_group)
        start = self._cursor.get(key, 0) % len(replica_group)
        self._cursor[key] = start + 1
        return [replica_group[(start + i) % len(replica_group)] for i in range(len(replica_group))]

    def _try_place(self, replica_group: tuple, now: float) -> Hashable | None:
        for server_id in self._ordered(replica_group):
            if not self.rate_limited or self.rate_control.try_acquire(server_id, now):
                return server_id
        return None

    # ------------------------------------------------------------------ sends
    def submit(self, request: object, replica_group: Sequence[Hashable], now: float) -> SelectorDecision:
        group = tuple(replica_group)
        if not group:
            raise ValueError("replica_group must not be empty")
        self.requests_submitted += 1
        server_id = self._try_place(group, now)
        if server_id is not None:
            return SelectorDecision(server_id=server_id, backpressured=False)
        self.backlog.enqueue(request, group, now)
        self.requests_backpressured += 1
        retry = self.rate_control.earliest_availability(group, now)
        return SelectorDecision(server_id=None, backpressured=True, retry_after_ms=retry)

    # -------------------------------------------------------------- responses
    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> list[tuple[object, Hashable]]:
        self.responses_received += 1
        if self.rate_limited:
            self.rate_control.on_response(server_id, now)
            return self.drain_backlog(now)
        return []

    # ---------------------------------------------------------------- backlog
    def drain_backlog(self, now: float) -> list[tuple[object, Hashable]]:
        if not self.rate_limited:
            return []

        def can_place(entry: BacklogEntry, at: float) -> Hashable | None:
            return self._try_place(entry.replica_group, at)

        released = self.backlog.drain_ready(now, can_place)
        return [(entry.request, chosen) for entry, chosen in released]

    def pending_backlog(self) -> int:
        return self.backlog.pending()

    def next_retry_ms(self, now: float) -> float | None:
        queues = self.backlog.nonempty_queues()
        if not queues:
            return None
        return min(
            self.rate_control.earliest_availability(tuple(q.group_key), now) for q in queues
        )

    def stats(self) -> dict:
        return {
            "submitted": self.requests_submitted,
            "backpressured": self.requests_backpressured,
            "responses": self.responses_received,
            "pending_backlog": self.pending_backlog(),
        }
