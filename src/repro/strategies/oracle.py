"""The oracle (ORA) baseline from §6.

The oracle selects replicas using *perfect, instantaneous* knowledge of each
server's queue size and service rate — information a real client cannot have
— and therefore bounds how well any feedback-driven scheme can do.  The
simulated client supplies a callback that exposes the true server state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.feedback import ServerFeedback
from .base import StatefulSelector
from .registry import ServerStateFn, register_strategy

__all__ = ["OracleParams", "OracleSelector", "ServerStateFn"]


@dataclass(frozen=True, slots=True)
class OracleParams:
    """The oracle has no tunable parameters — it reads ground truth."""


@register_strategy(
    "ORA",
    aliases=("ORACLE",),
    params=OracleParams,
    description="Omniscient baseline: smallest instantaneous queue x service time, from ground truth",
    context_args=("server_state_fn",),
    requires=("server_state_fn",),
)
class OracleSelector(StatefulSelector):
    """Choose the replica with the smallest instantaneous ``q / μ`` product."""

    name = "ORA"

    def __init__(self, server_state_fn: ServerStateFn) -> None:
        super().__init__()
        if server_state_fn is None:
            raise ValueError("OracleSelector requires a server_state_fn")
        self.server_state_fn = server_state_fn

    def _cost(self, server_id: Hashable) -> float:
        pending, service_time = self.server_state_fn(server_id)
        if service_time <= 0:
            raise ValueError(f"service_time for {server_id!r} must be positive")
        # (q + 1) * service time = expected time to drain the queue plus us.
        return (float(pending) + 1.0) * float(service_time)

    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        return min(replica_group, key=lambda sid: (self._cost(sid), str(sid)))

    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        # The oracle keeps no state — it always reads the ground truth.
        return None
