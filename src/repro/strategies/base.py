"""The replica-selector interface shared by C3 and every baseline.

A selector is a *client-side* object: each simulated client (or cluster
coordinator) owns one instance.  The interface is deliberately shaped like
the C3 scheduler so that backpressure-capable strategies (C3, rate-limited
round-robin) and plain strategies (LOR, oracle, random, …) can be driven by
the same client code:

* :meth:`ReplicaSelector.submit` — request placement, possibly backpressured;
* :meth:`ReplicaSelector.on_response` — response accounting, returning any
  backlogged requests that became dispatchable;
* :meth:`ReplicaSelector.drain_backlog` / :meth:`ReplicaSelector.next_retry_ms`
  — backlog management for the client's retry timers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.feedback import ServerFeedback

__all__ = ["SelectorDecision", "ReplicaSelector", "StatefulSelector"]


@dataclass(frozen=True, slots=True)
class SelectorDecision:
    """Outcome of one :meth:`ReplicaSelector.submit` call."""

    server_id: Hashable | None
    backpressured: bool = False
    retry_after_ms: float = 0.0

    @property
    def sent(self) -> bool:
        """True when a server was chosen for immediate dispatch."""
        return self.server_id is not None


class ReplicaSelector(ABC):
    """Abstract replica-selection strategy."""

    #: Human-readable strategy name (used in reports and plots).
    name: str = "base"

    @abstractmethod
    def submit(self, request: object, replica_group: Sequence[Hashable], now: float) -> SelectorDecision:
        """Choose a server for ``request`` or signal backpressure."""

    @abstractmethod
    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> list[tuple[object, Hashable]]:
        """Account for a completed request.

        Returns a (possibly empty) list of ``(request, server_id)`` pairs for
        backlogged requests released by this response.
        """

    def kernel_submit(
        self, request: object, replica_group: Sequence[Hashable], now: float
    ) -> object:
        """Placement entry point used by the batched simulator kernel.

        Must return an object exposing ``server_id`` (``None`` means
        backpressured) and ``retry_after_ms`` — by default the
        :class:`SelectorDecision` from :meth:`submit`.  Strategies whose
        ``submit`` merely re-wraps an internal decision object (C3) override
        this to return that object directly, skipping one allocation per
        request on the hot path.  Behavior must stay identical to
        :meth:`submit`.
        """
        return self.submit(request, replica_group, now)

    def on_timeout(self, server_id: Hashable, now: float) -> None:
        """Account for a request that will never complete.  Optional."""

    def on_duplicate_send(self, server_id: Hashable, now: float) -> None:
        """Account for a read-repair / speculative duplicate send.

        Duplicates bypass replica selection but still occupy the server and
        will produce feedback; strategies that track outstanding requests
        should count them.  The default implementation ignores them.
        """

    def drain_backlog(self, now: float) -> list[tuple[object, Hashable]]:
        """Release any backlogged requests that can now be placed."""
        return []

    def pending_backlog(self) -> int:
        """Number of requests currently parked by backpressure."""
        return 0

    def next_retry_ms(self, now: float) -> float | None:
        """Hint for when the client should retry the backlog (None = never)."""
        return None

    def stats(self) -> dict:
        """Strategy-specific counters for reporting (default: empty)."""
        return {}


class StatefulSelector(ReplicaSelector):
    """Convenience base class for strategies without backpressure.

    Subclasses implement :meth:`choose` plus whatever state updates they need
    in :meth:`record_send` / :meth:`record_response`.
    """

    def __init__(self) -> None:
        self.requests_submitted = 0
        self.responses_received = 0

    @abstractmethod
    def choose(self, replica_group: Sequence[Hashable], now: float) -> Hashable:
        """Pick one server from ``replica_group``."""

    def record_send(self, server_id: Hashable, now: float) -> None:
        """Hook called after a send decision (default: no-op)."""

    def record_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> None:
        """Hook called on every response (default: no-op)."""

    # ------------------------------------------------------------------ API
    def submit(self, request: object, replica_group: Sequence[Hashable], now: float) -> SelectorDecision:
        group = tuple(replica_group)
        if not group:
            raise ValueError("replica_group must not be empty")
        self.requests_submitted += 1
        server_id = self.choose(group, now)
        if server_id not in group:
            raise ValueError(f"choose() returned {server_id!r} which is not in the replica group")
        self.record_send(server_id, now)
        return SelectorDecision(server_id=server_id, backpressured=False)

    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> list[tuple[object, Hashable]]:
        self.responses_received += 1
        self.record_response(server_id, feedback, response_time, now)
        return []

    def stats(self) -> dict:
        return {
            "submitted": self.requests_submitted,
            "responses": self.responses_received,
        }
