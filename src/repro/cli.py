"""Command-line interface: ``c3-repro`` / ``python -m repro``.

Sub-commands
------------

``list``
    List every registered experiment with its description.
``run <experiment-id> [...]``
    Run one experiment and print its report table.
``simulate``
    Run a single flat-simulator scenario with explicit parameters.
``cluster``
    Run a single cluster scenario with explicit parameters.
``sweep``
    Expand a parameter grid (strategies × utilizations × fluctuation
    intervals × scenarios) across N seeds, execute it through the
    process-pool sweep runner with per-trial result caching, and print
    per-grid-point aggregates (mean/median/p99/p99.9/throughput with 95 %
    CIs).
``scenarios``
    List the builtin fault/perturbation scenarios and their knobs.
``strategies``
    List the registered replica-selection strategies — canonical names,
    aliases, and their parameters with defaults — plus the spec grammar
    accepted by every ``--strategy`` flag (``"c3:cubic_c=2e-4,b=3"``).
``controls``
    List the registered adaptive controls — failure detectors, hedging
    policies, and rate controllers — with their parameters and defaults;
    the same spec grammar powers every ``--failure-detector`` and
    ``--hedging`` flag (``"phi:threshold=8"``, ``"hedge:quantile=0.95"``).
``scale``
    Smoke-test scale mode: run one large streaming-metrics simulation
    (fixed-memory histograms instead of per-request latency lists) and
    report its summary, histogram footprint, and — with
    ``--compare-exact`` — the deviation from an exact-mode run of the
    same configuration, checked against the histogram error bound.
``search``
    Successive-halving search for the metric-optimal value of one numeric
    strategy parameter (e.g. the p99.9-optimal ``cubic_c``): every rung is
    an ordinary cached sweep over a growing seed prefix, the final rung
    ranks the survivors at full replication, and ``--compare-dense``
    verifies the winner against the dense grid's argmin on the same seeds.
``live``
    Run one live asyncio cluster trial on localhost: N replica server
    *processes* with real queues, driven by the identical strategy /
    control / scenario specs as the simulator, writing a per-trial
    artifact directory (payload + streaming-histogram JSON + per-server
    load series) consumable by ``report --live``.
``report``
    Render saved sweep results (``sweep --json``), search results
    (``search --json``), live-trial directories (``--live``) and
    ``benchmarks/BENCH_*.json`` perf snapshots into one markdown (and
    optionally HTML) artifact — the reviewable results page CI uploads
    for every PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from pathlib import Path

from . import __version__
from .analysis.histogram import quantile_within_bound
from .analysis.report import format_table
from .analysis.report_sweep import markdown_to_html, render_report
from .cluster import ClusterConfig, run_cluster
from .controls import control_names, get_control, kind_label
from .experiments import list_experiments, registry, run_experiment
from .runner import (
    SearchResult,
    SweepCheckpoint,
    SweepResult,
    SweepRunner,
    SweepSpec,
    checkpoint_path_for,
    dense_argmin,
    seed_range,
    successive_halving,
)
from .runner.results import AGGREGATE_METRICS
from .scenarios import get_scenario, scenario_names
from .simulator import SimulationConfig, run_simulation
from .strategies import get_strategy, strategy_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="c3-repro",
        description="Reproduction of C3: adaptive replica selection (NSDI 2015)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment_id", help="experiment id (see `c3-repro list`)")
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="scenario override for experiments that accept one (see `c3-repro scenarios`)",
    )

    strategy_help = (
        "strategy name or parameterized spec, e.g. C3 or \"c3:cubic_c=2e-4,b=3\" "
        "(see `c3-repro strategies`)"
    )
    detector_help = (
        "failure-detector control spec, e.g. binary or \"phi:threshold=8\" "
        "(see `c3-repro controls`)"
    )
    hedging_help = (
        "hedging control spec, e.g. \"hedge:quantile=0.95,max_extra=1\" "
        "(see `c3-repro controls`; default: no hedging)"
    )

    sim_parser = sub.add_parser("simulate", help="run one flat-simulator scenario")
    sim_parser.add_argument("--strategy", default="C3", help=strategy_help)
    sim_parser.add_argument("--failure-detector", default="binary", help=detector_help)
    sim_parser.add_argument("--hedging", default=None, help=hedging_help)
    sim_parser.add_argument("--servers", type=int, default=50)
    sim_parser.add_argument("--clients", type=int, default=150)
    sim_parser.add_argument("--requests", type=int, default=10_000)
    sim_parser.add_argument("--utilization", type=float, default=0.7)
    sim_parser.add_argument("--interval", type=float, default=100.0, help="fluctuation interval (ms)")
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="named perturbation scenario (see `c3-repro scenarios`)",
    )
    sim_parser.add_argument(
        "--scenario-param", action="append", dest="scenario_params", metavar="KEY=VALUE",
        help="override one scenario knob (repeatable; values parsed as JSON, else string)",
    )
    sim_parser.add_argument(
        "--metrics-mode", default="exact", choices=["exact", "streaming"],
        help="latency collection: exact per-request lists or fixed-memory streaming histograms",
    )
    sim_parser.add_argument(
        "--kernel", default="object", choices=["object", "batched"],
        help="event-loop kernel: the per-event object path or the batched "
             "typed-event path (identical exact-mode results, several times faster)",
    )
    sim_parser.add_argument(
        "--rng", default="v1", choices=["v1", "block"],
        help="RNG regime: v1 (scalar draws, legacy digests) or block "
             "(block-drawn variates — faster, kernel-identical, a new digest domain)",
    )

    cluster_parser = sub.add_parser("cluster", help="run one cluster scenario")
    cluster_parser.add_argument("--strategy", default="C3", help=strategy_help)
    cluster_parser.add_argument("--hedging", default=None, help=hedging_help)
    cluster_parser.add_argument("--nodes", type=int, default=15)
    cluster_parser.add_argument("--generators", type=int, default=60)
    cluster_parser.add_argument("--duration", type=float, default=2_000.0, help="duration (ms)")
    cluster_parser.add_argument("--mix", default="read_heavy", choices=["read_heavy", "read_only", "update_heavy"])
    cluster_parser.add_argument("--disk", default="hdd", choices=["hdd", "ssd"])
    cluster_parser.add_argument("--seed", type=int, default=0)

    sweep_parser = sub.add_parser(
        "sweep", help="run a multi-seed parameter grid through the process-pool sweep runner"
    )
    sweep_parser.add_argument(
        "--strategy", action="append", dest="strategies", metavar="SPEC",
        help=f"strategy to include — {strategy_help} (repeatable; default: C3 LOR RR); "
             "distinct parameterizations of one strategy sweep as distinct grid points",
    )
    sweep_parser.add_argument(
        "--utilization", action="append", dest="utilizations", type=float, metavar="U",
        help="utilization level to include (repeatable; default: 0.7)",
    )
    sweep_parser.add_argument(
        "--interval", action="append", dest="intervals", type=float, metavar="MS",
        help="fluctuation interval (ms) to include (repeatable; default: 100)",
    )
    sweep_parser.add_argument(
        "--scenario", action="append", dest="scenarios", metavar="NAME",
        help="scenario to grid over (repeatable; see `c3-repro scenarios`; "
             "default: legacy fluctuation fields, no scenario dimension)",
    )
    sweep_parser.add_argument(
        "--failure-detector", action="append", dest="failure_detectors", metavar="SPEC",
        help=f"failure detector to grid over — {detector_help} (repeatable; "
             "default: binary, no detector dimension)",
    )
    sweep_parser.add_argument(
        "--hedging", action="append", dest="hedging_specs", metavar="SPEC",
        help=f"hedging policy to grid over — {hedging_help.replace('default: no hedging', 'repeatable')}; "
             "the literal value 'none' grids an unhedged point",
    )
    sweep_parser.add_argument("--servers", type=int, default=10)
    sweep_parser.add_argument("--clients", type=int, default=40)
    sweep_parser.add_argument("--requests", type=int, default=2_000, help="requests per trial")
    sweep_parser.add_argument("--num-seeds", type=int, default=4, help="replicates per grid point")
    sweep_parser.add_argument("--base-seed", type=int, default=0, help="first seed of the replicate range")
    sweep_parser.add_argument("--workers", type=int, default=None, help="pool size (default: CPU count)")
    sweep_parser.add_argument("--serial", action="store_true", help="run in-process instead of a pool")
    sweep_parser.add_argument(
        "--cache-dir", default=".sweep-cache",
        help="trial result cache directory (default: .sweep-cache)",
    )
    sweep_parser.add_argument(
        "--kernel", default="object", choices=["object", "batched"],
        help="event-loop kernel for every trial (see `simulate --kernel`)",
    )
    sweep_parser.add_argument(
        "--rng", default="v1", choices=["v1", "block"],
        help="RNG regime for every trial (see `simulate --rng`)",
    )
    sweep_parser.add_argument("--no-cache", action="store_true", help="disable the trial cache")
    sweep_parser.add_argument("--json", dest="json_path", metavar="PATH", help="also save the full sweep result as JSON")
    sweep_parser.add_argument(
        "--metrics-mode", default="exact", choices=["exact", "streaming"],
        help="latency collection mode for every trial (streaming = fixed-memory histograms)",
    )
    sweep_parser.add_argument(
        "--checkpoint", action="store_true",
        help="write a resumable completion manifest under the cache dir "
             "(<cache-dir>/checkpoints/<spec-key>.json), updated as each trial finishes",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="continue a checkpointed sweep from its manifest (implies --checkpoint; "
             "errors if no manifest exists for this spec)",
    )
    sweep_parser.add_argument(
        "--max-trials", type=int, default=None, metavar="N",
        help="execute at most N cache-miss trials this invocation, deferring the rest "
             "to a later --resume (budget slicing; requires --checkpoint)",
    )

    sub.add_parser("scenarios", help="list builtin fault/perturbation scenarios")

    sub.add_parser(
        "strategies",
        help="list registered replica-selection strategies, aliases, and parameters",
    )

    sub.add_parser(
        "controls",
        help="list registered adaptive controls (detectors, hedging, rate) and parameters",
    )

    scale_parser = sub.add_parser(
        "scale", help="smoke-test streaming (scale-mode) metrics on one large run"
    )
    scale_parser.add_argument("--strategy", default="C3", help=strategy_help)
    scale_parser.add_argument("--servers", type=int, default=50)
    scale_parser.add_argument("--clients", type=int, default=150)
    scale_parser.add_argument("--requests", type=int, default=100_000)
    scale_parser.add_argument("--utilization", type=float, default=0.7)
    scale_parser.add_argument("--seed", type=int, default=0)
    scale_parser.add_argument(
        "--relative-error", type=float, default=0.01,
        help="histogram relative-error bound (default: 0.01 = 1%%)",
    )
    scale_parser.add_argument(
        "--compare-exact", action="store_true",
        help="also run exact mode on the same config and check the deviation against the bound",
    )

    search_parser = sub.add_parser(
        "search",
        help="successive-halving search for the metric-optimal value of one strategy parameter",
    )
    search_parser.add_argument(
        "--strategy", default="C3",
        help="strategy whose parameter is searched (default: C3; see `c3-repro strategies`)",
    )
    search_parser.add_argument(
        "--param", required=True, metavar="NAME",
        help="the strategy parameter to search, e.g. cubic_c (aliases accepted)",
    )
    search_parser.add_argument(
        "--values", required=True, metavar="V1,V2,...",
        help="comma-separated candidate values (JSON scalars, e.g. 1e-5,2e-4,8e-4)",
    )
    search_parser.add_argument(
        "--metric", default="p999", choices=list(AGGREGATE_METRICS),
        help="objective metric (default: p999 = p99.9 latency; throughput_rps maximizes, "
             "latency metrics minimize)",
    )
    search_parser.add_argument(
        "--eta", type=int, default=2,
        help="halving rate: keep the best 1/eta of each rung's candidates (default: 2)",
    )
    search_parser.add_argument(
        "--min-seeds", type=int, default=1,
        help="seed-prefix floor for the first rung (default: 1)",
    )
    search_parser.add_argument("--servers", type=int, default=10)
    search_parser.add_argument("--clients", type=int, default=40)
    search_parser.add_argument("--requests", type=int, default=2_000, help="requests per trial")
    search_parser.add_argument("--utilization", type=float, default=0.7)
    search_parser.add_argument(
        "--interval", type=float, default=100.0, help="fluctuation interval (ms)"
    )
    search_parser.add_argument(
        "--num-seeds", type=int, default=4,
        help="full replicate count — the final rung ranks survivors on all of them",
    )
    search_parser.add_argument("--base-seed", type=int, default=0, help="first seed of the replicate range")
    search_parser.add_argument("--workers", type=int, default=None, help="pool size (default: CPU count)")
    search_parser.add_argument("--serial", action="store_true", help="run in-process instead of a pool")
    search_parser.add_argument(
        "--cache-dir", default=".sweep-cache",
        help="trial result cache directory — rung seed prefixes nest, so the cache is "
             "what makes successive halving cheap (default: .sweep-cache)",
    )
    search_parser.add_argument("--no-cache", action="store_true", help="disable the trial cache")
    search_parser.add_argument(
        "--kernel", default="object", choices=["object", "batched"],
        help="event-loop kernel for every trial (see `simulate --kernel`)",
    )
    search_parser.add_argument(
        "--rng", default="v1", choices=["v1", "block"],
        help="RNG regime for every trial (see `simulate --rng`)",
    )
    search_parser.add_argument(
        "--compare-dense", action="store_true",
        help="also run the dense grid (every candidate × every seed, cache-shared with "
             "the search) and verify the winner matches its argmin; exits 1 on mismatch",
    )
    search_parser.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="also save the full search result as JSON (the `report` input shape)",
    )

    live_parser = sub.add_parser(
        "live",
        help="run one live asyncio cluster trial (localhost server processes)",
    )
    live_parser.add_argument(
        "--strategy", default="c3", metavar="SPEC",
        help="strategy spec, same grammar as simulate (default: c3)",
    )
    live_parser.add_argument(
        "--failure-detector", default=None, metavar="SPEC",
        help="failure-detector spec (e.g. phi:threshold=8); live liveness is phi-driven",
    )
    live_parser.add_argument(
        "--hedging", default=None, metavar="SPEC",
        help="hedging spec (e.g. hedge:quantile=0.95,max_extra=1)",
    )
    live_parser.add_argument(
        "--scenario", default="baseline", metavar="NAME",
        help="live-supported scenario: baseline, slow-node, gc-storm, crash-recovery "
             "(underscores accepted)",
    )
    live_parser.add_argument(
        "--scenario-param", action="append", dest="scenario_params", metavar="KEY=VALUE",
        help="override one scenario knob; repeatable",
    )
    live_parser.add_argument("--servers", type=int, default=3, help="server processes (default 3)")
    live_parser.add_argument(
        "--replication-factor", type=int, default=3, metavar="RF",
        help="replica group size (default 3)",
    )
    live_parser.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="total trial duration including warmup/cooldown (default 10)",
    )
    live_parser.add_argument(
        "--warmup", type=float, default=1.0, metavar="SECONDS",
        help="leading seconds trimmed from the latency capture (default 1)",
    )
    live_parser.add_argument(
        "--cooldown", type=float, default=0.5, metavar="SECONDS",
        help="trailing seconds trimmed from the latency capture (default 0.5)",
    )
    live_parser.add_argument(
        "--rate", type=float, default=200.0, metavar="REQ_PER_S",
        help="open-loop Poisson arrival rate (default 200 req/s)",
    )
    live_parser.add_argument(
        "--service-time", type=float, default=4.0, metavar="MS",
        help="mean exponential service time per server (default 4 ms)",
    )
    live_parser.add_argument("--seed", type=int, default=42, help="trial seed (default 42)")
    live_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory (default: trials/<strategy>-<scenario>-seed<seed>)",
    )

    report_parser = sub.add_parser(
        "report",
        help="render sweep/search JSON results and BENCH_*.json snapshots into one artifact",
    )
    report_parser.add_argument(
        "--live", action="append", dest="live_paths", metavar="DIR",
        help="live-trial artifact directory (`c3-repro live` output); repeatable",
    )
    report_parser.add_argument(
        "--sweep", action="append", dest="sweep_paths", metavar="PATH",
        help="sweep result JSON (`sweep --json` output); repeatable",
    )
    report_parser.add_argument(
        "--search", action="append", dest="search_paths", metavar="PATH",
        help="search result JSON (`search --json` output); repeatable",
    )
    report_parser.add_argument(
        "--bench", action="append", dest="bench_paths", metavar="PATH",
        help="pytest-benchmark JSON snapshot; repeatable "
             "(default: benchmarks/BENCH_*.json when present)",
    )
    report_parser.add_argument(
        "--no-bench", action="store_true",
        help="skip the perf-trajectory section even when benchmarks/BENCH_*.json exists",
    )
    report_parser.add_argument(
        "--title", default="C3 reproduction — sweep report", help="report title",
    )
    report_parser.add_argument(
        "--output", default="sweep-report.md", metavar="PATH",
        help="markdown output path (default: sweep-report.md)",
    )
    report_parser.add_argument(
        "--html", dest="html_path", metavar="PATH",
        help="also render a standalone HTML page to PATH",
    )
    return parser


def _check_scenarios(names: Sequence[str]) -> str | None:
    """An error message when any name is not a registered scenario."""
    known = scenario_names()
    unknown = [name for name in names if name not in known]
    if unknown:
        return (
            f"unknown scenario{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(n) for n in unknown)}; available scenarios: {', '.join(known)}"
        )
    return None


def _parse_scenario_params(pairs: Sequence[str] | None) -> dict:
    """Parse repeated ``KEY=VALUE`` flags (JSON values, falling back to str)."""
    params: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"malformed --scenario-param {pair!r}; expected KEY=VALUE")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _cmd_list() -> int:
    rows = [[experiment_id, registry.describe(experiment_id)] for experiment_id in list_experiments()]
    print(format_table(["experiment", "description"], rows))
    return 0


def _cmd_scenarios() -> int:
    rows = []
    for name in scenario_names():
        definition = get_scenario(name)
        knobs = ", ".join(f"{k}={v!r}" for k, v in sorted(definition.knobs.items())) or "-"
        rows.append([name, definition.description, knobs])
    print(format_table(["scenario", "description", "knobs (defaults)"], rows))
    return 0


def _cmd_strategies() -> int:
    rows = []
    for name in strategy_names():
        info = get_strategy(name)
        rendered = []
        for field_name, default in info.param_defaults().items():
            aliases = info.aliases_for(field_name)
            label = f"{field_name} ({', '.join(aliases)})" if aliases else field_name
            rendered.append(f"{label}={default!r}")
        rows.append(
            [
                name,
                ", ".join(info.aliases) or "-",
                info.description,
                ", ".join(rendered) or "-",
            ]
        )
    print(format_table(["strategy", "aliases", "description", "params (defaults)"], rows))
    print()
    print(
        "spec grammar: NAME[:param=value,...] — names/aliases are case-insensitive, "
        "values are JSON scalars, parenthesised short-hands are accepted param "
        "aliases (e.g. \"c3:cubic_c=2e-4,b=3\"); a param left unset (or null) uses "
        "the paper default shown above."
    )
    return 0


def _cmd_controls() -> int:
    rows = []
    for name in control_names():
        info = get_control(name)
        rendered = []
        for field_name, default in info.param_defaults().items():
            aliases = info.aliases_for(field_name)
            label = f"{field_name} ({', '.join(aliases)})" if aliases else field_name
            rendered.append(f"{label}={default!r}")
        rows.append(
            [
                name,
                kind_label(info.kind),
                ", ".join(info.aliases) or "-",
                info.description,
                ", ".join(rendered) or "-",
            ]
        )
    print(format_table(["control", "kind", "aliases", "description", "params (defaults)"], rows))
    print()
    print(
        "spec grammar: NAME[:param=value,...] — the same grammar as strategies; "
        "e.g. --failure-detector \"phi:threshold=8\" or --hedging "
        "\"hedge:quantile=0.95,max_extra=1\". Defaults (binary detection, no "
        "hedging) reproduce the legacy simulator byte-for-byte; any selection x "
        "detection x hedging combination is a valid sweep point."
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.scenario is not None:
        error = _check_scenarios([args.scenario])
        if error:
            print(error, file=sys.stderr)
            return 2
        if not registry.supports_param(args.experiment_id, "scenario"):
            print(
                f"experiment {args.experiment_id!r} does not accept a --scenario override",
                file=sys.stderr,
            )
            return 2
        kwargs["scenario"] = args.scenario
    result = run_experiment(args.experiment_id, **kwargs)
    print(result.to_text())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        error = _check_scenarios([args.scenario])
        if error:
            print(error, file=sys.stderr)
            return 2
    elif args.scenario_params:
        print("--scenario-param requires --scenario", file=sys.stderr)
        return 2
    try:
        config = SimulationConfig(
            num_servers=args.servers,
            num_clients=args.clients,
            num_requests=args.requests,
            utilization=args.utilization,
            fluctuation_interval_ms=args.interval,
            strategy=args.strategy,
            seed=args.seed,
            scenario=args.scenario,
            scenario_params=_parse_scenario_params(args.scenario_params),
            metrics_mode=args.metrics_mode,
            failure_detector=args.failure_detector,
            hedging=args.hedging,
            kernel=args.kernel,
            rng=args.rng,
        )
    except ValueError as error:
        # Malformed KEY=VALUE pairs, unknown scenario knobs, and invalid
        # config values all surface as the CLI's clean exit-2 error shape.
        print(error, file=sys.stderr)
        return 2
    result = run_simulation(config)
    summary = result.summary
    rows = [[config.strategy, summary.mean, summary.median, summary.p95, summary.p99, summary.p999, result.throughput_rps]]
    print(format_table(["strategy", "mean", "median", "p95", "p99", "p99.9", "throughput (req/s)"], rows))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    try:
        config = ClusterConfig(
            num_nodes=args.nodes,
            num_generators=args.generators,
            duration_ms=args.duration,
            workload_mix=args.mix,
            disk=args.disk,
            strategy=args.strategy,
            hedging=args.hedging,
            seed=args.seed,
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    result = run_cluster(config)
    summary = result.read_summary
    rows = [[config.strategy, args.mix, summary.mean, summary.median, summary.p95, summary.p99, summary.p999, result.throughput_rps]]
    print(
        format_table(
            ["strategy", "workload", "mean", "median", "p95", "p99", "p99.9", "throughput (ops/s)"], rows
        )
    )
    return 0


def _check_seed_args(num_seeds: int, base_seed: int) -> str | None:
    """A clean error message for invalid seed-range flags, or ``None``."""
    if num_seeds < 1:
        return f"--num-seeds must be >= 1, got {num_seeds}"
    if base_seed < 0:
        return f"--base-seed must be >= 0, got {base_seed}"
    return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    seed_error = _check_seed_args(args.num_seeds, args.base_seed)
    if seed_error:
        print(seed_error, file=sys.stderr)
        return 2
    checkpointing = args.checkpoint or args.resume
    if checkpointing and args.no_cache:
        print(
            "--checkpoint/--resume need the trial cache (it stores the completed "
            "results a resume reloads); drop --no-cache",
            file=sys.stderr,
        )
        return 2
    if args.max_trials is not None and not checkpointing:
        print("--max-trials defers trials to a later --resume, so it requires --checkpoint", file=sys.stderr)
        return 2
    if args.max_trials is not None and args.max_trials < 0:
        print(f"--max-trials must be >= 0, got {args.max_trials}", file=sys.stderr)
        return 2
    grid = {
        "strategy": tuple(args.strategies or ("C3", "LOR", "RR")),
        "utilization": tuple(args.utilizations or (0.7,)),
        "fluctuation_interval_ms": tuple(args.intervals or (100.0,)),
    }
    if args.scenarios:
        error = _check_scenarios(args.scenarios)
        if error:
            print(error, file=sys.stderr)
            return 2
        grid["scenario"] = tuple(args.scenarios)
    if args.failure_detectors:
        grid["failure_detector"] = tuple(args.failure_detectors)
    if args.hedging_specs:
        # The literal "none" grids an unhedged point alongside hedged ones.
        grid["hedging"] = tuple(
            None if value.lower() == "none" else value for value in args.hedging_specs
        )
    try:
        # SweepSpec canonicalizes the strategy axis (bare names and
        # parameterized specs alike) and rejects unknown strategies or
        # params with the registry's did-you-mean error.
        spec = SweepSpec(
            base=SimulationConfig(
                num_servers=args.servers,
                num_clients=args.clients,
                num_requests=args.requests,
                metrics_mode=args.metrics_mode,
                kernel=args.kernel,
                rng=args.rng,
            ),
            grid=grid,
            seeds=seed_range(args.num_seeds, args.base_seed),
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    runner = SweepRunner(
        max_workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        parallel=not args.serial,
    )
    checkpoint = None
    if checkpointing:
        manifest_path = checkpoint_path_for(args.cache_dir, spec.key)
        if args.resume and not manifest_path.is_file():
            print(
                f"nothing to resume: no checkpoint manifest at {manifest_path} "
                f"(run with --checkpoint first, or check --cache-dir)",
                file=sys.stderr,
            )
            return 2
        try:
            checkpoint = SweepCheckpoint.open(spec, manifest_path)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    mode = "serial" if args.serial else f"pool x{runner.max_workers}"
    print(f"sweep {spec.key[:12]}: {spec.describe()} [{mode}]")
    if checkpoint is not None:
        print(f"checkpoint: {checkpoint.path} ({checkpoint.describe_progress()})")
    result = runner.run(spec, checkpoint=checkpoint, max_trials=args.max_trials)
    if not result.complete:
        print(
            f"trials: {result.total_trials} total, {result.executed} executed, "
            f"{result.cached} from cache, wall {result.wall_time_s:.2f}s"
        )
        print(
            f"sweep incomplete: {len(result.trials)}/{result.total_trials} trials "
            f"complete; rerun with --resume to continue"
        )
        if args.json_path:
            saved = result.save(args.json_path)
            print(f"saved (partial): {saved}")
        return 0

    param_headers = {
        "strategy": "strategy",
        "utilization": "util",
        "fluctuation_interval_ms": "interval (ms)",
        "scenario": "scenario",
        "failure_detector": "detector",
        "hedging": "hedging",
    }
    grid_keys = list(grid)
    streaming = args.metrics_mode == "streaming"
    rows = []
    for point in result.aggregates():
        metrics = point.metrics
        row = (
            [point.params[key] if point.params[key] is not None else "-" for key in grid_keys]
            + [
                point.n,
                str(metrics["mean"]),
                str(metrics["median"]),
                str(metrics["p99"]),
                str(metrics["p999"]),
                str(metrics["throughput_rps"]),
            ]
        )
        if streaming:
            # Bucket-merged pool across seeds: one distribution, not a mean
            # of per-seed percentiles.
            pooled = point.pooled or {}
            row.append(f"{pooled.get('p99.9', 0.0):.2f}")
        rows.append(row)
    headers = (
        [param_headers.get(key, key) for key in grid_keys]
        + ["n", "mean (ms)", "median (ms)", "p99 (ms)", "p99.9 (ms)", "throughput (req/s)"]
    )
    if streaming:
        headers.append("pooled p99.9 (ms)")
    print(format_table(headers, rows))
    print(
        f"trials: {len(result.trials)} total, {result.executed} executed, "
        f"{result.cached} from cache, wall {result.wall_time_s:.2f}s"
    )
    # Wall-time-independent content hash: identical across serial/pool,
    # cache-served, and interrupted-then-resumed executions of one spec.
    print(f"sweep digest: {result.digest()}")
    if args.json_path:
        saved = result.save(args.json_path)
        print(f"saved: {saved}")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    try:
        config = SimulationConfig(
            num_servers=args.servers,
            num_clients=args.clients,
            num_requests=args.requests,
            utilization=args.utilization,
            strategy=args.strategy,
            seed=args.seed,
            metrics_mode="streaming",
            histogram_relative_error=args.relative_error,
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    result = run_simulation(config)
    summary = result.summary
    rows = [[config.strategy, summary.count, summary.mean, summary.median, summary.p95,
             summary.p99, summary.p999, result.throughput_rps]]
    print(format_table(
        ["strategy", "n", "mean", "median", "p95", "p99", "p99.9", "throughput (req/s)"], rows
    ))
    histogram = result.latency_histogram
    assert histogram is not None  # streaming mode always attaches one
    print(
        f"streaming histogram: {histogram.bucket_count} buckets "
        f"(relative error {histogram.relative_error:g}, fixed memory — "
        f"no per-request latency list)"
    )
    print(f"digest: {result.digest()}")
    if not args.compare_exact:
        return 0

    exact = run_simulation(config.copy(metrics_mode="exact"))
    exact_summary = exact.summary
    print(format_table(
        ["mode", "median", "p95", "p99", "p99.9"],
        [
            ["exact", exact_summary.median, exact_summary.p95, exact_summary.p99, exact_summary.p999],
            ["streaming", summary.median, summary.p95, summary.p99, summary.p999],
        ],
    ))
    ok = True
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99), ("p99.9", 0.999)):
        within = quantile_within_bound(histogram, exact.latencies_ms, q)
        ok = ok and within
        print(f"{label}: {'within bound' if within else 'OUT OF BOUND'}")
    if not ok:
        print("streaming percentiles violated the documented error bound", file=sys.stderr)
        return 1
    print("all percentiles within the histogram error bound")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    seed_error = _check_seed_args(args.num_seeds, args.base_seed)
    if seed_error:
        print(seed_error, file=sys.stderr)
        return 2
    raw_values = [chunk.strip() for chunk in args.values.split(",") if chunk.strip()]
    if not raw_values:
        print(f"--values needs at least one candidate, got {args.values!r}", file=sys.stderr)
        return 2
    candidates = [f"{args.strategy}:{args.param}={value}" for value in raw_values]
    try:
        base = SimulationConfig(
            num_servers=args.servers,
            num_clients=args.clients,
            num_requests=args.requests,
            utilization=args.utilization,
            fluctuation_interval_ms=args.interval,
            strategy=args.strategy,
            kernel=args.kernel,
            rng=args.rng,
        )
        seeds = seed_range(args.num_seeds, args.base_seed)
        runner = SweepRunner(
            max_workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            parallel=not args.serial,
        )
        minimize = args.metric != "throughput_rps"
        mode = "serial" if args.serial else f"pool x{runner.max_workers}"
        direction = "minimize" if minimize else "maximize"
        print(
            f"search: {direction} {args.metric} over {len(candidates)} candidates "
            f"({args.strategy}:{args.param}) × {len(seeds)} seeds, eta={args.eta} [{mode}]"
        )
        result = successive_halving(
            base,
            "strategy",
            candidates,
            seeds,
            metric=args.metric,
            eta=args.eta,
            min_seeds=args.min_seeds,
            minimize=minimize,
            runner=runner,
        )
    except ValueError as error:
        # Unknown strategies/params, malformed values, and bad schedule
        # knobs all surface as the CLI's clean exit-2 error shape.
        print(error, file=sys.stderr)
        return 2
    rows = []
    for rung in result.rungs:
        rung_best = rung.promoted[0]
        rows.append(
            [
                rung.rung,
                len(rung.candidates),
                len(rung.seeds),
                rung.executed,
                rung.cached,
                f"{rung_best} ({rung.scores[rung_best]:.3f})",
            ]
        )
    print(format_table(
        ["rung", "candidates", "seeds", "executed", "cached", "rung best (score)"], rows
    ))
    print(f"winner: {result.best}  {args.metric}={result.best_score:.3f}  digest {result.best_digest}")
    print(
        f"trials: {result.executed} executed of {result.dense_trials} dense "
        f"({result.executed_fraction:.1%} of the grid), {result.cached} from cache, "
        f"wall {result.wall_time_s:.2f}s"
    )
    if args.json_path:
        saved = result.save(args.json_path)
        print(f"saved: {saved}")
    if args.compare_dense:
        dense_best, dense_score, dense_digest, dense_executed = dense_argmin(
            base, "strategy", candidates, seeds,
            metric=args.metric, minimize=minimize, runner=runner,
        )
        print(
            f"dense argmin: {dense_best}  {args.metric}={dense_score:.3f}  "
            f"digest {dense_digest} ({dense_executed} additional trials executed)"
        )
        if dense_digest == result.best_digest:
            print("winner matches dense argmin")
        else:
            print(
                f"SEARCH MISMATCH: search winner {result.best} != dense argmin {dense_best}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    # Imported lazily: the live package pulls in asyncio subprocess
    # machinery no other subcommand needs.
    from .live import LiveTrialConfig, run_trial

    try:
        config = LiveTrialConfig(
            strategy=args.strategy,
            failure_detector=args.failure_detector,
            hedging=args.hedging,
            scenario=args.scenario,
            scenario_params=_parse_scenario_params(args.scenario_params),
            num_servers=args.servers,
            replication_factor=args.replication_factor,
            duration_s=args.duration,
            warmup_s=args.warmup,
            cooldown_s=args.cooldown,
            arrival_rate_per_s=args.rate,
            base_service_ms=args.service_time,
            seed=args.seed,
        )
    except (KeyError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.out is not None:
        out_dir = Path(args.out)
    else:
        slug = config.strategy.split(":", 1)[0].lower()
        out_dir = Path("trials") / f"{slug}-{config.scenario}-seed{config.seed}"
    print(
        f"live trial: {config.strategy} on {config.num_servers} servers, "
        f"scenario {config.scenario}, {config.duration_s:.1f}s at "
        f"{config.arrival_rate_per_s:.0f} req/s (seed {config.seed})"
    )
    result = run_trial(config, out_dir)
    r = result.results
    latency = r["latency_ms"]
    print(
        f"completed {r['completed']}/{r['issued']} "
        f"({r['timeouts']} timeouts, {r['rejected']} rejected, "
        f"{r['backpressure']} backpressured); {r['trimmed_count']} in the "
        f"measured window ({r['throughput_rps']:.1f} req/s)"
    )
    print(
        f"latency ms: mean {latency['mean']:.2f}  median {latency['median']:.2f}  "
        f"p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}  p99.9 {latency['p999']:.2f}"
    )
    print(f"wrote: {result.out_dir}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    sweeps = []
    for path in args.sweep_paths or ():
        try:
            sweeps.append((Path(path).stem, SweepResult.load(path)))
        except (OSError, KeyError, ValueError) as error:
            print(f"cannot load sweep result {path}: {error}", file=sys.stderr)
            return 2
    searches = []
    for path in args.search_paths or ():
        try:
            searches.append(SearchResult.load(path))
        except (OSError, KeyError, ValueError) as error:
            print(f"cannot load search result {path}: {error}", file=sys.stderr)
            return 2
    if args.no_bench:
        bench_paths: list[Path] = []
    elif args.bench_paths:
        bench_paths = [Path(p) for p in args.bench_paths]
        missing = [str(p) for p in bench_paths if not p.is_file()]
        if missing:
            print(f"benchmark snapshot(s) not found: {', '.join(missing)}", file=sys.stderr)
            return 2
    else:
        bench_paths = sorted(Path("benchmarks").glob("BENCH_*.json"))
    live_trials = []
    for path in args.live_paths or ():
        try:
            from .live.compare import load_trial

            trial = load_trial(path)
            live_trials.append((Path(path).name, trial.payload))
        except (OSError, KeyError, ValueError) as error:
            print(f"cannot load live trial {path}: {error}", file=sys.stderr)
            return 2
    markdown = render_report(
        sweeps=sweeps,
        searches=searches,
        bench_paths=bench_paths,
        live_trials=live_trials,
        title=args.title,
    )
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(markdown, encoding="utf-8")
    print(f"wrote: {output}")
    if args.html_path:
        html_output = Path(args.html_path)
        html_output.parent.mkdir(parents=True, exist_ok=True)
        html_output.write_text(markdown_to_html(markdown, title=args.title), encoding="utf-8")
        print(f"wrote: {html_output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "strategies":
        return _cmd_strategies()
    if args.command == "controls":
        return _cmd_controls()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "scale":
        return _cmd_scale(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
