"""repro — a reproduction of *C3: Cutting Tail Latency in Cloud Data Stores
via Adaptive Replica Selection* (Suresh et al., NSDI 2015).

The package is organised as:

* :mod:`repro.core`        — the C3 algorithm itself (ranking, rate control,
  backpressure, scheduling), usable standalone.
* :mod:`repro.strategies`  — C3 plus every baseline selector (LOR, RR, ORA,
  Dynamic Snitching, …) behind one interface.
* :mod:`repro.controls`    — orthogonal control-plane policies (failure
  detection, hedged requests, rate control) behind a spec registry.
* :mod:`repro.simulator`   — the flat discrete-event simulator of §6.
* :mod:`repro.cluster`     — a Cassandra-like cluster substrate for the §2/§5
  experiments (token ring, coordinators, disks, gossip, snitching).
* :mod:`repro.workloads`   — YCSB-style workload generation.
* :mod:`repro.analysis`    — percentiles, ECDFs, oscillation metrics, reports.
* :mod:`repro.experiments` — one module per paper figure/table.
"""

from .controls import (
    ControlSpec,
    control_names,
    register_control,
)
from .core import (
    C3Config,
    C3Scheduler,
    CubicRateController,
    EWMA,
    ReplicaScorer,
    ScheduleDecision,
    ServerFeedback,
    cubic_rate,
    cubic_score,
)
from .simulator import (
    DemandSkew,
    ReplicaSelectionSimulation,
    SimulationConfig,
    SimulationResult,
    run_simulation,
)
from .strategies import (
    STRATEGY_NAMES,
    StrategySpec,
    make_selector,
    register_strategy,
    strategy_names,
)
from .analysis import LatencySummary, summarize

__version__ = "1.0.0"

__all__ = [
    "C3Config",
    "C3Scheduler",
    "ControlSpec",
    "CubicRateController",
    "DemandSkew",
    "EWMA",
    "LatencySummary",
    "ReplicaScorer",
    "ReplicaSelectionSimulation",
    "STRATEGY_NAMES",
    "ScheduleDecision",
    "ServerFeedback",
    "SimulationConfig",
    "SimulationResult",
    "StrategySpec",
    "control_names",
    "cubic_rate",
    "cubic_score",
    "make_selector",
    "register_control",
    "register_strategy",
    "run_simulation",
    "strategy_names",
    "summarize",
    "__version__",
]
