"""Failure detectors: how clients decide a replica is dead.

Two registered detectors:

* ``"binary"`` — the legacy ground-truth detector: a replica is down exactly
  while its :class:`~repro.simulator.server.SimServer` is crashed (scenario
  fault injection increments a shared
  :class:`~repro.simulator.server.DownServerTracker`).  This reproduces the
  pre-registry liveness checks *byte-for-byte*: the same reads in the same
  order, no RNG draws, no scheduled events — golden digests pin it.
* ``"phi"`` — a phi-accrual failure detector (Hayashibara et al., the design
  Cassandra ships): every response arriving at any client counts as a
  heartbeat from its server; the detector keeps a sliding window of
  inter-arrival times per server and converts the silence since the last
  heartbeat into a suspicion level

      phi(t) = t / (mean_interval · ln 10)

  (the exponential-distribution form: ``-log10 P(no heartbeat for t)``).
  A replica is suspected — and filtered out of candidate sets — once phi
  crosses the configured ``threshold``.  Unlike the binary detector, phi
  needs no oracle: it suspects crashed *and* stalled replicas alike, after
  a delay governed by the threshold, and recovers on the next heartbeat.

Recovery path: a fully-suspected replica receives no selected traffic, so
its phi would never reset from selection alone.  Read-repair duplicates are
the probe channel — they fan out to every non-crashed replica regardless of
suspicion (connection-refused knowledge is immediate; suspicion is not),
so a recovered or merely-slow replica keeps producing heartbeats and
rejoins the candidate set once phi falls below the threshold.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Protocol

from .registry import register_control

__all__ = [
    "BinaryDetectorParams",
    "BinaryFailureDetector",
    "FailureDetector",
    "PhiDetectorParams",
    "PhiAccrualFailureDetector",
]

_LN10 = math.log(10.0)


class FailureDetector(Protocol):
    """The liveness interface clients consult around replica selection."""

    def suspicious(self) -> bool:
        """Cheap guard: could *any* server currently be considered down?

        When False, clients skip per-candidate liveness filtering entirely
        (the legacy fast path when no server is crashed).
        """
        ...

    def is_alive(self, server_id: Hashable, now: float) -> bool:
        """Whether ``server_id`` should be routed to at time ``now``."""
        ...

    def heartbeat(self, server_id: Hashable, now: float) -> None:
        """Record a sign of life (a response arrival) from ``server_id``."""
        ...


# ---------------------------------------------------------------------------
# Binary (ground truth) — the legacy behavior, pinned by golden digests.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BinaryDetectorParams:
    """The binary detector has no knobs: it reads crash state directly."""


def _build_binary(params: Mapping[str, Any], context: Mapping[str, Any]) -> "BinaryFailureDetector":
    return BinaryFailureDetector(
        down_tracker=context.get("down_tracker"),
        servers=context.get("servers"),
    )


@register_control(
    "binary",
    kind="detector",
    aliases=("GROUND_TRUTH",),
    params=BinaryDetectorParams,
    description="Ground-truth crash knowledge (legacy down/up liveness checks)",
    factory=_build_binary,
)
class BinaryFailureDetector:
    """Ground-truth liveness: a server is down exactly while it is crashed.

    ``suspicious()`` and ``is_alive()`` replicate the legacy checks —
    ``down_tracker.count`` then ``servers[sid].is_up`` — as pure reads with
    no random draws and no events, so runs with this detector stay
    byte-identical to the pre-registry simulator.
    """

    __slots__ = ("down_tracker", "servers")

    def __init__(self, down_tracker: Any = None, servers: Mapping[Hashable, Any] | None = None) -> None:
        self.down_tracker = down_tracker
        self.servers = servers or {}

    def suspicious(self) -> bool:
        return self.down_tracker is not None and bool(self.down_tracker.count)

    def is_alive(self, server_id: Hashable, now: float) -> bool:
        return bool(self.servers[server_id].is_up)

    def heartbeat(self, server_id: Hashable, now: float) -> None:
        return None


# ---------------------------------------------------------------------------
# Phi accrual.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PhiDetectorParams:
    """Phi-accrual knobs (defaults follow Cassandra's failure detector).

    Attributes
    ----------
    threshold:
        Suspicion level above which a server is considered down (Cassandra's
        ``phi_convict_threshold`` default is 8: suspect after a silence of
        ``8 · ln 10 ≈ 18.4`` mean inter-arrival intervals).
    window:
        Sliding-window size of inter-arrival samples kept per server.
    min_intervals:
        Heartbeat intervals required before a server can be suspected at
        all; with fewer samples the estimate is too noisy to convict, so
        the server counts as alive (phi = 0).
    floor_ms:
        Lower bound on the mean inter-arrival estimate, so a burst of
        same-instant heartbeats cannot convict everything a microsecond
        later.
    """

    threshold: float = 8.0
    window: int = 100
    min_intervals: int = 3
    floor_ms: float = 0.05


def _validate_phi(params: Mapping[str, Any]) -> None:
    if "threshold" in params and params["threshold"] <= 0:
        raise ValueError("phi threshold must be positive")
    if "window" in params and params["window"] < 1:
        raise ValueError("phi window must be >= 1")
    if "min_intervals" in params and params["min_intervals"] < 1:
        raise ValueError("phi min_intervals must be >= 1")
    if "floor_ms" in params and params["floor_ms"] <= 0:
        raise ValueError("phi floor_ms must be positive")


@register_control(
    "phi",
    kind="detector",
    aliases=("PHI_ACCRUAL",),
    params=PhiDetectorParams,
    description="Phi-accrual suspicion over response-arrival heartbeats (Cassandra-style)",
    validate=_validate_phi,
)
class PhiAccrualFailureDetector:
    """Phi-accrual failure detection over response-arrival heartbeats.

    One shared instance serves every client in a simulation (heartbeats are
    cluster-wide knowledge, like gossip).  Per server the detector keeps the
    last heartbeat time and a sliding window of inter-arrival intervals;
    ``phi = silence / (mean_interval · ln 10)`` grows monotonically while a
    server stays silent and resets to zero on the next heartbeat.
    """

    __slots__ = ("threshold", "window", "min_intervals", "floor_ms", "_last", "_intervals")

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 100,
        min_intervals: int = 3,
        floor_ms: float = 0.05,
    ) -> None:
        if threshold <= 0:
            raise ValueError("phi threshold must be positive")
        if window < 1:
            raise ValueError("phi window must be >= 1")
        if min_intervals < 1:
            raise ValueError("phi min_intervals must be >= 1")
        if floor_ms <= 0:
            raise ValueError("phi floor_ms must be positive")
        self.threshold = float(threshold)
        self.window = int(window)
        self.min_intervals = int(min_intervals)
        self.floor_ms = float(floor_ms)
        self._last: dict[Hashable, float] = {}
        self._intervals: dict[Hashable, deque[float]] = {}

    # ----------------------------------------------------------- heartbeats
    def heartbeat(self, server_id: Hashable, now: float) -> None:
        last = self._last.get(server_id)
        if last is not None and now > last:
            intervals = self._intervals.get(server_id)
            if intervals is None:
                intervals = deque(maxlen=self.window)
                self._intervals[server_id] = intervals
            intervals.append(now - last)
        if last is None or now > last:
            self._last[server_id] = now

    # ------------------------------------------------------------ suspicion
    def phi(self, server_id: Hashable, now: float) -> float:
        """Current suspicion level for ``server_id`` (0 = just heard from)."""
        last = self._last.get(server_id)
        intervals = self._intervals.get(server_id)
        if last is None or not intervals or len(intervals) < self.min_intervals:
            return 0.0
        mean = max(sum(intervals) / len(intervals), self.floor_ms)
        silence = max(now - last, 0.0)
        return silence / (mean * _LN10)

    def mean_interval_ms(self, server_id: Hashable) -> float | None:
        """Mean heartbeat inter-arrival estimate, or ``None`` without samples."""
        intervals = self._intervals.get(server_id)
        if not intervals:
            return None
        return max(sum(intervals) / len(intervals), self.floor_ms)

    def suspicious(self) -> bool:
        # Filtering only matters once at least one server has enough history
        # to be convictable at all.
        return any(len(iv) >= self.min_intervals for iv in self._intervals.values())

    def is_alive(self, server_id: Hashable, now: float) -> bool:
        return self.phi(server_id, now) < self.threshold

    def suspected(self, now: float) -> tuple[Hashable, ...]:
        """Servers currently over the threshold (diagnostics)."""
        return tuple(
            sid for sid in self._intervals if not self.is_alive(sid, now)
        )
