"""The canonical, parameterized control specification.

A :class:`ControlSpec` is ``(control name, explicit parameter overrides)``
in the same canonical form as
:class:`~repro.strategies.spec.StrategySpec` — names resolve through the
control registry, aliases expand, values coerce against the registered
frozen param dataclass, and parameters equal to the registered default are
dropped.  ``"phi:threshold=8"`` therefore normalizes to ``"phi"`` (8 is
the default), ``"hedge:quantile=0.99,max_extra=2"`` round-trips exactly,
and two spellings of the same configuration share one canonical string,
one digest, and one sweep cache key.

``SimulationConfig.failure_detector`` / ``.hedging`` and
``ClusterConfig.hedging`` store the canonical string; the *default*
control specs (``"binary"`` detector, no hedging) are additionally omitted
from runner payloads so that pre-controls cache keys and golden digests
stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..strategies.paramspec import format_params, parse_spec_string, spec_digest
from .registry import (
    ControlInfo,
    kind_label,
    resolve_control,
    resolve_control_params,
)

__all__ = ["ControlSpec"]


@dataclass(frozen=True)
class ControlSpec:
    """A validated, canonical ``(control, parameters)`` pair.

    Construct via :meth:`parse` (or :meth:`of`); the constructor itself does
    not validate, so hand-built instances bypass canonicalization.
    ``params`` is a sorted tuple of ``(field name, value)`` pairs holding
    only the *explicit, non-default* overrides.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    # ----------------------------------------------------------- construction
    @classmethod
    def parse(
        cls,
        value: "str | Mapping[str, Any] | ControlSpec",
        kind: str | None = None,
    ) -> "ControlSpec":
        """Parse and canonicalize a control reference of any accepted form.

        ``kind`` restricts the lookup to one control family (``"detector"``,
        ``"hedge"``, ``"rate"``) so a config field can reject a valid control
        of the wrong family with a precise error.
        """
        if isinstance(value, ControlSpec):
            return cls.of(value.name, value.params_dict, kind=kind)
        if isinstance(value, str):
            name, params = parse_spec_string(value, label="control spec")
            return cls.of(name, params, kind=kind)
        if isinstance(value, Mapping):
            unknown = sorted(set(value) - {"name", "params"})
            if unknown:
                raise ValueError(
                    f"unknown keys {unknown} in control mapping; expected "
                    f"{{'name': ..., 'params': {{...}}}}"
                )
            if "name" not in value:
                raise ValueError("control mapping needs a 'name' key")
            return cls.of(value["name"], dict(value.get("params") or {}), kind=kind)
        raise TypeError(
            f"cannot parse a control from {type(value).__name__}; "
            f"expected str, mapping, or ControlSpec"
        )

    @classmethod
    def of(
        cls,
        name: str,
        params: Mapping[str, Any] | None = None,
        kind: str | None = None,
    ) -> "ControlSpec":
        """Build a canonical spec from a name and explicit params."""
        info = resolve_control(name, kind=kind)
        resolved = resolve_control_params(info, dict(params or {}))
        return cls(name=info.name, params=tuple(sorted(resolved.items())))

    # ------------------------------------------------------------- inspection
    @property
    def params_dict(self) -> dict[str, Any]:
        """The explicit overrides as a plain dict."""
        return dict(self.params)

    @property
    def info(self) -> ControlInfo:
        """This spec's registry entry."""
        return resolve_control(self.name)

    @property
    def kind(self) -> str:
        """The control family (``"detector"``, ``"hedge"``, ``"rate"``)."""
        return self.info.kind

    def canonical(self) -> str:
        """The canonical string form (parses back to an equal spec)."""
        if not self.params:
            return self.name
        return f"{self.name}:{format_params(self.params)}"

    def digest(self) -> str:
        """A stable content digest of the canonical spec.

        Two references to the same control configuration — whatever their
        spelling — share a digest; any parameter change produces a new one.
        """
        return spec_digest(self.name, self.params_dict)

    def __str__(self) -> str:
        return self.canonical()

    # ------------------------------------------------------------------ build
    def build(self, **context: Any) -> Any:
        """Instantiate this spec's control with the given runtime context.

        The context keys a control may consume are factory-specific (e.g.
        detectors take ``down_tracker`` and ``servers``); the default
        factory ignores the context entirely.
        """
        info = self.info
        return info.factory(self.params_dict, context)

    def describe(self) -> str:
        """``"<kind label> <canonical string>"`` for logs and errors."""
        return f"{kind_label(self.kind)} {self.canonical()}"
