"""Hedged-request (speculative-retry) policies.

Generalizes the Cassandra-style percentile speculative retry that
previously lived only inside the cluster coordinator
(:class:`~repro.cluster.coordinator.SpeculativeRetryPolicy`): after a read
is dispatched, wait until the configured quantile of recently observed
read latencies has elapsed, then re-issue the read to a *different*
replica; whichever copy responds first completes the operation.  §5 of the
paper ("Comparison against request reissues") evaluates exactly this
mechanism against C3's proactive rate control.

The registered ``"hedge"`` policy is selection-agnostic — it composes with
any registered strategy in both the flat simulator
(``SimulationConfig.hedging``) and the cluster model
(``ClusterConfig.hedging``).  The policy object itself is pure estimation
state (a sliding latency window and a threshold query); *when* to arm the
hedge timer and *where* to send the extra copy is the host's job, so the
dispatch machinery stays in one place per substrate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .registry import register_control

__all__ = ["HedgeParams", "QuantileHedging"]


@dataclass(frozen=True, slots=True)
class HedgeParams:
    """Hedging knobs.

    Attributes
    ----------
    quantile:
        Latency quantile that arms the hedge timer, in ``(0, 1)``.  0.95
        hedges the slowest 5 % of reads; 0.99 reproduces the paper's
        Cassandra ``speculative_retry: 99percentile`` configuration.
    max_extra:
        Maximum number of extra copies issued per operation.  Each copy
        re-arms the timer, so ``max_extra=2`` fires a second hedge another
        threshold later if neither earlier copy has answered.
    min_samples:
        Latency samples required before hedging activates (cold start sends
        no extra copies).
    history:
        Sliding-window size used to estimate the quantile.
    """

    quantile: float = 0.95
    max_extra: int = 1
    min_samples: int = 50
    history: int = 1000


def _validate_hedge(params: Mapping[str, Any]) -> None:
    if "quantile" in params and not 0.0 < params["quantile"] < 1.0:
        raise ValueError("hedge quantile must be in (0, 1)")
    if "max_extra" in params and params["max_extra"] < 1:
        raise ValueError("hedge max_extra must be >= 1")
    if "min_samples" in params and params["min_samples"] < 1:
        raise ValueError("hedge min_samples must be >= 1")
    if "history" in params and params["history"] < 1:
        raise ValueError("hedge history must be >= 1")


@register_control(
    "hedge",
    kind="hedge",
    aliases=("SPECULATIVE", "SPECULATIVE_RETRY"),
    params=HedgeParams,
    description="Quantile-triggered hedged requests (Cassandra speculative retry)",
    param_aliases={"q": "quantile"},
    validate=_validate_hedge,
)
class QuantileHedging:
    """Quantile-triggered hedging state: a latency window plus a threshold.

    ``record()`` folds completed-read latencies into a sliding window;
    ``threshold_ms()`` reports how long to wait before issuing an extra
    copy, or ``None`` while warming up.  The legacy
    ``SpeculativeRetryPolicy(percentile=p)`` is this policy with
    ``quantile = p / 100`` and ``max_extra = 1``.
    """

    def __init__(
        self,
        quantile: float = 0.95,
        max_extra: int = 1,
        min_samples: int = 50,
        history: int = 1000,
    ) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("hedge quantile must be in (0, 1)")
        if max_extra < 1:
            raise ValueError("hedge max_extra must be >= 1")
        if min_samples < 1 or history < min_samples:
            raise ValueError("invalid sample window configuration")
        self.quantile = float(quantile)
        self.max_extra = int(max_extra)
        self.min_samples = int(min_samples)
        self._window: deque[float] = deque(maxlen=int(history))

    def record(self, latency_ms: float) -> None:
        """Fold one observed read latency into the estimate."""
        self._window.append(float(latency_ms))

    def threshold_ms(self) -> float | None:
        """Current hedge delay, or ``None`` while warming up."""
        if len(self._window) < self.min_samples:
            return None
        return float(np.percentile(np.asarray(self._window), self.quantile * 100.0))

    @property
    def sample_count(self) -> int:
        """Number of latencies currently in the sliding window."""
        return len(self._window)
