"""The control registry: adaptive controllers registered under canonical names.

The third leg of the registry architecture — after scenarios (what is
perturbed) and strategies (how replicas are ranked) — controls describe the
*adaptive machinery around* selection: how failures are detected, when
requests are hedged, and how per-server send rates adapt.  Each control
module declares a frozen *param dataclass* (defaults = the paper's /
Cassandra's values) and registers its implementation with
:func:`register_control`::

    @register_control(
        "phi",
        kind="detector",
        aliases=("PHI_ACCRUAL",),
        params=PhiParams,
        description="Phi-accrual failure detector over response heartbeats",
    )
    class PhiAccrualFailureDetector: ...

Controls are grouped by ``kind``:

* ``"detector"`` — failure detectors consulted by clients before replica
  selection (``SimulationConfig.failure_detector``);
* ``"hedge"`` — hedged-request / speculative-retry policies
  (``SimulationConfig.hedging``, ``ClusterConfig.hedging``);
* ``"rate"`` — per-server send-rate controllers (the generic CUBIC
  controller shared by C3 and the RR ablation).

Name resolution, alias handling, did-you-mean errors, and parameter
coercion reuse the strategy registry's machinery
(:mod:`repro.strategies.paramspec`), so both registries speak the same
spec grammar.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..strategies.paramspec import Validator, resolve_param_overrides

__all__ = [
    "CONTROL_KINDS",
    "ControlInfo",
    "control_names",
    "get_control",
    "kind_label",
    "register_control",
    "resolve_control",
    "resolve_control_params",
]

#: The control families a registration may declare.
CONTROL_KINDS = ("detector", "hedge", "rate")

#: Human-readable labels per kind (error messages, CLI listing).
_KIND_LABELS = {
    "detector": "failure detector",
    "hedge": "hedging policy",
    "rate": "rate controller",
}

#: Builder: (explicit params, runtime context) -> control instance.  The
#: context carries live objects (the shared crash tracker, the server map)
#: that only exist inside a run — mirroring the strategies' BuildContext.
Factory = Callable[[Mapping[str, Any], Mapping[str, Any]], Any]


def kind_label(kind: str) -> str:
    """The human-readable name of a control kind (``"detector"`` → ...)."""
    return _KIND_LABELS[kind]


@dataclass(frozen=True)
class ControlInfo:
    """One registered control: canonical name, kind, aliases, params, builder."""

    name: str
    kind: str
    aliases: tuple[str, ...]
    params_cls: type
    description: str
    factory: Factory
    param_aliases: Mapping[str, str] = field(default_factory=dict)
    validate: Validator | None = None
    control_cls: type | None = None

    def param_defaults(self) -> dict[str, Any]:
        """``{field name: default value}`` of the param dataclass."""
        instance = self.params_cls()
        return {
            f.name: getattr(instance, f.name) for f in dataclasses.fields(self.params_cls)
        }

    def aliases_for(self, field_name: str) -> tuple[str, ...]:
        """Registered short-hand aliases mapping to ``field_name``, sorted."""
        return tuple(
            sorted(alias for alias, target in self.param_aliases.items() if target == field_name)
        )


_REGISTRY: dict[str, ControlInfo] = {}
#: Case-normalized name/alias token -> canonical name.
_LOOKUP: dict[str, str] = {}


def _normalize(token: str) -> str:
    return token.strip().lower()


def _register(info: ControlInfo) -> None:
    if info.kind not in CONTROL_KINDS:
        raise ValueError(
            f"control {info.name!r} declares unknown kind {info.kind!r}; "
            f"valid kinds: {', '.join(CONTROL_KINDS)}"
        )
    if info.name in _REGISTRY:
        raise ValueError(f"control {info.name!r} is already registered")
    tokens = {_normalize(info.name), *(_normalize(alias) for alias in info.aliases)}
    for token in sorted(tokens):
        owner = _LOOKUP.get(token)
        if owner is not None:
            raise ValueError(
                f"control name/alias {token!r} is already registered by {owner!r}"
            )
    _REGISTRY[info.name] = info
    for token in tokens:
        _LOOKUP[token] = info.name


def _default_factory(cls: type) -> Factory:
    """Build ``cls(**param fields)``; the runtime context is ignored."""

    def build(params: Mapping[str, Any], context: Mapping[str, Any]) -> Any:
        return cls(**params)

    return build


def register_control(
    name: str,
    *,
    kind: str,
    aliases: tuple[str, ...] = (),
    params: type,
    description: str,
    param_aliases: Mapping[str, str] | None = None,
    factory: Factory | None = None,
    validate: Validator | None = None,
) -> Callable[[type], type]:
    """Class decorator registering a control under ``name``.

    Parameters
    ----------
    name:
        Canonical control name (``"phi"``, ``"hedge"``, ``"cubic"``).
        Matching is case-insensitive everywhere.
    kind:
        Control family: ``"detector"``, ``"hedge"``, or ``"rate"``.
    aliases:
        Alternate names accepted wherever a control is referenced.
    params:
        Frozen dataclass of the control's tunable parameters; field defaults
        are the paper's / Cassandra's values.
    description:
        One-line description for ``c3-repro controls`` and the README table.
    param_aliases:
        Short-hand parameter spellings mapped to field names.
    factory:
        Custom builder ``(explicit_params, context) -> control`` for controls
        whose construction needs runtime objects from the context mapping
        (e.g. the shared crash tracker).  The default factory splats params
        into the constructor and ignores the context.
    validate:
        Optional hook raising ``ValueError`` for invalid *values* at spec
        parse time (unknown names/keys are always rejected by the registry).
    """
    if not dataclasses.is_dataclass(params):
        raise TypeError(f"params must be a dataclass, got {params!r}")

    def decorator(cls: type) -> type:
        resolved_aliases = dict(param_aliases or {})
        field_names = {f.name for f in dataclasses.fields(params)}
        bad = sorted(set(resolved_aliases.values()) - field_names)
        if bad:
            raise ValueError(f"param_aliases target unknown fields {bad} on {params.__name__}")
        _register(
            ControlInfo(
                name=name,
                kind=kind,
                aliases=tuple(aliases),
                params_cls=params,
                description=description,
                factory=factory or _default_factory(cls),
                param_aliases=resolved_aliases,
                validate=validate,
                control_cls=cls,
            )
        )
        return cls

    return decorator


def control_names(kind: str | None = None) -> tuple[str, ...]:
    """Registered canonical control names (optionally one kind), in order."""
    if kind is None:
        return tuple(_REGISTRY)
    return tuple(name for name, info in _REGISTRY.items() if info.kind == kind)


def get_control(name: str) -> ControlInfo:
    """The registration for a *canonical* name (KeyError when absent)."""
    return _REGISTRY[name]


def resolve_control(name: str, kind: str | None = None) -> ControlInfo:
    """Look a control up by name or alias, case-insensitively.

    ``kind`` narrows the lookup to one control family: a valid name of the
    wrong family is rejected with a message naming both families, and the
    did-you-mean candidates are restricted to that family.
    """
    if not isinstance(name, str):
        raise TypeError(f"control name must be a string, got {type(name).__name__}")
    wanted = f"{kind_label(kind)}s" if kind is not None else "controls"
    valid = control_names(kind)
    canonical = _LOOKUP.get(_normalize(name))
    if canonical is None:
        pool = sorted(
            token for token, owner in _LOOKUP.items()
            if kind is None or _REGISTRY[owner].kind == kind
        )
        close = difflib.get_close_matches(_normalize(name), pool, n=1)
        hint = f"; did you mean {_LOOKUP[close[0]]!r}?" if close else ""
        raise ValueError(
            f"unknown control {name!r}; valid {wanted}: {', '.join(valid) or '(none)'}{hint}"
        )
    info = _REGISTRY[canonical]
    if kind is not None and info.kind != kind:
        raise ValueError(
            f"control {info.name!r} is a {kind_label(info.kind)}, not a "
            f"{kind_label(kind)}; valid {wanted}: {', '.join(valid) or '(none)'}"
        )
    return info


def resolve_control_params(info: ControlInfo, params: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalize explicit params for one control.

    Same semantics as the strategy registry: aliases expand, unknown keys
    are rejected with a did-you-mean suggestion, values coerce to the
    annotated field types, and defaults are dropped.
    """
    return resolve_param_overrides(
        info.params_cls,
        params,
        subject=f"control {info.name}",
        param_aliases=info.param_aliases,
        validate=info.validate,
    )
