"""The generic CUBIC send-rate controller, registered as a control.

There is exactly one CUBIC implementation in the codebase —
:class:`~repro.core.rate_control.CubicRateController`, parameterized by the
rate-control slice of :class:`~repro.core.config.C3Config` and built on the
shared cubic-curve helpers in :mod:`repro.core.cubic`.  Registering it here
exposes that same implementation through the control-spec grammar
(``"cubic:beta=0.4,smax=20"``) so sweeps and experiments can grid over
rate-control knobs without reaching into strategy internals, and so an
equivalence test can assert that a spec-built controller and a
``C3Config``-built controller agree measurement-for-measurement.

The scheduler composes this controller with backpressure queues
(:mod:`repro.core.backpressure`); backpressure holds requests *because* the
controller's limiter denies a permit — it has no rate logic of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.config import C3Config
from ..core.rate_control import CubicRateController
from .registry import register_control

__all__ = ["CubicRateParams", "cubic_config_from_params"]


@dataclass(frozen=True, slots=True)
class CubicRateParams:
    """The rate-control slice of :class:`~repro.core.config.C3Config`.

    Field names and defaults match ``C3Config`` exactly, so a spec override
    maps one-to-one onto the config the controller is built from.
    """

    initial_rate: float = 10.0
    rate_delta_ms: float = 20.0
    beta: float = 0.2
    smax: float = 10.0
    saddle_duration_ms: float = 100.0
    gamma: float | None = None
    hysteresis_ms: float | None = None
    ewma_alpha: float = 0.9
    min_rate: float = 0.1
    max_rate: float | None = None
    rate_excess_tolerance: float = 1.2
    rate_min_utilisation: float = 0.4


def cubic_config_from_params(
    params: Mapping[str, Any], base: C3Config | None = None
) -> C3Config:
    """Apply explicit rate-control overrides onto a (default) ``C3Config``."""
    config = base if base is not None else C3Config()
    return config.copy(**dict(params)) if params else config


def _validate_cubic(params: Mapping[str, Any]) -> None:
    # C3Config.__post_init__ already encodes every value constraint; building
    # a throwaway config surfaces the same ValueError at spec-parse time.
    cubic_config_from_params(params)


def _build_cubic(params: Mapping[str, Any], context: Mapping[str, Any]) -> CubicRateController:
    return CubicRateController(
        cubic_config_from_params(params, context.get("config")),
        server_id=context.get("server_id"),
    )


@register_control(
    "cubic",
    kind="rate",
    aliases=("CUBIC_RATE", "C3_RATE"),
    params=CubicRateParams,
    description="CUBIC per-server send-rate adaptation (Algorithm 2, Figure 5)",
    factory=_build_cubic,
    validate=_validate_cubic,
)
class _RegisteredCubicRateController(CubicRateController):
    """Registry anchor; instances are plain :class:`CubicRateController`."""
