"""Adaptive controls: failure detection, hedging, and rate control.

The third registry of the reproduction (after scenarios and strategies).
Controls are the adaptive machinery *around* replica selection — how
clients decide a replica is dead (``kind="detector"``), when they issue
extra request copies (``kind="hedge"``), and how per-server send rates
adapt (``kind="rate"``).  Every control is addressed by the same canonical
spec grammar as strategies (``"phi:threshold=8"``,
``"hedge:quantile=0.95,max_extra=1"``) via :class:`ControlSpec`, and the
three axes compose freely: any selector × any detector × any hedging
policy is a valid sweep point with its own cache key.
"""

from .registry import (
    CONTROL_KINDS,
    ControlInfo,
    control_names,
    get_control,
    kind_label,
    register_control,
    resolve_control,
    resolve_control_params,
)
from .spec import ControlSpec

# Importing the implementation modules registers the built-in controls; the
# import order below fixes the registry listing order (detectors, hedging,
# rate control).
from .detectors import (
    BinaryFailureDetector,
    FailureDetector,
    PhiAccrualFailureDetector,
)
from .hedging import QuantileHedging
from .rate import cubic_config_from_params

__all__ = [
    "CONTROL_KINDS",
    "BinaryFailureDetector",
    "ControlInfo",
    "ControlSpec",
    "FailureDetector",
    "PhiAccrualFailureDetector",
    "QuantileHedging",
    "control_names",
    "cubic_config_from_params",
    "get_control",
    "kind_label",
    "register_control",
    "resolve_control",
    "resolve_control_params",
]
