"""Trial orchestration for the live backend.

:func:`run_trial` runs one live trial in the cluster-test-script shape:
spawn ``num_servers`` replica server processes on localhost (port 0,
discovered from their ``PORT <n>`` stdout line), drive open-loop load
through :class:`~repro.live.client.LiveLoadClient` for ``duration_s``
seconds while a scenario driver injects perturbations over the control
channel, then trim the first ``warmup_s`` and last ``cooldown_s`` of
completions and record what remains into the streaming
:class:`~repro.analysis.histogram.LatencyHistogram`.

Scenario strings are the *simulator's* scenario names: the harness
resolves knobs through the same registry
(:func:`repro.scenarios.get_scenario` + ``resolve_params``), so a live
``slow-node`` trial and a simulated one share defaults and validation.
Underscores are accepted and normalized (``slow_node`` == ``slow-node``).
The live backend supports ``baseline``, ``slow-node``, ``gc-storm``, and
``crash-recovery``; the rest describe simulator-only mechanisms (network
jitter models, demand skew) and are rejected with a clear error.

Each trial writes a self-describing artifact directory::

    <out_dir>/payload.json      config + results + digest + provenance
    <out_dir>/histogram.json    LatencyHistogram.to_dict() of trimmed latencies
    <out_dir>/server_load.json  per-server counters and bucketed load series

``payload.json``'s digest covers **config + results only** — wall-clock
and host provenance live outside the digest domain (mirroring
``SweepResult.digest()``), so re-serializing the same trial at a
different time on a different host compares equal.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..analysis.histogram import LatencyHistogram
from ..controls.spec import ControlSpec
from ..runner.spec import content_hash
from ..scenarios import get_scenario
from ..strategies.spec import StrategySpec
from .client import LiveLoadClient
from .protocol import read_message, write_message

__all__ = [
    "LIVE_SCENARIOS",
    "LiveTrialConfig",
    "LiveTrialResult",
    "build_payload",
    "payload_digest",
    "run_trial",
    "scenario_schedule",
    "write_artifacts",
]

#: Scenarios the live control channel can express.
LIVE_SCENARIOS = ("baseline", "slow-node", "gc-storm", "crash-recovery")

#: Version tag written into every payload.
PAYLOAD_SCHEMA = "live-trial-v1"


@dataclass(frozen=True)
class LiveTrialConfig:
    """One live trial, canonicalized exactly like ``SimulationConfig``."""

    strategy: str = "c3"
    failure_detector: str | None = None
    hedging: str | None = None
    scenario: str = "baseline"
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    num_servers: int = 3
    replication_factor: int = 3
    duration_s: float = 10.0
    warmup_s: float = 1.0
    cooldown_s: float = 0.5
    arrival_rate_per_s: float = 200.0
    base_service_ms: float = 4.0
    concurrency: int = 4
    queue_capacity: int = 10_000
    read_fraction: float = 1.0
    request_timeout_ms: float = 2_000.0
    seed: int = 42
    histogram_relative_error: float = 0.01

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategy", StrategySpec.parse(self.strategy).canonical())
        if self.failure_detector is not None:
            object.__setattr__(
                self,
                "failure_detector",
                ControlSpec.parse(self.failure_detector, kind="detector").canonical(),
            )
        if self.hedging is not None:
            object.__setattr__(
                self, "hedging", ControlSpec.parse(self.hedging, kind="hedge").canonical()
            )
        name = self.scenario.replace("_", "-")
        if name not in LIVE_SCENARIOS:
            raise ValueError(
                f"scenario {self.scenario!r} is not supported by the live backend; "
                f"choose one of {', '.join(LIVE_SCENARIOS)}"
            )
        params = get_scenario(name).resolve_params(dict(self.scenario_params))
        object.__setattr__(self, "scenario", name)
        object.__setattr__(self, "scenario_params", params)
        if self.num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {self.num_servers}")
        if not 1 <= self.replication_factor <= self.num_servers:
            raise ValueError(
                f"replication_factor must be in [1, {self.num_servers}], "
                f"got {self.replication_factor}"
            )
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.warmup_s < 0 or self.cooldown_s < 0:
            raise ValueError("warmup_s and cooldown_s must be non-negative")
        if self.warmup_s + self.cooldown_s >= self.duration_s:
            raise ValueError(
                f"warmup_s + cooldown_s ({self.warmup_s + self.cooldown_s}) must leave a "
                f"measurement window inside duration_s ({self.duration_s})"
            )

    def config_payload(self) -> dict[str, Any]:
        """Every field, JSON-serializable, canonical strings throughout."""
        return {
            "schema": PAYLOAD_SCHEMA,
            "strategy": self.strategy,
            "failure_detector": self.failure_detector,
            "hedging": self.hedging,
            "scenario": self.scenario,
            "scenario_params": dict(self.scenario_params),
            "num_servers": self.num_servers,
            "replication_factor": self.replication_factor,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "cooldown_s": self.cooldown_s,
            "arrival_rate_per_s": self.arrival_rate_per_s,
            "base_service_ms": self.base_service_ms,
            "concurrency": self.concurrency,
            "queue_capacity": self.queue_capacity,
            "read_fraction": self.read_fraction,
            "request_timeout_ms": self.request_timeout_ms,
            "seed": self.seed,
            "histogram_relative_error": self.histogram_relative_error,
        }


@dataclass
class LiveTrialResult:
    """Everything one trial produced, as written to its artifact dir."""

    config: LiveTrialConfig
    results: dict[str, Any]
    histogram: LatencyHistogram
    server_stats: list[dict[str, Any]]
    out_dir: Path
    payload: dict[str, Any]


def payload_digest(payload: Mapping[str, Any]) -> str:
    """sha256 over the payload's config + results — provenance excluded.

    Mirrors ``SweepResult.digest()``: wall-clock timestamps, hostnames,
    and interpreter versions are recorded for humans but never hashed, so
    two serializations of the same trial compare equal regardless of when
    or where they were written.
    """
    return content_hash({"config": payload["config"], "results": payload["results"]})


def build_payload(
    config_payload: Mapping[str, Any],
    results: Mapping[str, Any],
    provenance: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a trial payload: digest over config+results, then provenance.

    ``provenance`` defaults to this process's wall clock / host /
    interpreter; pass an explicit mapping to reproduce a recorded one.
    """
    payload: dict[str, Any] = {"config": dict(config_payload), "results": dict(results)}
    payload["digest"] = payload_digest(payload)
    if provenance is None:
        provenance = {
            "recorded_at_unix": time.time(),
            "host": socket.gethostname(),
            "python": sys.version.split()[0],
        }
    payload["provenance"] = dict(provenance)
    return payload


def write_artifacts(
    out_dir: "str | Path",
    payload: Mapping[str, Any],
    histogram: LatencyHistogram,
    server_stats: "list[dict[str, Any]] | None" = None,
) -> Path:
    """Write the per-trial artifact directory and return its path."""
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / "payload.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    (path / "histogram.json").write_text(
        json.dumps(histogram.to_dict(), sort_keys=True) + "\n", encoding="utf-8"
    )
    (path / "server_load.json").write_text(
        json.dumps({"servers": server_stats or []}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# ------------------------------------------------------------------ scenario
def scenario_schedule(config: LiveTrialConfig) -> list[tuple[float, int, dict[str, Any]]]:
    """The deterministic control-op schedule: ``(at_ms, server_id, op)``.

    Covers ``slow-node`` and ``crash-recovery`` (whose sim components are
    time-table driven); ``gc-storm`` is stochastic and handled by
    :func:`_gc_storm_driver`.  Times are relative to trial start.
    """
    params = config.scenario_params
    ops: list[tuple[float, int, dict[str, Any]]] = []
    if config.scenario == "slow-node":
        target = int(params["target"]) % config.num_servers
        ops.append((float(params["start_ms"]), target, {"op": "slow", "factor": float(params["factor"])}))
        if params["end_ms"] is not None:
            ops.append((float(params["end_ms"]), target, {"op": "slow", "factor": 1.0}))
    elif config.scenario == "crash-recovery":
        targets = params["targets"]
        if targets is None:
            targets = [0]
        first_at = float(params["first_at_ms"])
        down_ms = float(params["down_ms"])
        stagger = float(params["stagger_ms"])
        period = float(params["period_ms"])
        for repeat in range(int(params["repeats"])):
            for index, raw in enumerate(targets):
                sid = int(raw) % config.num_servers
                crash_at = first_at + index * stagger + repeat * period
                ops.append((crash_at, sid, {"op": "crash"}))
                ops.append((crash_at + down_ms, sid, {"op": "restore"}))
    ops.sort(key=lambda item: item[0])
    return ops


async def _gc_storm_driver(
    config: LiveTrialConfig,
    send_control,
    rng: np.random.Generator,
) -> None:
    """Poisson-timed stop-the-world pauses on random servers.

    The sim's gc-storm inflates service times by ``slowdown_factor``
    during the pause window; over a real socket a stop-the-world stall is
    the honest analogue — the queue builds behind the paused slots either
    way — so the live driver maps each storm event to a ``pause`` op for
    the drawn duration (``slowdown_factor`` is subsumed by the full
    stall; the knob still validates through the shared registry).
    """
    params = config.scenario_params
    mean_gap = float(params["mean_interarrival_ms"])
    mean_duration = float(params["mean_duration_ms"])
    while True:
        await asyncio.sleep(float(rng.exponential(mean_gap)) / 1000.0)
        sid = int(rng.integers(config.num_servers))
        duration = float(rng.exponential(mean_duration))
        await send_control(sid, {"op": "pause", "duration_ms": duration})


async def _schedule_driver(config: LiveTrialConfig, send_control, now_fn, t0_ms: float) -> None:
    """Replay :func:`scenario_schedule` against the control channel."""
    for at_ms, sid, op in scenario_schedule(config):
        delay_ms = (t0_ms + at_ms) - now_fn()
        if delay_ms > 0:
            await asyncio.sleep(delay_ms / 1000.0)
        await send_control(sid, op)


# ------------------------------------------------------------------- servers
def _src_root() -> Path:
    """The ``src/`` directory this package was imported from."""
    return Path(__file__).resolve().parents[2]


async def _spawn_server(config: LiveTrialConfig, sid: int) -> tuple[asyncio.subprocess.Process, int]:
    env = dict(os.environ)
    src = str(_src_root())
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    argv = [
        sys.executable,
        "-m",
        "repro.live.server",
        "--server-id",
        str(sid),
        "--port",
        "0",
        "--base-service-ms",
        str(config.base_service_ms),
        "--concurrency",
        str(config.concurrency),
        "--queue-capacity",
        str(config.queue_capacity),
        "--seed",
        str(config.seed * 10_007 + sid + 1),
    ]
    proc = await asyncio.create_subprocess_exec(
        *argv, env=env, stdout=asyncio.subprocess.PIPE, stderr=asyncio.subprocess.PIPE
    )
    assert proc.stdout is not None
    try:
        line = await asyncio.wait_for(proc.stdout.readline(), timeout=15.0)
    except asyncio.TimeoutError:
        proc.kill()
        raise RuntimeError(f"server {sid} did not report a port within 15s")
    text = line.decode("utf-8", "replace").strip()
    if not text.startswith("PORT "):
        stderr = b""
        if proc.stderr is not None:
            try:
                stderr = await asyncio.wait_for(proc.stderr.read(4096), timeout=1.0)
            except asyncio.TimeoutError:
                pass
        proc.kill()
        raise RuntimeError(
            f"server {sid} failed to start: stdout={text!r} stderr={stderr.decode('utf-8', 'replace')!r}"
        )
    return proc, int(text.split()[1])


# --------------------------------------------------------------------- trial
async def _run_trial_async(config: LiveTrialConfig, out_dir: Path) -> LiveTrialResult:
    procs: list[asyncio.subprocess.Process] = []
    ports: list[int] = []
    control: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
    scenario_task: asyncio.Task | None = None
    started = time.time()
    try:
        for sid in range(config.num_servers):
            proc, port = await _spawn_server(config, sid)
            procs.append(proc)
            ports.append(port)
        for sid, port in enumerate(ports):
            control[sid] = await asyncio.open_connection("127.0.0.1", port)

        async def send_control(sid: int, op: dict[str, Any]) -> dict:
            reader, writer = control[sid]
            write_message(writer, {"t": "ctl", **op})
            await writer.drain()
            ack = await asyncio.wait_for(read_message(reader), timeout=10.0)
            if ack is None:
                raise RuntimeError(f"server {sid} closed its control connection")
            return ack

        completions: list[tuple[float, float]] = []
        client = LiveLoadClient(
            [("127.0.0.1", port) for port in ports],
            strategy=config.strategy,
            failure_detector=config.failure_detector,
            hedging=config.hedging,
            replication_factor=config.replication_factor,
            arrival_rate_per_s=config.arrival_rate_per_s,
            read_fraction=config.read_fraction,
            request_timeout_ms=config.request_timeout_ms,
            seed=config.seed,
            on_complete=lambda at_ms, latency_ms: completions.append((at_ms, latency_ms)),
        )
        await client.connect()
        # The trial timeline runs on the client's clock (ms since client
        # construction) so completion timestamps and the trim window agree.
        t0_ms = client.now_ms()
        if config.scenario == "gc-storm":
            storm_rng = np.random.default_rng(config.seed + 99_991)
            scenario_task = asyncio.create_task(
                _gc_storm_driver(config, send_control, storm_rng)
            )
        elif config.scenario != "baseline":
            scenario_task = asyncio.create_task(
                _schedule_driver(config, send_control, client.now_ms, t0_ms)
            )
        try:
            load = await client.run(config.duration_s)
        finally:
            if scenario_task is not None:
                scenario_task.cancel()
                await asyncio.gather(scenario_task, return_exceptions=True)
            await client.close()

        server_stats = []
        for sid in range(config.num_servers):
            ack = await send_control(sid, {"op": "stats"})
            server_stats.append(ack.get("stats", {}))
        for sid in range(config.num_servers):
            await send_control(sid, {"op": "shutdown"})
    finally:
        for reader, writer in control.values():
            if not writer.is_closing():
                writer.close()
        for proc in procs:
            if proc.returncode is None:
                try:
                    await asyncio.wait_for(proc.wait(), timeout=5.0)
                except asyncio.TimeoutError:
                    proc.kill()
                    await proc.wait()

    # ---------------------------------------------------- trim + histogram
    window_start = t0_ms + config.warmup_s * 1000.0
    window_end = t0_ms + (config.duration_s - config.cooldown_s) * 1000.0
    histogram = LatencyHistogram(relative_error=config.histogram_relative_error)
    trimmed = 0
    for completed_at, latency in completions:
        if window_start <= completed_at <= window_end:
            histogram.record(latency)
            trimmed += 1
    window_s = (window_end - window_start) / 1000.0
    summary = histogram.summarize()
    results: dict[str, Any] = {
        "issued": load.issued,
        "completed": load.completed,
        "timeouts": load.timeouts,
        "rejected": load.rejected,
        "backpressure": load.backpressure,
        "parked": load.parked,
        "hedges_fired": load.hedges_fired,
        "hedges_won": load.hedges_won,
        "trimmed_count": trimmed,
        "measured_window_s": window_s,
        "throughput_rps": trimmed / window_s if window_s > 0 else 0.0,
        "latency_ms": {
            "count": summary.count,
            "mean": summary.mean,
            "median": summary.median,
            "p95": summary.p95,
            "p99": summary.p99,
            "p999": summary.p999,
            "min": summary.minimum if summary.count else 0.0,
            "max": summary.maximum if summary.count else 0.0,
        },
        "sent_per_server": {str(k): v for k, v in sorted(load.sent_per_server.items())},
        "histogram_digest": histogram.digest(),
    }
    payload = build_payload(
        config.config_payload(),
        results,
        provenance={
            "recorded_at_unix": started,
            "wall_time_s": time.time() - started,
            "host": socket.gethostname(),
            "python": sys.version.split()[0],
        },
    )
    write_artifacts(out_dir, payload, histogram, server_stats)
    return LiveTrialResult(
        config=config,
        results=results,
        histogram=histogram,
        server_stats=server_stats,
        out_dir=out_dir,
        payload=payload,
    )


def run_trial(config: LiveTrialConfig, out_dir: "str | Path") -> LiveTrialResult:
    """Run one live trial end-to-end and write its artifact directory."""
    return asyncio.run(_run_trial_async(config, Path(out_dir)))
