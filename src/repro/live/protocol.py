"""Length-prefixed JSON wire format for the live cluster backend.

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON — one JSON object per frame.  Requests, responses,
and control messages share one connection and are distinguished by the
``"t"`` key:

``{"t": "req", "id": <int>, "kind": "read"|"write"}``
    A client request.  The server services it through its bounded queue
    and replies with a ``res`` frame carrying the same ``id``.

``{"t": "res", "id": <int>, "server_id": <int>, "queue_size": <int>,
"service_time_ms": <float>, "rejected": <bool>}``
    The response, with :class:`~repro.core.feedback.ServerFeedback`
    piggybacked exactly as the simulator's servers report it:
    ``queue_size`` is the pending count (queued + in service) at response
    time and ``service_time_ms`` the EWMA-smoothed service time.
    ``rejected`` is true when the bounded queue was full and the request
    was never serviced (the feedback fields still describe the server).

``{"t": "ctl", "op": <str>, ...}`` / ``{"t": "ack", "op": <str>, ...}``
    Scenario injection and lifecycle: ``slow`` (``factor``), ``pause``
    (``duration_ms``), ``crash``, ``restore``, ``stats``, ``shutdown``.
    The server acknowledges every control frame; ``stats`` acks carry the
    server's counters and per-bucket load series.

The frame length is capped (:data:`MAX_FRAME_BYTES`) so a corrupt or
hostile length prefix fails fast instead of buffering unbounded data.
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_message",
    "read_message",
    "write_message",
]

#: Upper bound on a single frame body.  Stats acks carry load series for
#: one server, which stays far below this even for very long trials.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame: oversized, truncated, or not a JSON object."""


def encode_message(message: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON body."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one frame on ``writer`` (no flush — callers drain in bulk).

    StreamWriter.write is not a coroutine, so frames from concurrent
    tasks never interleave mid-frame as long as each frame is a single
    ``write`` call — which :func:`encode_message` guarantees.
    """
    writer.write(encode_message(message))


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-frame (truncated length prefix)") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame (truncated body)") from error
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message
