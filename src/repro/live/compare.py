"""The C3-vs-baseline p99 comparison gate over recorded trial artifacts.

The CI ``live-smoke`` job runs one C3 and one LOR trial under the
slow-node scenario and asserts the simulated ordering — C3's p99 at or
below LOR's — holds live.  The comparison itself is pure artifact
arithmetic: :func:`load_trial` reads a trial directory written by
:func:`~repro.live.harness.run_trial` (validating the payload digest
along the way), :func:`compare_p99` reports the ordering with a relative
tolerance for localhost scheduling noise.  Because it only touches
recorded files, the gate is unit-testable and deterministic even when
the live run itself is skipped on a flaky runner.

Usable as a module CLI::

    python -m repro.live.compare <c3-trial-dir> <baseline-trial-dir>

exits 0 when the ordering holds, 1 when it is violated, 2 on bad inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..analysis.histogram import LatencyHistogram
from .harness import payload_digest

__all__ = ["ComparisonResult", "compare_p99", "load_trial", "main"]

#: Allowed relative slack on the p99 ordering.  Localhost trials share one
#: kernel scheduler with the harness and each other; a few percent of
#: jitter on a tail statistic is measurement noise, not a strategy effect.
DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class LoadedTrial:
    """One trial directory, parsed and digest-checked."""

    directory: Path
    payload: dict[str, Any]
    histogram: LatencyHistogram

    @property
    def strategy(self) -> str:
        return str(self.payload["config"]["strategy"])

    @property
    def p99_ms(self) -> float:
        return float(self.histogram.quantile(0.99))


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of one candidate-vs-baseline p99 comparison."""

    candidate_strategy: str
    baseline_strategy: str
    candidate_p99_ms: float
    baseline_p99_ms: float
    tolerance: float
    ok: bool

    def describe(self) -> str:
        verdict = "holds" if self.ok else "VIOLATED"
        return (
            f"{self.candidate_strategy} p99 {self.candidate_p99_ms:.2f} ms vs "
            f"{self.baseline_strategy} p99 {self.baseline_p99_ms:.2f} ms "
            f"(tolerance {self.tolerance:.0%}): ordering {verdict}"
        )


def load_trial(directory: "str | Path") -> LoadedTrial:
    """Read and validate one live-trial artifact directory."""
    path = Path(directory)
    payload_path = path / "payload.json"
    histogram_path = path / "histogram.json"
    if not payload_path.is_file():
        raise FileNotFoundError(f"{payload_path} not found (not a live-trial directory?)")
    if not histogram_path.is_file():
        raise FileNotFoundError(f"{histogram_path} not found (not a live-trial directory?)")
    payload = json.loads(payload_path.read_text(encoding="utf-8"))
    recorded = payload.get("digest")
    recomputed = payload_digest(payload)
    if recorded != recomputed:
        raise ValueError(
            f"payload digest mismatch in {payload_path}: recorded {recorded!r}, "
            f"recomputed {recomputed!r} — artifact edited or corrupted"
        )
    histogram = LatencyHistogram.from_dict(
        json.loads(histogram_path.read_text(encoding="utf-8"))
    )
    if histogram.count == 0:
        raise ValueError(f"{histogram_path} holds an empty histogram — trial recorded no latencies")
    return LoadedTrial(directory=path, payload=payload, histogram=histogram)


def compare_p99(
    candidate_dir: "str | Path",
    baseline_dir: "str | Path",
    tolerance: float = DEFAULT_TOLERANCE,
) -> ComparisonResult:
    """Does the candidate's p99 stay at/below the baseline's (with slack)?

    The gate passes when ``candidate_p99 <= baseline_p99 * (1 + tolerance)``.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    candidate = load_trial(candidate_dir)
    baseline = load_trial(baseline_dir)
    ok = candidate.p99_ms <= baseline.p99_ms * (1.0 + tolerance)
    return ComparisonResult(
        candidate_strategy=candidate.strategy,
        baseline_strategy=baseline.strategy,
        candidate_p99_ms=candidate.p99_ms,
        baseline_p99_ms=baseline.p99_ms,
        tolerance=tolerance,
        ok=ok,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.live.compare",
        description="Assert the candidate trial's p99 <= the baseline trial's p99.",
    )
    parser.add_argument("candidate", help="candidate trial directory (e.g. the C3 run)")
    parser.add_argument("baseline", help="baseline trial directory (e.g. the LOR run)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative slack on the ordering (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    try:
        result = compare_p99(args.candidate, args.baseline, tolerance=args.tolerance)
    except (OSError, ValueError, KeyError) as error:
        print(f"comparison failed to load artifacts: {error}", file=sys.stderr)
        return 2
    print(result.describe())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
