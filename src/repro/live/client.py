"""Async load generator: the simulator's client loop over real TCP.

:class:`LiveLoadClient` drives the *identical* strategy/control registries
the simulator uses — the selector built from a canonical
:class:`~repro.strategies.spec.StrategySpec`, the failure detector and
quantile-hedging policy from :class:`~repro.controls.spec.ControlSpec`
strings — against live replica servers (:mod:`repro.live.server`):

- **Open-loop Poisson arrivals** exactly like the simulator's workload
  module: exponential inter-arrival gaps at a fixed rate, each arrival
  assigned a ring-placement replica group
  (:func:`~repro.simulator.workload.replica_groups`) uniformly at random.
- **Real feedback**: every response frame piggybacks the server's queue
  size and EWMA service time, which become the
  :class:`~repro.core.feedback.ServerFeedback` the selector's
  ``on_response`` sees — C3's scoring/EWMA/cubic rate control run
  unmodified.
- **Liveness + hedging**: responses double as detector heartbeats (the
  phi-accrual detector works off real silence); the hedging policy arms a
  per-request timer that fires a speculative duplicate to an unused
  replica, first response wins.

The wall clock is ``time.monotonic()`` in milliseconds **relative to
client construction**, so ``now`` values handed to selectors/detectors
start near zero and advance the way simulator time does.  (Absolute
monotonic values would also be *correct*, but the shared control-plane
components assume sim-style epochs — e.g. the CUBIC receive-rate tracker
rolls its 20 ms windows forward from t=0, which against an hours-large
first timestamp is hundreds of thousands of no-op window rolls.)
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..controls.spec import ControlSpec
from ..core.feedback import ServerFeedback
from ..simulator.workload import replica_groups
from ..strategies.spec import StrategySpec
from .protocol import ProtocolError, read_message, write_message

__all__ = ["LiveClientResult", "LiveLoadClient"]

#: Floor on backpressure retry sleeps, mirroring SimClient._MIN_RETRY_MS.
_MIN_RETRY_MS = 0.1
#: Retry cadence when every replica is suspect, mirroring _PARKED_RETRY_MS.
_PARKED_RETRY_MS = 5.0
#: How often the reaper scans for request timeouts (ms).
_REAPER_INTERVAL_MS = 50.0


@dataclass
class _Pending:
    """One in-flight wire request (primary or speculative duplicate)."""

    op_id: int
    server_id: int
    sent_ms: float
    deadline_ms: float


@dataclass
class _Operation:
    """One logical client operation (may fan out into hedged duplicates)."""

    op_id: int
    group: tuple[int, ...]
    kind: str
    created_ms: float
    done: bool = False
    used: set[int] = field(default_factory=set)
    hedges_fired: int = 0


@dataclass
class LiveClientResult:
    """Counters from one load-generation run."""

    issued: int = 0
    completed: int = 0
    timeouts: int = 0
    rejected: int = 0
    backpressure: int = 0
    parked: int = 0
    hedges_fired: int = 0
    hedges_won: int = 0
    sent_per_server: dict[int, int] = field(default_factory=dict)
    selector_stats: dict[str, Any] = field(default_factory=dict)


class LiveLoadClient:
    """Replay the simulator's client behavior against live servers."""

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        *,
        strategy: "str | StrategySpec" = "c3",
        failure_detector: "str | ControlSpec | None" = None,
        hedging: "str | ControlSpec | None" = None,
        replication_factor: int = 3,
        arrival_rate_per_s: float = 200.0,
        read_fraction: float = 1.0,
        request_timeout_ms: float = 2_000.0,
        seed: int = 0,
        on_complete: Callable[[float, float], None] | None = None,
    ) -> None:
        if not addresses:
            raise ValueError("need at least one server address")
        if arrival_rate_per_s <= 0:
            raise ValueError(f"arrival_rate_per_s must be positive, got {arrival_rate_per_s}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
        self.addresses = list(addresses)
        n = len(self.addresses)
        self.groups = replica_groups(n, replication_factor)
        self.rate_per_ms = arrival_rate_per_s / 1000.0
        self.read_fraction = float(read_fraction)
        self.request_timeout_ms = float(request_timeout_ms)
        #: ``on_complete(completed_at_ms, latency_ms)`` per finished op.
        self.on_complete = on_complete
        root = np.random.default_rng(seed)
        self._wl_rng, sel_rng, self._cli_rng = root.spawn(3)
        self.strategy_spec = StrategySpec.parse(strategy)
        self.selector = self.strategy_spec.build(rng=sel_rng)
        self.detector: Any = None
        if failure_detector is not None:
            spec = ControlSpec.parse(failure_detector, kind="detector")
            # Live servers expose no ground-truth liveness, so the binary
            # detector degrades to never-suspicious; phi is the real one.
            self.detector = spec.build(down_tracker=None, servers=None)
        self.hedging: Any = None
        if hedging is not None:
            self.hedging = ControlSpec.parse(hedging, kind="hedge").build()
        self.result = LiveClientResult(
            sent_per_server={sid: 0 for sid in range(n)},
        )
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._readers: list[asyncio.Task] = []
        self._ops: dict[int, _Operation] = {}
        self._pending: dict[int, _Pending] = {}
        self._wire_to_op: dict[int, int] = {}
        self._next_id = 0
        self._stop = False
        self._parked: list[_Operation] = []
        self._retry_task: asyncio.Task | None = None
        self._parked_task: asyncio.Task | None = None
        self._epoch = time.monotonic()

    # --------------------------------------------------------------- clock
    def now_ms(self) -> float:
        """Milliseconds since this client was constructed (monotonic)."""
        return (time.monotonic() - self._epoch) * 1000.0

    _now_ms = now_ms

    # ---------------------------------------------------------- connection
    async def connect(self) -> None:
        for sid, (host, port) in enumerate(self.addresses):
            reader, writer = await asyncio.open_connection(host, port)
            self._writers[sid] = writer
            self._readers.append(
                asyncio.create_task(self._read_responses(sid, reader), name=f"read-{sid}")
            )

    async def close(self) -> None:
        self._stop = True
        tasks = list(self._readers)
        for extra in (self._retry_task, self._parked_task):
            if extra is not None:
                tasks.append(extra)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        for writer in self._writers.values():
            if not writer.is_closing():
                writer.close()

    # ----------------------------------------------------------------- run
    async def run(self, duration_s: float, drain_grace_s: float | None = None) -> LiveClientResult:
        """Generate open-loop load for ``duration_s``, then drain in-flight."""
        reaper = asyncio.create_task(self._reap_timeouts(), name="reaper")
        deadline = self._now_ms() + duration_s * 1000.0
        wl = self._wl_rng
        inv_rate = 1.0 / self.rate_per_ms
        n_groups = len(self.groups)
        try:
            while not self._stop:
                gap_ms = float(wl.exponential(inv_rate))
                now = self._now_ms()
                if now + gap_ms >= deadline:
                    break
                await asyncio.sleep(gap_ms / 1000.0)
                group = self.groups[int(wl.integers(n_groups))]
                kind = "read" if wl.random() < self.read_fraction else "write"
                self._issue(group, kind)
            grace = self.request_timeout_ms / 1000.0 if drain_grace_s is None else drain_grace_s
            drain_until = self._now_ms() + grace * 1000.0
            while self._pending and self._now_ms() < drain_until:
                await asyncio.sleep(0.01)
        finally:
            self._stop = True
            reaper.cancel()
            await asyncio.gather(reaper, return_exceptions=True)
        self.result.selector_stats = dict(self.selector.stats())
        return self.result

    # --------------------------------------------------------------- issue
    def _issue(self, group: tuple[int, ...], kind: str) -> None:
        now = self._now_ms()
        op_id = self._next_id
        self._next_id += 1
        op = _Operation(op_id=op_id, group=group, kind=kind, created_ms=now)
        self._ops[op_id] = op
        self.result.issued += 1
        self._submit(op, now)

    def _submit(self, op: _Operation, now: float) -> None:
        candidates: Sequence[int] = op.group
        if self.detector is not None and self.detector.suspicious():
            live = tuple(s for s in candidates if self.detector.is_alive(s, now))
            if not live:
                self._park(op)
                return
            candidates = live
        decision = self.selector.submit(op.op_id, candidates, now)
        if decision.server_id is None:
            # The selector holds the request in its own backlog (C3's
            # submit enqueues on backpressure); only schedule the drain.
            self.result.backpressure += 1
            self._schedule_retry(decision.retry_after_ms)
            return
        self._send(op, int(decision.server_id), now, primary=True)

    def _park(self, op: _Operation) -> None:
        """Every replica is suspect: hold the op until a retry tick."""
        self.result.parked += 1
        self._parked.append(op)
        if self._parked_task is None or self._parked_task.done():
            self._parked_task = asyncio.ensure_future(self._retry_parked())

    async def _retry_parked(self) -> None:
        await asyncio.sleep(_PARKED_RETRY_MS / 1000.0)
        if self._stop:
            return
        parked, self._parked = self._parked, []
        now = self._now_ms()
        for op in parked:
            if not op.done:
                self._submit(op, now)

    def _schedule_retry(self, delay_ms: float) -> None:
        if self._retry_task is not None and not self._retry_task.done():
            return
        self._retry_task = asyncio.ensure_future(self._retry_backlog(max(delay_ms, _MIN_RETRY_MS)))

    async def _retry_backlog(self, delay_ms: float) -> None:
        await asyncio.sleep(delay_ms / 1000.0)
        if self._stop:
            return
        now = self._now_ms()
        released = self.selector.drain_backlog(now)
        for request, server_id in released:
            op = self._ops.get(int(request))  # type: ignore[arg-type]
            if op is not None and not op.done:
                self._send(op, int(server_id), now, primary=True)
        if self.selector.pending_backlog():
            retry = self.selector.next_retry_ms(now)
            self._retry_task = None
            self._schedule_retry(retry if retry is not None else 1.0)

    def _send(self, op: _Operation, server_id: int, now: float, *, primary: bool) -> None:
        writer = self._writers[server_id]
        if writer.is_closing():
            self.selector.on_timeout(server_id, now)
            return
        wire_id = self._next_id
        self._next_id += 1
        op.used.add(server_id)
        self._wire_to_op[wire_id] = op.op_id
        self._pending[wire_id] = _Pending(
            op_id=op.op_id,
            server_id=server_id,
            sent_ms=now,
            deadline_ms=now + self.request_timeout_ms,
        )
        self.result.sent_per_server[server_id] = self.result.sent_per_server.get(server_id, 0) + 1
        write_message(writer, {"t": "req", "id": wire_id, "kind": op.kind})
        # No await here: StreamWriter.write buffers; the event loop flushes.
        if primary and op.kind == "read":
            self._maybe_hedge(op)

    # -------------------------------------------------------------- hedging
    def _maybe_hedge(self, op: _Operation) -> None:
        policy = self.hedging
        if policy is None or op.hedges_fired >= policy.max_extra:
            return
        threshold = policy.threshold_ms()
        if threshold is None:
            return

        async def _fire() -> None:
            await asyncio.sleep(threshold / 1000.0)
            if self._stop or op.done:
                return
            now = self._now_ms()
            candidates = [s for s in op.group if s not in op.used]
            if self.detector is not None and self.detector.suspicious():
                candidates = [s for s in candidates if self.detector.is_alive(s, now)]
            if not candidates:
                return
            target = candidates[int(self._cli_rng.integers(len(candidates)))]
            op.hedges_fired += 1
            self.result.hedges_fired += 1
            self.selector.on_duplicate_send(target, now)
            self._send(op, target, now, primary=False)
            self._maybe_hedge(op)

        asyncio.ensure_future(_fire())

    # ------------------------------------------------------------ responses
    async def _read_responses(self, server_id: int, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                message = await read_message(reader)
            except (ProtocolError, ConnectionError):
                return
            if message is None:
                return
            if message.get("t") == "res":
                self._on_response(message)

    def _on_response(self, message: dict) -> None:
        now = self._now_ms()
        wire_id = int(message["id"])
        pending = self._pending.pop(wire_id, None)
        op_id = self._wire_to_op.pop(wire_id, None)
        if pending is None or op_id is None:
            return  # already timed out
        sid = pending.server_id
        if self.detector is not None:
            self.detector.heartbeat(sid, now)
        if message.get("rejected"):
            # Never serviced: release the selector's outstanding slot but
            # record no feedback-driven EWMA fold or latency.
            self.result.rejected += 1
            self.selector.on_timeout(sid, now)
            return
        feedback = ServerFeedback(
            queue_size=int(message["queue_size"]),
            service_time=float(message["service_time_ms"]),
            server_id=sid,
        )
        response_time = now - pending.sent_ms
        released = self.selector.on_response(sid, feedback, response_time, now)
        op = self._ops.get(op_id)
        if op is not None and not op.done:
            op.done = True
            self.result.completed += 1
            if op.hedges_fired and sid != next(iter(op.used)):
                self.result.hedges_won += 1
            if self.hedging is not None and op.kind == "read":
                self.hedging.record(now - op.created_ms)
            if self.on_complete is not None:
                self.on_complete(now, now - op.created_ms)
            self._ops.pop(op_id, None)
        for request, server_id in released:
            released_op = self._ops.get(int(request))  # type: ignore[arg-type]
            if released_op is not None and not released_op.done:
                self._send(released_op, int(server_id), now, primary=True)

    # -------------------------------------------------------------- reaper
    async def _reap_timeouts(self) -> None:
        while not self._stop:
            await asyncio.sleep(_REAPER_INTERVAL_MS / 1000.0)
            now = self._now_ms()
            expired = [wid for wid, p in self._pending.items() if p.deadline_ms <= now]
            for wire_id in expired:
                pending = self._pending.pop(wire_id, None)
                op_id = self._wire_to_op.pop(wire_id, None)
                if pending is None:
                    continue
                self.selector.on_timeout(pending.server_id, now)
                if op_id is None:
                    continue
                op = self._ops.get(op_id)
                if op is not None and not op.done:
                    still_inflight = any(
                        p.op_id == op_id for p in self._pending.values()
                    )
                    if not still_inflight:
                        op.done = True
                        self.result.timeouts += 1
                        self._ops.pop(op_id, None)
