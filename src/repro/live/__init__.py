"""Live asyncio cluster backend behind the simulator's spec surface.

The same canonical :class:`~repro.strategies.StrategySpec` /
:class:`~repro.controls.ControlSpec` / scenario strings that drive the
discrete-event simulator drive real load here: replica servers are OS
processes with genuine asyncio queues (:mod:`repro.live.server`), the load
generator replays the simulator's open-loop Poisson workload through the
strategies/controls registries over TCP (:mod:`repro.live.client`), and
:mod:`repro.live.harness` orchestrates trials in the cluster-test-script
shape — spawn N localhost server processes, warmup/cooldown trimming,
streaming-histogram latency capture, per-trial artifact directories.

Wire format lives in :mod:`repro.live.protocol`; the C3-vs-baseline p99
comparison gate (used by the CI ``live-smoke`` job) in
:mod:`repro.live.compare`.
"""

from typing import Any

from .harness import (
    LiveTrialConfig,
    LiveTrialResult,
    build_payload,
    payload_digest,
    run_trial,
    write_artifacts,
)
from .protocol import MAX_FRAME_BYTES, encode_message, read_message, write_message

# The comparison gate is imported lazily so `python -m repro.live.compare`
# doesn't re-execute a module this package already loaded (runpy's
# found-in-sys.modules RuntimeWarning).
_COMPARE_EXPORTS = ("ComparisonResult", "compare_p99", "load_trial")


def __getattr__(name: str) -> Any:
    if name in _COMPARE_EXPORTS:
        from . import compare

        return getattr(compare, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ComparisonResult",
    "LiveTrialConfig",
    "LiveTrialResult",
    "MAX_FRAME_BYTES",
    "build_payload",
    "compare_p99",
    "encode_message",
    "load_trial",
    "payload_digest",
    "read_message",
    "run_trial",
    "write_artifacts",
    "write_message",
]
