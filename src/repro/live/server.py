"""Asyncio TCP replica server process for the live backend.

One :class:`ReplicaServer` is the live analogue of the simulator's
``SimServer``: a bounded service queue drained by ``concurrency`` worker
slots, exponential service times (mean = ``base_service_ms`` x the current
slow-down multiplier), and per-response feedback mirroring
``SimServer.feedback_snapshot()`` — pending count at slot-release time plus
the EWMA-smoothed observed service time (alpha 0.9, floored at 1e-3 ms).

Scenario injection arrives over the same TCP listener as load, as ``ctl``
frames (see :mod:`repro.live.protocol`): ``slow`` inflates service times
(slow-node), ``pause`` stalls the worker slots for a duration (gc-storm),
``crash``/``restore`` drop and revive the server (crash-recovery), and
``stats`` reads back counters plus a bucketed served-load series.

Run as a process::

    python -m repro.live.server --server-id 0 --port 0 --seed 42

The server binds 127.0.0.1 (port 0 = OS-assigned) and prints ``PORT <n>``
on stdout once listening, which is how the harness discovers it.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import Any

import numpy as np

from .protocol import ProtocolError, read_message, write_message

__all__ = ["ReplicaServer", "main"]

#: EWMA weight on the newest observed service time (matches SimServer).
_EWMA_ALPHA = 0.9
#: Width of one served-load accounting bucket, in milliseconds.
_LOAD_BUCKET_MS = 100.0


class ReplicaServer:
    """One live replica: bounded queue, worker slots, control channel."""

    def __init__(
        self,
        server_id: int,
        *,
        base_service_ms: float = 4.0,
        concurrency: int = 4,
        queue_capacity: int = 10_000,
        seed: int = 0,
        deterministic: bool = False,
    ) -> None:
        if base_service_ms <= 0:
            raise ValueError(f"base_service_ms must be positive, got {base_service_ms}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        self.server_id = int(server_id)
        self.base_service_ms = float(base_service_ms)
        self.concurrency = int(concurrency)
        self.queue_capacity = int(queue_capacity)
        self.deterministic = bool(deterministic)
        self._rng = np.random.default_rng(seed)
        self._queue: asyncio.Queue[tuple[dict, asyncio.StreamWriter]] = asyncio.Queue(
            maxsize=queue_capacity
        )
        self._in_service = 0
        self._up = True
        self._multiplier = 1.0
        self._resume_at = 0.0  # monotonic ms; workers stall until this
        self._smoothed_service_ms = 0.0
        self._start_ms = time.monotonic() * 1000.0
        self._load_buckets: dict[int, int] = {}
        self.accepted = 0
        self.rejected = 0
        self.served = 0
        self.dropped = 0
        self.enqueued_while_down = 0
        self._shutdown = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task] = []

    # ----------------------------------------------------------- lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind, start the worker slots, and return the listening port."""
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"worker-{self.server_id}-{slot}")
            for slot in range(self.concurrency)
        ]
        sockets = self._server.sockets or ()
        return int(sockets[0].getsockname()[1])

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` control frame arrives, then clean up."""
        await self._shutdown.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)

    # ------------------------------------------------------------- service
    def _now_ms(self) -> float:
        return time.monotonic() * 1000.0

    def _feedback(self) -> dict[str, Any]:
        stime = self._smoothed_service_ms
        return {
            "server_id": self.server_id,
            "queue_size": self._queue.qsize() + self._in_service,
            "service_time_ms": stime if stime > 1e-3 else 1e-3,
        }

    async def _worker(self) -> None:
        queue = self._queue
        while True:
            request, writer = await queue.get()
            if not self._up:
                # Crashed between enqueue and service: the request is lost;
                # the client's timeout / failure detector covers it.
                self.dropped += 1
                continue
            resume_at = self._resume_at
            now = self._now_ms()
            if now < resume_at:
                # A gc-storm pause: the slot stalls, queueing depth builds
                # behind it exactly as a stopped-world server would.
                await asyncio.sleep((resume_at - now) / 1000.0)
                if not self._up:
                    self.dropped += 1
                    continue
            self._in_service += 1
            mean = self.base_service_ms * self._multiplier
            if self.deterministic:
                service_ms = mean
            else:
                service_ms = float(mean * self._rng.standard_exponential())
            await asyncio.sleep(service_ms / 1000.0)
            self._in_service -= 1
            self._smoothed_service_ms = (
                _EWMA_ALPHA * service_ms + (1.0 - _EWMA_ALPHA) * self._smoothed_service_ms
            )
            self.served += 1
            bucket = int((self._now_ms() - self._start_ms) / _LOAD_BUCKET_MS)
            self._load_buckets[bucket] = self._load_buckets.get(bucket, 0) + 1
            if self._up and not writer.is_closing():
                response = {"t": "res", "id": request["id"], "rejected": False}
                response.update(self._feedback())
                try:
                    write_message(writer, response)
                    await writer.drain()
                except (ConnectionError, ProtocolError):
                    pass  # client went away; nothing to report to

    # ------------------------------------------------------------- control
    def _handle_control(self, message: dict) -> dict:
        op = message.get("op")
        ack: dict[str, Any] = {"t": "ack", "op": op, "server_id": self.server_id}
        if op == "slow":
            self._multiplier = float(message["factor"])
        elif op == "pause":
            until = self._now_ms() + float(message["duration_ms"])
            if until > self._resume_at:
                self._resume_at = until
        elif op == "crash":
            self._up = False
            # Drop everything queued: a crashed process holds no state.
            while not self._queue.empty():
                self._queue.get_nowait()
                self.dropped += 1
        elif op == "restore":
            self._up = True
        elif op == "stats":
            ack["stats"] = {
                "server_id": self.server_id,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "served": self.served,
                "dropped": self.dropped,
                "enqueued_while_down": self.enqueued_while_down,
                "load_bucket_ms": _LOAD_BUCKET_MS,
                "load_series": [
                    [bucket, count] for bucket, count in sorted(self._load_buckets.items())
                ],
            }
        elif op == "shutdown":
            self._shutdown.set()
        else:
            ack["error"] = f"unknown control op {op!r}"
        return ack

    # ---------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError:
                    break
                if message is None:
                    break
                kind = message.get("t")
                if kind == "req":
                    if not self._up:
                        self.enqueued_while_down += 1
                        continue
                    self.accepted += 1
                    try:
                        self._queue.put_nowait((message, writer))
                    except asyncio.QueueFull:
                        self.rejected += 1
                        response = {"t": "res", "id": message["id"], "rejected": True}
                        response.update(self._feedback())
                        write_message(writer, response)
                        await writer.drain()
                elif kind == "ctl":
                    write_message(writer, self._handle_control(message))
                    await writer.drain()
                # Unknown frame types are ignored: forward compatibility.
        finally:
            if not writer.is_closing():
                writer.close()


async def _run(args: argparse.Namespace) -> None:
    server = ReplicaServer(
        args.server_id,
        base_service_ms=args.base_service_ms,
        concurrency=args.concurrency,
        queue_capacity=args.queue_capacity,
        seed=args.seed,
        deterministic=args.deterministic,
    )
    port = await server.start(args.host, args.port)
    print(f"PORT {port}", flush=True)
    await server.serve_until_shutdown()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.live.server", description="One live replica server process."
    )
    parser.add_argument("--server-id", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = OS-assigned (printed on stdout)")
    parser.add_argument("--base-service-ms", type=float, default=4.0)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--queue-capacity", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--deterministic", action="store_true")
    args = parser.parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
