"""YCSB-style workload generation: key skew, record sizes and operation mixes."""

from .records import FixedRecordSize, ZipfSkewedRecordSize
from .ycsb import WORKLOAD_MIXES, Operation, WorkloadMix, YCSBWorkload
from .zipf import UniformKeyGenerator, ZipfianGenerator

__all__ = [
    "FixedRecordSize",
    "Operation",
    "UniformKeyGenerator",
    "WORKLOAD_MIXES",
    "WorkloadMix",
    "YCSBWorkload",
    "ZipfSkewedRecordSize",
    "ZipfianGenerator",
]
