"""Record-size models.

§5 evaluates two datasets: fixed 1 KB records (10 × 100-byte fields, YCSB's
default) and a "skewed record sizes" dataset where field sizes are Zipfian
distributed favouring shorter values, with a maximum record length of 2 KB
across ten fields.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FixedRecordSize", "ZipfSkewedRecordSize"]


class FixedRecordSize:
    """Every record has the same size (the paper's 1 KB baseline)."""

    def __init__(self, size_bytes: int = 1024) -> None:
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        self.size_bytes = int(size_bytes)

    def sample(self) -> int:
        """Size of the next record, in bytes."""
        return self.size_bytes

    def mean(self) -> float:
        """Expected record size in bytes."""
        return float(self.size_bytes)


class ZipfSkewedRecordSize:
    """Zipf-distributed field sizes favouring shorter values (§5).

    Each record has ``num_fields`` fields whose sizes follow a discretised
    Zipf distribution over ``[min_field_bytes, max_field_bytes]``; the total
    record size is capped at ``max_record_bytes`` (2 KB in the paper).
    """

    def __init__(
        self,
        num_fields: int = 10,
        min_field_bytes: int = 1,
        max_field_bytes: int = 200,
        max_record_bytes: int = 2048,
        theta: float = 0.99,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_fields < 1:
            raise ValueError("num_fields must be >= 1")
        if min_field_bytes < 1 or max_field_bytes < min_field_bytes:
            raise ValueError("field size bounds are invalid")
        if max_record_bytes < num_fields * min_field_bytes:
            raise ValueError("max_record_bytes too small for the field bounds")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.num_fields = int(num_fields)
        self.min_field_bytes = int(min_field_bytes)
        self.max_field_bytes = int(max_field_bytes)
        self.max_record_bytes = int(max_record_bytes)
        self.theta = float(theta)
        self.rng = rng or np.random.default_rng()

        sizes = np.arange(self.min_field_bytes, self.max_field_bytes + 1, dtype=float)
        weights = 1.0 / (np.arange(1, sizes.size + 1, dtype=float) ** self.theta)
        self._sizes = sizes.astype(int)
        self._probs = weights / weights.sum()

    def sample_field(self) -> int:
        """Size of one field, in bytes (shorter values are more likely)."""
        return int(self.rng.choice(self._sizes, p=self._probs))

    def sample(self) -> int:
        """Size of the next record, in bytes (sum of fields, capped)."""
        total = sum(self.sample_field() for _ in range(self.num_fields))
        return int(min(total, self.max_record_bytes))

    def mean(self) -> float:
        """Expected record size in bytes (ignoring the rarely-hit cap)."""
        mean_field = float(np.dot(self._sizes, self._probs))
        return min(mean_field * self.num_fields, float(self.max_record_bytes))
