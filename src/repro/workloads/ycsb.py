"""YCSB-style workload mixes.

The paper drives Cassandra with three standard YCSB mixes:

* **read-heavy**   — 95 % reads / 5 % updates (photo tagging; YCSB workload B);
* **update-heavy** — 50 % reads / 50 % updates (session store; YCSB workload A);
* **read-only**    — 100 % reads (user-profile cache; YCSB workload C).

Keys follow a Zipfian(0.99) popularity over 10 M keys; records are 1 KB by
default.  :class:`YCSBWorkload` bundles the mix, the key generator and the
record-size model into a single operation stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .records import FixedRecordSize, ZipfSkewedRecordSize
from .zipf import UniformKeyGenerator, ZipfianGenerator

__all__ = ["Operation", "WorkloadMix", "YCSBWorkload", "WORKLOAD_MIXES"]


@dataclass(frozen=True, slots=True)
class Operation:
    """One workload operation: a read or an update of a key."""

    key: int
    is_read: bool
    record_size: int


@dataclass(frozen=True, slots=True)
class WorkloadMix:
    """A named read/update mix."""

    name: str
    read_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


#: The three mixes evaluated in §5.
WORKLOAD_MIXES: dict[str, WorkloadMix] = {
    "read_heavy": WorkloadMix("read_heavy", 0.95),
    "update_heavy": WorkloadMix("update_heavy", 0.50),
    "read_only": WorkloadMix("read_only", 1.00),
}


class YCSBWorkload:
    """An operation stream with a YCSB-like mix, key skew and record sizes.

    Parameters
    ----------
    mix:
        A :class:`WorkloadMix` or the name of one of :data:`WORKLOAD_MIXES`.
    num_keys:
        Key-space size (the paper draws from 10 million keys; experiments in
        this repository default to a much smaller space for speed — access
        *skew*, not key cardinality, is what drives replica-selection load).
    zipf_theta:
        Zipfian constant (0.99, YCSB default).
    key_distribution:
        "zipfian" (default) or "uniform".
    record_sizes:
        A record-size model; defaults to fixed 1 KB records.  Pass a
        :class:`~repro.workloads.records.ZipfSkewedRecordSize` to reproduce
        the skewed-record-size experiment.
    rng:
        Random generator.
    """

    def __init__(
        self,
        mix: WorkloadMix | str = "read_heavy",
        num_keys: int = 100_000,
        zipf_theta: float = 0.99,
        key_distribution: str = "zipfian",
        record_sizes: FixedRecordSize | ZipfSkewedRecordSize | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if isinstance(mix, str):
            if mix not in WORKLOAD_MIXES:
                raise ValueError(f"unknown mix {mix!r}; choose from {sorted(WORKLOAD_MIXES)}")
            mix = WORKLOAD_MIXES[mix]
        self.mix = mix
        self.rng = rng or np.random.default_rng()
        if key_distribution == "zipfian":
            self.keys = ZipfianGenerator(num_keys, theta=zipf_theta, rng=self.rng)
        elif key_distribution == "uniform":
            self.keys = UniformKeyGenerator(num_keys, rng=self.rng)
        else:
            raise ValueError("key_distribution must be 'zipfian' or 'uniform'")
        self.record_sizes = record_sizes or FixedRecordSize(1024)
        self.operations_generated = 0

    @property
    def name(self) -> str:
        """The mix name (read_heavy / update_heavy / read_only)."""
        return self.mix.name

    def next_operation(self) -> Operation:
        """Draw the next operation of the stream."""
        self.operations_generated += 1
        return Operation(
            key=self.keys.next_key(),
            is_read=self.rng.random() < self.mix.read_fraction,
            record_size=self.record_sizes.sample(),
        )

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` operations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self.next_operation()
