"""Zipfian key popularity — the YCSB access pattern used throughout §5.

YCSB's "zipfian" request distribution draws keys from a Zipf(ρ) law over a
fixed key space (ρ = 0.99 in the paper).  :class:`ZipfianGenerator`
implements the classic Gray et al. bounded Zipfian generator so that draws
are O(1) and the popularity ranking is scrambled across the key space the
same way YCSB does it (``scrambled`` mode).
"""

from __future__ import annotations


import numpy as np

__all__ = ["ZipfianGenerator", "UniformKeyGenerator"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer (YCSB's key scrambler)."""
    data = value.to_bytes(8, "little", signed=False)
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


class ZipfianGenerator:
    """Bounded Zipfian integer generator over ``[0, num_keys)``.

    Parameters
    ----------
    num_keys:
        Size of the key space.
    theta:
        The Zipfian constant ρ (0.99 in YCSB and in the paper).  Values must
        be in (0, 1); 0.99 produces the heavy skew where ~85 % of accesses
        hit ~10 % of keys.
    scrambled:
        When True (default) the popularity ranking is scattered over the key
        space with an FNV hash, as YCSB does, so that popular keys do not
        cluster on adjacent token ranges.
    rng:
        Random generator.
    """

    def __init__(
        self,
        num_keys: int,
        theta: float = 0.99,
        scrambled: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.num_keys = int(num_keys)
        self.theta = float(theta)
        self.scrambled = scrambled
        self.rng = rng or np.random.default_rng()

        self._zetan = self._zeta(self.num_keys, self.theta)
        self._zeta2 = self._zeta(2, self.theta)
        self._alpha = 1.0 / (1.0 - self.theta)
        self._eta = (1.0 - (2.0 / self.num_keys) ** (1.0 - self.theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(sum(1.0 / (i**theta) for i in range(1, n + 1)))

    def next_rank(self) -> int:
        """Draw a popularity rank in ``[0, num_keys)`` (0 = most popular)."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.num_keys * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_key(self) -> int:
        """Draw a key, optionally scrambling the rank across the key space."""
        rank = min(self.next_rank(), self.num_keys - 1)
        if not self.scrambled:
            return rank
        return _fnv1a_64(rank) % self.num_keys

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` keys."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.array([self.next_key() for _ in range(count)], dtype=np.int64)

    def popularity(self, rank: int) -> float:
        """Theoretical access probability of the key with the given rank."""
        if not 0 <= rank < self.num_keys:
            raise ValueError("rank out of range")
        return (1.0 / ((rank + 1) ** self.theta)) / self._zetan


class UniformKeyGenerator:
    """Uniform key popularity (YCSB's "uniform" request distribution)."""

    def __init__(self, num_keys: int, rng: np.random.Generator | None = None) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        self.num_keys = int(num_keys)
        self.rng = rng or np.random.default_rng()

    def next_key(self) -> int:
        """Draw a key uniformly."""
        return int(self.rng.integers(self.num_keys))

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` keys."""
        return self.rng.integers(0, self.num_keys, size=count, dtype=np.int64)
