"""Resumable sweep checkpoints: a manifest of per-trial completion state.

A :class:`SweepCheckpoint` records everything needed to continue an
interrupted (or deliberately budget-capped) sweep exactly where it stopped:
the spec's content digest, the cache key of every trial in expansion order,
and which trials have completed.  The manifest lives under the trial cache
root (``<cache-dir>/checkpoints/<spec-key>.json`` by default) and is
rewritten atomically after every completion, so a killed run — ``SIGKILL``
included — can never leave it ahead of the cache: a trial is marked
completed only *after* its result payload has been persisted.

Resume correctness rests on two invariants the runner maintains:

* **The manifest never substitutes for the cache.**  Completion marks are
  an index, not a result store; a resumed run re-checks the cache for every
  trial, so a wiped cache simply re-executes (and a stale mark is harmless).
* **The spec digest gates every resume.**  A manifest written for one spec
  cannot silently continue a different one — any change to the base config,
  grid, or seeds produces a new spec key and therefore a
  :class:`CheckpointMismatch` instead of a partial mixed result.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .spec import SweepSpec

__all__ = ["CheckpointMismatch", "SweepCheckpoint", "checkpoint_path_for"]

#: Manifest schema version; bump on incompatible layout changes.
_VERSION = 1


class CheckpointMismatch(ValueError):
    """A manifest exists but belongs to a different sweep spec."""


def checkpoint_path_for(cache_root: str | os.PathLike[str], spec_key: str) -> Path:
    """The default manifest location for ``spec_key`` under ``cache_root``."""
    return Path(cache_root) / "checkpoints" / f"{spec_key}.json"


class SweepCheckpoint:
    """Incremental completion manifest for one sweep spec.

    Construct via :meth:`create` (new manifest), :meth:`load` (existing
    manifest), or :meth:`open` (load-or-create, validated against a spec).
    Mutations persist immediately and atomically.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        spec_key: str,
        trial_keys: Iterable[str],
        completed: Iterable[int] = (),
        description: str = "",
    ) -> None:
        self.path = Path(path)
        self.spec_key = spec_key
        self.trial_keys = tuple(trial_keys)
        self.description = description
        self._completed: set[int] = set()
        for index in completed:
            if not 0 <= index < len(self.trial_keys):
                raise ValueError(
                    f"completed index {index} out of range for {len(self.trial_keys)} trials",
                )
            self._completed.add(int(index))

    # ------------------------------------------------------------ construction
    @classmethod
    def create(cls, spec: "SweepSpec", path: str | os.PathLike[str]) -> "SweepCheckpoint":
        """Start a fresh manifest for ``spec`` at ``path`` (overwrites)."""
        checkpoint = cls(
            path=path,
            spec_key=spec.key,
            trial_keys=[trial.key for trial in spec.trials()],
            description=spec.describe(),
        )
        checkpoint.save()
        return checkpoint

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "SweepCheckpoint":
        """Read an existing manifest; raises ``ValueError`` if unusable."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read sweep checkpoint {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise ValueError(f"corrupt sweep checkpoint {path}: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported sweep checkpoint {path} "
                f"(version {payload.get('version') if isinstance(payload, dict) else '?'})"
            )
        return cls(
            path=path,
            spec_key=payload["spec_key"],
            trial_keys=payload["trial_keys"],
            completed=payload["completed"],
            description=payload.get("description", ""),
        )

    @classmethod
    def open(cls, spec: "SweepSpec", path: str | os.PathLike[str]) -> "SweepCheckpoint":
        """Load the manifest at ``path`` for ``spec``, or create one.

        An existing manifest for a *different* spec raises
        :class:`CheckpointMismatch` — resuming must never mix trials from
        two sweeps.
        """
        path = Path(path)
        if not path.is_file():
            return cls.create(spec, path)
        checkpoint = cls.load(path)
        if checkpoint.spec_key != spec.key:
            raise CheckpointMismatch(
                f"checkpoint {path} was written for sweep {checkpoint.spec_key[:12]} "
                f"({checkpoint.description or 'unknown shape'}), not the requested sweep "
                f"{spec.key[:12]} ({spec.describe()}); delete the manifest or point "
                f"--checkpoint elsewhere to start over"
            )
        return checkpoint

    # -------------------------------------------------------------- inspection
    @property
    def num_trials(self) -> int:
        """Total trials in the sweep this manifest tracks."""
        return len(self.trial_keys)

    @property
    def num_completed(self) -> int:
        """How many trials have been marked complete."""
        return len(self._completed)

    @property
    def is_complete(self) -> bool:
        """Whether every trial has completed."""
        return len(self._completed) == len(self.trial_keys)

    def completed_indices(self) -> tuple[int, ...]:
        """The completed trial indices, sorted."""
        return tuple(sorted(self._completed))

    def pending_indices(self) -> tuple[int, ...]:
        """The not-yet-completed trial indices, in expansion order."""
        return tuple(i for i in range(len(self.trial_keys)) if i not in self._completed)

    def is_completed(self, index: int) -> bool:
        """Whether trial ``index`` has been marked complete."""
        return index in self._completed

    def describe_progress(self) -> str:
        """Human one-liner: ``K/N trials complete``."""
        return f"{self.num_completed}/{self.num_trials} trials complete"

    # --------------------------------------------------------------- mutation
    def mark_completed(self, *indices: int) -> None:
        """Mark trials complete and persist the manifest once.

        Idempotent: re-marking an already-completed trial neither errors
        nor rewrites state unnecessarily.
        """
        added = False
        for index in indices:
            if not 0 <= index < len(self.trial_keys):
                raise ValueError(
                    f"trial index {index} out of range for {len(self.trial_keys)} trials",
                )
            if index not in self._completed:
                self._completed.add(index)
                added = True
        if added:
            self.save()

    def save(self) -> Path:
        """Atomically persist the manifest (temp file + ``os.replace``)."""
        payload = {
            "version": _VERSION,
            "spec_key": self.spec_key,
            "description": self.description,
            "num_trials": len(self.trial_keys),
            "trial_keys": list(self.trial_keys),
            "completed": sorted(self._completed),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return self.path
