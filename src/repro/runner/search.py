"""Adaptive parameter search: successive halving over sweep grid axes.

Dense grids pay ``candidates × seeds`` trials to rank every configuration at
full replication, even though most candidates are separable after a seed or
two.  :func:`successive_halving` ranks the same candidate set in a fraction
of the trials: rung 0 evaluates *every* candidate on a small seed prefix,
each following rung keeps the best ``1/eta`` of the survivors and replicates
them on a larger prefix, and the final rung always runs at the *full* seed
set — so the winner is, by construction, the argmin over every candidate
that was evaluated at full replication.

Determinism is inherited rather than re-proven: every rung is an ordinary
:class:`~repro.runner.SweepSpec` executed through a
:class:`~repro.runner.SweepRunner`, so serial and pooled searches produce
identical rung tables and winners, and a shared trial cache makes the seed
prefixes *nest* — rung ``i+1`` re-executes only the seeds rung ``i`` has not
already paid for, and a later dense sweep of the same grid reuses every
search trial.

Seeding is deterministic by construction: rung ``i`` uses the first
``r_i`` seeds of the caller's seed tuple, with ``r_i`` growing by ``eta``
per rung until the final rung reaches the full set.  Ties rank by candidate
position, so the promotion sequence is a pure function of the spec.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..simulator import SimulationConfig
from ..strategies import StrategySpec
from .results import AGGREGATE_METRICS
from .runner import SweepRunner
from .spec import SweepSpec, content_hash

__all__ = [
    "RungResult",
    "SearchResult",
    "candidate_digest",
    "dense_argmin",
    "rung_schedule",
    "successive_halving",
]


def rung_schedule(
    num_candidates: int,
    num_seeds: int,
    eta: int,
    min_seeds: int = 1,
) -> list[tuple[int, int]]:
    """The ``[(candidates, seeds)]`` plan for one search, first rung first.

    Candidate counts shrink by ``ceil(n / eta)`` per rung until one survivor
    remains; seed counts grow geometrically so that the *final* rung always
    uses all ``num_seeds`` (the winner must be ranked at full replication).
    """
    if num_candidates < 1:
        raise ValueError("need at least one candidate")
    if num_seeds < 1:
        raise ValueError("need at least one seed")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    if min_seeds < 1:
        raise ValueError(f"min_seeds must be >= 1, got {min_seeds}")
    counts = [num_candidates]
    while counts[-1] > 1:
        survivors = math.ceil(counts[-1] / eta)
        if survivors <= 1:
            break
        counts.append(survivors)
    rungs = len(counts)
    schedule = []
    for i, n in enumerate(counts):
        r = max(min_seeds, math.ceil(num_seeds / eta ** (rungs - 1 - i)))
        schedule.append((n, min(r, num_seeds)))
    return schedule


def candidate_digest(axis: str, value: Any) -> str:
    """A stable content digest identifying one candidate configuration.

    Strategy-axis candidates digest through :class:`StrategySpec`, so every
    spelling of the same parameterization shares a digest; other axes hash
    their canonical JSON value.
    """
    if axis == "strategy":
        return StrategySpec.parse(value).digest()
    return content_hash({axis: value})


@dataclass(frozen=True)
class RungResult:
    """One rung's evaluations: candidates × a seed prefix, scored."""

    rung: int
    candidates: tuple[Any, ...]
    seeds: tuple[int, ...]
    scores: dict[Any, float]
    executed: int
    cached: int
    promoted: tuple[Any, ...]

    def to_dict(self) -> dict:
        return {
            "rung": self.rung,
            "candidates": list(self.candidates),
            "seeds": list(self.seeds),
            "scores": [[candidate, self.scores[candidate]] for candidate in self.candidates],
            "executed": self.executed,
            "cached": self.cached,
            "promoted": list(self.promoted),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RungResult":
        return cls(
            rung=payload["rung"],
            candidates=tuple(payload["candidates"]),
            seeds=tuple(payload["seeds"]),
            scores={candidate: score for candidate, score in payload["scores"]},
            executed=payload["executed"],
            cached=payload["cached"],
            promoted=tuple(payload["promoted"]),
        )


@dataclass
class SearchResult:
    """The outcome of one successive-halving search."""

    axis: str
    metric: str
    minimize: bool
    eta: int
    best: Any
    best_score: float
    best_digest: str
    full_scores: dict[Any, float] = field(default_factory=dict)
    rungs: list[RungResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    dense_trials: int = 0
    wall_time_s: float = 0.0

    @property
    def executed_fraction(self) -> float:
        """Executed trials as a fraction of the dense grid's trial count."""
        if self.dense_trials <= 0:
            return 0.0
        return self.executed / self.dense_trials

    def to_dict(self) -> dict:
        return {
            "axis": self.axis,
            "metric": self.metric,
            "minimize": self.minimize,
            "eta": self.eta,
            "best": self.best,
            "best_score": self.best_score,
            "best_digest": self.best_digest,
            "full_scores": [[candidate, score] for candidate, score in self.full_scores.items()],
            "rungs": [rung.to_dict() for rung in self.rungs],
            "executed": self.executed,
            "cached": self.cached,
            "dense_trials": self.dense_trials,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchResult":
        return cls(
            axis=payload["axis"],
            metric=payload["metric"],
            minimize=payload["minimize"],
            eta=payload["eta"],
            best=payload["best"],
            best_score=payload["best_score"],
            best_digest=payload["best_digest"],
            full_scores={candidate: score for candidate, score in payload["full_scores"]},
            rungs=[RungResult.from_dict(rung) for rung in payload["rungs"]],
            executed=payload["executed"],
            cached=payload["cached"],
            dense_trials=payload["dense_trials"],
            wall_time_s=payload["wall_time_s"],
        )

    def save(self, path: str | Path) -> Path:
        """Persist as a JSON document (the ``c3-repro report`` input shape)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SearchResult":
        """Rebuild from :meth:`save` output."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def _canonical_candidates(
    base: SimulationConfig,
    axis: str,
    candidates: Sequence[Any],
) -> tuple[Any, ...]:
    """Canonicalize ``candidates`` exactly the way a sweep grid would.

    Strategy/control axes normalize spelling (``"c3:cubic_c=2e-4"`` →
    ``"C3:gamma=0.0002"``); duplicates after canonicalization are rejected
    because they would silently halve the search space.
    """
    probe = SweepSpec(base=base, grid={axis: tuple(candidates)}, seeds=(0,))
    canonical = probe.grid[axis]
    if len(set(canonical)) != len(canonical):
        duplicates = sorted({c for c in canonical if canonical.count(c) > 1})
        raise ValueError(f"duplicate candidates after canonicalization: {duplicates}")
    return canonical


def _rank(survivors: Sequence[Any], scores: dict[Any, float], minimize: bool) -> list[Any]:
    """Survivors ordered best-first; ties break by candidate position."""
    sign = 1.0 if minimize else -1.0
    order = sorted(range(len(survivors)), key=lambda j: (sign * scores[survivors[j]], j))
    return [survivors[j] for j in order]


def successive_halving(
    base: SimulationConfig,
    axis: str,
    candidates: Sequence[Any],
    seeds: Sequence[int],
    metric: str = "p999",
    eta: int = 2,
    min_seeds: int = 1,
    minimize: bool = True,
    runner: SweepRunner | None = None,
) -> SearchResult:
    """Find the ``metric``-optimal value of ``axis`` by successive halving.

    Each rung is one :class:`SweepSpec` run through ``runner`` (serial, no
    cache, if omitted); a candidate's rung score is the mean of ``metric``
    across the rung's seeds.  The final rung runs every remaining candidate
    at the full seed set, so the returned ``best`` is never worse (on the
    full-seed score) than any other candidate evaluated at full
    replication — the invariant the property suite pins.
    """
    if metric not in AGGREGATE_METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose one of {', '.join(AGGREGATE_METRICS)}")
    runner = runner or SweepRunner(max_workers=1, parallel=False)
    canonical = _canonical_candidates(base, axis, candidates)
    seeds = tuple(int(s) for s in seeds)
    schedule = rung_schedule(len(canonical), len(seeds), eta, min_seeds)

    survivors: list[Any] = list(canonical)
    rungs: list[RungResult] = []
    full_scores: dict[Any, float] = {}
    executed = cached = 0
    wall = 0.0
    for i, (n, r) in enumerate(schedule):
        assert len(survivors) == n
        rung_seeds = seeds[:r]
        spec = SweepSpec(base=base, grid={axis: tuple(survivors)}, seeds=rung_seeds)
        result = runner.run(spec)
        scores = {point.params[axis]: point.metrics[metric].mean for point in result.aggregates()}
        promoted_count = 1 if i == len(schedule) - 1 else schedule[i + 1][0]
        promoted = _rank(survivors, scores, minimize)[:promoted_count]
        rungs.append(
            RungResult(
                rung=i,
                candidates=tuple(survivors),
                seeds=rung_seeds,
                scores=scores,
                executed=result.executed,
                cached=result.cached,
                promoted=tuple(promoted),
            )
        )
        executed += result.executed
        cached += result.cached
        wall += result.wall_time_s
        if r == len(seeds):
            # Any rung that happened to run at full replication contributes
            # to the "configs actually evaluated" set the winner must beat.
            full_scores.update(scores)
        survivors = promoted

    best = survivors[0]
    return SearchResult(
        axis=axis,
        metric=metric,
        minimize=minimize,
        eta=eta,
        best=best,
        best_score=full_scores[best],
        best_digest=candidate_digest(axis, best),
        full_scores=full_scores,
        rungs=rungs,
        executed=executed,
        cached=cached,
        dense_trials=len(canonical) * len(seeds),
        wall_time_s=wall,
    )


def dense_argmin(
    base: SimulationConfig,
    axis: str,
    candidates: Sequence[Any],
    seeds: Sequence[int],
    metric: str = "p999",
    minimize: bool = True,
    runner: SweepRunner | None = None,
) -> tuple[Any, float, str, int]:
    """The dense-grid reference: every candidate × every seed, argmin'd.

    Returns ``(best candidate, score, candidate digest, executed trials)``
    — the comparison target for a search's ≤ X% budget claim.  Sharing the
    search's runner (and so its cache) makes the dense pass reuse every
    trial the search already executed.
    """
    if metric not in AGGREGATE_METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose one of {', '.join(AGGREGATE_METRICS)}")
    runner = runner or SweepRunner(max_workers=1, parallel=False)
    canonical = _canonical_candidates(base, axis, candidates)
    spec = SweepSpec(base=base, grid={axis: canonical}, seeds=tuple(int(s) for s in seeds))
    result = runner.run(spec)
    scores = {point.params[axis]: point.metrics[metric].mean for point in result.aggregates()}
    best = _rank(list(canonical), scores, minimize)[0]
    return best, scores[best], candidate_digest(axis, best), result.executed
