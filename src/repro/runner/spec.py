"""Sweep specifications: a cartesian parameter grid replicated across seeds.

A :class:`SweepSpec` names a base :class:`~repro.simulator.SimulationConfig`,
a grid of field overrides (``{"strategy": ("C3", "LOR"), "utilization":
(0.45, 0.7), "scenario": ("baseline", "gc-storm")}``) and a tuple of seeds.
Scenario names (and ``scenario_params``) are ordinary config fields, so
fault-injection scenarios sweep, hash and cache exactly like any other
dimension — changing only the scenario produces a different trial key.
The same holds for ``metrics_mode``: ``{"metrics_mode": ("exact",
"streaming")}`` grids the collector mode, and exact/streaming trials of an
otherwise identical config hash to different cache keys.  Expanding the spec yields one
:class:`TrialSpec` per (grid point × seed), each with a fully resolved
config and a content hash that keys the result cache: any change to any
config field — including the seed — produces a different key, while an
identical spec re-hashes to identical keys and is served from cache.

Seeding is deterministic and transparent: trial ``(point, seed)`` simply
runs the resolved config with ``config.seed = seed``.  Using the *same*
seed set for every grid point is intentional — common random numbers make
cross-strategy comparisons sharper at equal replicate counts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..controls import ControlSpec
from ..core.config import C3Config
from ..simulator import DemandSkew, SimulationConfig
from ..strategies import StrategySpec

__all__ = [
    "SweepSpec",
    "TrialSpec",
    "canonical_json",
    "config_to_payload",
    "content_hash",
    "payload_to_config",
    "seed_range",
]

#: SimulationConfig field names a grid may override (everything but ``seed``,
#: which is owned by the spec's ``seeds`` axis).
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(SimulationConfig))


def _jsonify(value: Any) -> Any:
    """Convert ``value`` into a JSON-serializable equivalent.

    Dataclasses (``DemandSkew``, ``C3Config``) become dicts, tuples become
    lists; a :class:`StrategySpec` becomes its canonical string (the same
    form ``SimulationConfig`` stores, so both spellings hash identically);
    anything json can't express raises so cache keys never silently
    depend on ``repr`` formatting.
    """
    if isinstance(value, (StrategySpec, ControlSpec)):
        return value.canonical()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonify(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _jsonify(value.item())
    raise TypeError(f"cannot serialize {value!r} ({type(value).__name__}) into a sweep payload")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, jsonified values."""
    return json.dumps(_jsonify(obj), sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any) -> str:
    """sha256 over the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def config_to_payload(config: SimulationConfig) -> dict:
    """A JSON-serializable dict capturing every field of ``config``.

    The *default* control specs — the ``"binary"`` failure detector,
    ``hedging=None``, the ``"object"`` kernel and the ``"v1"`` RNG
    regime — are omitted from the payload, so configs predating those
    axes keep byte-identical payloads
    (and therefore cache keys and pinned payload hashes);
    :func:`payload_to_config` restores the defaults on reconstruction.
    Non-default values are included and produce distinct cache keys.  Note
    the ``kernel`` consequence: object and batched runs of the same config
    cache separately even though their exact-mode results are
    digest-identical — the axis exists precisely so a digest mismatch could
    be traced to the kernel that produced it.
    """
    payload = {f.name: _jsonify(getattr(config, f.name)) for f in dataclasses.fields(config)}
    if payload.get("failure_detector") == "binary":
        del payload["failure_detector"]
    if payload.get("hedging") is None:
        del payload["hedging"]
    if payload.get("kernel") == "object":
        del payload["kernel"]
    # rng="block" is a different digest domain, so it must cache separately;
    # the "v1" default is omitted to keep pre-existing cache keys intact.
    if payload.get("rng") == "v1":
        del payload["rng"]
    return payload


def payload_to_config(payload: Mapping[str, Any]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_payload` output.

    This is what pool workers use: payloads cross the process boundary as
    plain dicts, so the worker owns the reconstruction.
    """
    params = dict(payload)
    if params.get("demand_skew") is not None:
        params["demand_skew"] = DemandSkew(**params["demand_skew"])
    if params.get("c3_config") is not None:
        params["c3_config"] = C3Config(**params["c3_config"])
    for name in ("num_servers", "replication_factor", "num_clients", "num_requests",
                 "server_concurrency", "seed", "record_size"):
        if params.get(name) is not None:
            params[name] = int(params[name])
    return SimulationConfig(**params)


def seed_range(num_seeds: int, base_seed: int = 0) -> tuple[int, ...]:
    """The deterministic seed set ``base_seed .. base_seed + num_seeds - 1``."""
    if num_seeds < 1:
        raise ValueError(f"num_seeds must be >= 1, got {num_seeds}")
    if base_seed < 0:
        # numpy's default_rng rejects negative seeds, but only deep inside a
        # (possibly pooled) trial; fail here with an actionable message.
        raise ValueError(f"base_seed must be >= 0, got {base_seed}")
    return tuple(range(base_seed, base_seed + num_seeds))


@dataclass(frozen=True)
class TrialSpec:
    """One fully resolved trial: a grid point × one seed.

    Attributes
    ----------
    index:
        Position in the spec's expansion order (grid-point major, seed minor);
        used to restore deterministic result ordering after parallel execution.
    params:
        The grid overrides of this trial's grid point, jsonified.
    seed:
        The trial's seed (already applied to ``config``).
    config:
        The resolved simulation configuration.
    """

    index: int
    params: dict
    seed: int
    config: SimulationConfig

    @property
    def key(self) -> str:
        """Content hash of the resolved config — the trial's cache key."""
        return content_hash(config_to_payload(self.config))


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian parameter grid × N seeds over a base config.

    ``grid`` maps :class:`SimulationConfig` field names to the values to
    sweep; insertion order defines expansion order (first key is the
    outermost loop).  ``seeds`` replicates every grid point.
    """

    base: SimulationConfig = field(default_factory=SimulationConfig)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)

    def __post_init__(self) -> None:
        for name, values in dict(self.grid).items():
            if isinstance(values, (str, bytes)):
                raise ValueError(
                    f"grid dimension {name!r} must be a sequence of values, not a bare "
                    f"string ({values!r}); write {name!r}: ({values!r},) for a single value"
                )
        normalized_grid = {str(k): tuple(v) for k, v in dict(self.grid).items()}
        if "strategy" in normalized_grid:
            # Canonicalize strategy specs up front: grid values may be bare
            # names, spec strings, mappings, or StrategySpec objects, and
            # unknown strategies/params should fail at spec construction
            # (with the registry's did-you-mean error), not mid-sweep.
            normalized_grid["strategy"] = tuple(
                StrategySpec.parse(value).canonical()
                for value in normalized_grid["strategy"]
            )
        # Control axes canonicalize the same way (a hedging axis may include
        # None, meaning "no hedging" for that grid point).
        if "failure_detector" in normalized_grid:
            normalized_grid["failure_detector"] = tuple(
                ControlSpec.parse(value, kind="detector").canonical()
                for value in normalized_grid["failure_detector"]
            )
        if "hedging" in normalized_grid:
            normalized_grid["hedging"] = tuple(
                None if value is None else ControlSpec.parse(value, kind="hedge").canonical()
                for value in normalized_grid["hedging"]
            )
        for name, values in normalized_grid.items():
            if name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"unknown SimulationConfig field {name!r} in sweep grid; "
                    f"valid fields: {', '.join(sorted(_CONFIG_FIELDS))}"
                )
            if name == "seed":
                raise ValueError("sweep the 'seeds' axis, not a 'seed' grid dimension")
            if not values:
                raise ValueError(f"grid dimension {name!r} has no values")
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("a sweep needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"duplicate seeds in {seeds}")
        object.__setattr__(self, "grid", normalized_grid)
        object.__setattr__(self, "seeds", seeds)

    # ------------------------------------------------------------- expansion
    def grid_points(self) -> list[dict]:
        """Every grid point as an override dict, in expansion order."""
        if not self.grid:
            return [{}]
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[name] for name in names))
        ]

    def trials(self) -> list[TrialSpec]:
        """Expand into resolved trials: grid-point major, seed minor."""
        trials: list[TrialSpec] = []
        for point in self.grid_points():
            for seed in self.seeds:
                trials.append(
                    TrialSpec(
                        index=len(trials),
                        params={k: _jsonify(v) for k, v in point.items()},
                        seed=seed,
                        config=self.base.copy(**point, seed=seed),
                    )
                )
        return trials

    @property
    def num_grid_points(self) -> int:
        """Number of distinct configurations (grid points)."""
        points = 1
        for values in self.grid.values():
            points *= len(values)
        return points

    @property
    def num_trials(self) -> int:
        """Total trials: grid points × seeds."""
        return self.num_grid_points * len(self.seeds)

    @property
    def key(self) -> str:
        """Content hash of the whole spec (base config + grid + seeds)."""
        return content_hash(
            {
                "base": config_to_payload(self.base),
                "grid": {k: list(v) for k, v in self.grid.items()},
                "seeds": list(self.seeds),
            }
        )

    def describe(self) -> str:
        """One-line human description of the sweep's shape."""
        dims = " × ".join(f"{len(v)} {k}" for k, v in self.grid.items()) or "1 config"
        return f"{dims} × {len(self.seeds)} seeds = {self.num_trials} trials"
