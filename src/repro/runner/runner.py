"""The process-pool sweep runner.

:class:`SweepRunner` executes every trial of a :class:`~repro.runner.SweepSpec`
— in a :class:`~concurrent.futures.ProcessPoolExecutor` by default, serially
on request — with per-trial result caching keyed by the trial's config
content hash.

Determinism: a trial's outcome is a pure function of its resolved
``SimulationConfig`` (every random stream in the simulator derives from
``config.seed``), so execution order, worker count, and serial-vs-pool mode
cannot change results.  The runner additionally restores spec expansion
order when collecting parallel completions, so ``SweepResult.trials`` is
stable too.  The determinism regression suite asserts both properties via
:meth:`~repro.simulator.metrics.SimulationResult.digest`.

Only config payloads (plain dicts) and trial-summary dicts cross the process
boundary; workers rebuild the config themselves, which keeps the pickled
payloads tiny and spawn-start-method safe.  Streaming-mode trials return
their latency histograms inside the summary dict as serialized bucket maps
(O(buckets), not O(requests)), so even million-request trials ship
kilobytes between processes.

Resumable execution: ``run(spec, checkpoint=..., max_trials=...)`` threads a
:class:`~repro.runner.checkpoint.SweepCheckpoint` through the run.  Each
trial is cached *then* marked complete as it finishes (completion order, not
batch order), so an interrupt at any point — including ``SIGKILL`` mid-pool —
leaves a manifest from which the next run continues with zero re-executed
trials; ``max_trials`` bounds how many cache misses one invocation may
execute, turning the same mechanism into deliberate budget slicing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Sequence

from ..simulator.simulation import run_simulation
from .cache import TrialCache
from .checkpoint import CheckpointMismatch, SweepCheckpoint
from .results import SweepResult, TrialResult
from .spec import SweepSpec, TrialSpec, config_to_payload, payload_to_config

__all__ = ["SweepRunner", "execute_trial"]


def execute_trial(job: dict) -> dict:
    """Run one trial from its wire payload; module-level so pools can pickle it.

    ``job`` carries ``{"index", "key", "params", "seed", "config"}`` where
    ``config`` is :func:`~repro.runner.spec.config_to_payload` output; the
    return value is ``{"index", "trial"}`` with a
    :meth:`~repro.runner.results.TrialResult.to_dict` payload.
    """
    config = payload_to_config(job["config"])
    started = time.perf_counter()
    result = run_simulation(config)
    wall = time.perf_counter() - started
    trial = TrialSpec(index=job["index"], params=job["params"], seed=job["seed"], config=config)
    payload = TrialResult.from_simulation(trial, result, wall).to_dict()
    # Record the key the scheduler looked up, not one recomputed from the
    # round-tripped config: payload_to_config normalizes types (e.g. float
    # 40.0 → int 40), and a key drift here would make cache writes land
    # under a key that is never read back.
    payload["key"] = job["key"]
    return {"index": job["index"], "trial": payload}


class SweepRunner:
    """Executes sweep specs with caching and optional process-pool fan-out.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.  ``1`` degenerates
        to serial in-process execution (no pool is created).
    cache_dir:
        Root of the per-trial result cache; ``None`` disables caching.
    parallel:
        ``False`` forces serial in-process execution regardless of
        ``max_workers`` (useful for debugging and determinism baselines).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        parallel: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.cache = TrialCache(cache_dir) if cache_dir is not None else None
        self.parallel = parallel

    # ---------------------------------------------------------------- running
    def run(
        self,
        spec: SweepSpec,
        checkpoint: SweepCheckpoint | None = None,
        max_trials: int | None = None,
    ) -> SweepResult:
        """Execute (or fetch from cache) every trial of ``spec``.

        With a ``checkpoint``, completion state is persisted incrementally
        (cache write first, then the completion mark — the manifest can
        trail the cache but never lead it).  ``max_trials`` caps how many
        cache *misses* this invocation executes; deferred trials stay
        pending in the checkpoint and the returned result is partial
        (``result.complete`` is False, ``result.trials`` holds the
        completed prefix-by-expansion-order subset only).
        """
        if max_trials is not None and max_trials < 0:
            raise ValueError("max_trials must be >= 0")
        if checkpoint is not None and checkpoint.spec_key != spec.key:
            raise CheckpointMismatch(
                f"checkpoint {checkpoint.path} tracks sweep {checkpoint.spec_key[:12]}, "
                f"not {spec.key[:12]} ({spec.describe()})"
            )
        started = time.perf_counter()
        trials = spec.trials()
        slots: list[TrialResult | None] = [None] * len(trials)
        pending: list[tuple[TrialSpec, str]] = []

        for trial in trials:
            key = trial.key
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                try:
                    slots[trial.index] = TrialResult.from_dict(cached, from_cache=True)
                except TypeError:
                    # Schema drift (an entry written by an older TrialResult
                    # layout) behaves like corruption: a miss, re-executed
                    # and overwritten.
                    slots[trial.index] = None
            if slots[trial.index] is None:
                pending.append((trial, key))
        if checkpoint is not None:
            # Cache hits are completed by definition; one batched mark keeps
            # the manifest write count proportional to executions, not size.
            checkpoint.mark_completed(
                *(i for i, slot in enumerate(slots) if slot is not None)
            )

        deferred = 0
        if max_trials is not None and len(pending) > max_trials:
            deferred = len(pending) - max_trials
            pending = pending[:max_trials]

        def on_result(index: int, payload: dict) -> None:
            result = TrialResult.from_dict(payload)
            slots[index] = result
            if self.cache is not None:
                self.cache.put(result.key, payload)
            if checkpoint is not None:
                # Marked only after the cache write above has been replaced
                # into place, so a kill between the two re-executes (safe)
                # rather than skipping (wrong).
                checkpoint.mark_completed(index)

        self._execute(pending, on_result)

        completed = [slot for slot in slots if slot is not None]
        assert len(completed) == len(trials) - deferred
        return SweepResult(
            spec_key=spec.key,
            trials=completed,
            executed=len(pending),
            cached=len(trials) - len(pending) - deferred,
            wall_time_s=time.perf_counter() - started,
            total_trials=len(trials),
        )

    def _execute(
        self,
        pending: Sequence[tuple[TrialSpec, str]],
        on_result: Callable[[int, dict], None],
    ) -> None:
        """Run the cache misses, serially or through the pool.

        ``on_result`` fires once per trial *as it completes* (completion
        order under the pool), which is what makes checkpoint marks and
        cache writes incremental rather than end-of-batch.
        """
        jobs = [
            {
                "index": trial.index,
                "key": key,
                "params": trial.params,
                "seed": trial.seed,
                "config": config_to_payload(trial.config),
            }
            for trial, key in pending
        ]
        if not jobs:
            return
        if not self.parallel or self.max_workers == 1 or len(jobs) == 1:
            for job in jobs:
                out = execute_trial(job)
                on_result(out["index"], out["trial"])
            return
        workers = min(self.max_workers, len(jobs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_trial, job) for job in jobs}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    out = future.result()
                    on_result(out["index"], out["trial"])
