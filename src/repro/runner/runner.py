"""The process-pool sweep runner.

:class:`SweepRunner` executes every trial of a :class:`~repro.runner.SweepSpec`
— in a :class:`~concurrent.futures.ProcessPoolExecutor` by default, serially
on request — with per-trial result caching keyed by the trial's config
content hash.

Determinism: a trial's outcome is a pure function of its resolved
``SimulationConfig`` (every random stream in the simulator derives from
``config.seed``), so execution order, worker count, and serial-vs-pool mode
cannot change results.  The runner additionally restores spec expansion
order when collecting parallel completions, so ``SweepResult.trials`` is
stable too.  The determinism regression suite asserts both properties via
:meth:`~repro.simulator.metrics.SimulationResult.digest`.

Only config payloads (plain dicts) and trial-summary dicts cross the process
boundary; workers rebuild the config themselves, which keeps the pickled
payloads tiny and spawn-start-method safe.  Streaming-mode trials return
their latency histograms inside the summary dict as serialized bucket maps
(O(buckets), not O(requests)), so even million-request trials ship
kilobytes between processes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..simulator.simulation import run_simulation
from .cache import TrialCache
from .results import SweepResult, TrialResult
from .spec import SweepSpec, TrialSpec, config_to_payload, payload_to_config

__all__ = ["SweepRunner", "execute_trial"]


def execute_trial(job: dict) -> dict:
    """Run one trial from its wire payload; module-level so pools can pickle it.

    ``job`` carries ``{"index", "key", "params", "seed", "config"}`` where
    ``config`` is :func:`~repro.runner.spec.config_to_payload` output; the
    return value is ``{"index", "trial"}`` with a
    :meth:`~repro.runner.results.TrialResult.to_dict` payload.
    """
    config = payload_to_config(job["config"])
    started = time.perf_counter()
    result = run_simulation(config)
    wall = time.perf_counter() - started
    trial = TrialSpec(index=job["index"], params=job["params"], seed=job["seed"], config=config)
    payload = TrialResult.from_simulation(trial, result, wall).to_dict()
    # Record the key the scheduler looked up, not one recomputed from the
    # round-tripped config: payload_to_config normalizes types (e.g. float
    # 40.0 → int 40), and a key drift here would make cache writes land
    # under a key that is never read back.
    payload["key"] = job["key"]
    return {"index": job["index"], "trial": payload}


class SweepRunner:
    """Executes sweep specs with caching and optional process-pool fan-out.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.  ``1`` degenerates
        to serial in-process execution (no pool is created).
    cache_dir:
        Root of the per-trial result cache; ``None`` disables caching.
    parallel:
        ``False`` forces serial in-process execution regardless of
        ``max_workers`` (useful for debugging and determinism baselines).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        parallel: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.cache = TrialCache(cache_dir) if cache_dir is not None else None
        self.parallel = parallel

    # ---------------------------------------------------------------- running
    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute (or fetch from cache) every trial of ``spec``."""
        started = time.perf_counter()
        trials = spec.trials()
        slots: list[TrialResult | None] = [None] * len(trials)
        pending: list[tuple[TrialSpec, str]] = []

        for trial in trials:
            key = trial.key
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                try:
                    slots[trial.index] = TrialResult.from_dict(cached, from_cache=True)
                except TypeError:
                    # Schema drift (an entry written by an older TrialResult
                    # layout) behaves like corruption: a miss, re-executed
                    # and overwritten.
                    slots[trial.index] = None
            if slots[trial.index] is None:
                pending.append((trial, key))

        for index, payload in self._execute(pending):
            result = TrialResult.from_dict(payload)
            slots[index] = result
            if self.cache is not None:
                self.cache.put(result.key, payload)

        assert all(slot is not None for slot in slots)
        return SweepResult(
            spec_key=spec.key,
            trials=list(slots),  # type: ignore[arg-type]
            executed=len(pending),
            cached=len(trials) - len(pending),
            wall_time_s=time.perf_counter() - started,
        )

    def _execute(self, pending: Sequence[tuple[TrialSpec, str]]) -> list[tuple[int, dict]]:
        """Run the cache misses, serially or through the pool."""
        jobs = [
            {
                "index": trial.index,
                "key": key,
                "params": trial.params,
                "seed": trial.seed,
                "config": config_to_payload(trial.config),
            }
            for trial, key in pending
        ]
        if not jobs:
            return []
        if not self.parallel or self.max_workers == 1 or len(jobs) == 1:
            outputs = [execute_trial(job) for job in jobs]
        else:
            workers = min(self.max_workers, len(jobs))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outputs = list(pool.map(execute_trial, jobs))
        return [(out["index"], out["trial"]) for out in outputs]
