"""Parallel multi-seed sweep runner for the §6 evaluation.

This package is the substrate for scaling the paper's evaluation beyond
one-seed, one-process runs:

* :class:`SweepSpec` — a cartesian parameter grid over
  :class:`~repro.simulator.SimulationConfig` fields, replicated across N
  seeds with deterministic per-trial seeding.
* :class:`SweepRunner` — executes trials through a process pool (or
  serially), with per-trial JSON result caching keyed by a content hash of
  the resolved config: re-running an identical spec is served entirely from
  cache, and changing *any* parameter invalidates exactly the affected
  trials.
* :class:`SweepResult` / :func:`aggregate_trials` — reduce seed replicates
  into per-grid-point means with confidence intervals for mean/median/p95/
  p99/p99.9 latency and throughput.

Worked example — compare three strategies at two utilizations, five seeds
each, in parallel, with a persistent cache::

    from repro.runner import SweepRunner, SweepSpec, seed_range
    from repro.simulator import SimulationConfig

    spec = SweepSpec(
        base=SimulationConfig(num_servers=10, num_clients=40, num_requests=5_000),
        grid={
            "strategy": ("C3", "LOR", "RR"),
            "utilization": (0.45, 0.7),
        },
        seeds=seed_range(5),          # seeds 0..4, same set per grid point
    )
    runner = SweepRunner(max_workers=4, cache_dir="sweep-cache")

    result = runner.run(spec)          # 3 × 2 × 5 = 30 trials, pooled
    assert result.executed == 30 and result.cached == 0

    for point in result.aggregates():  # one row per grid point
        p99 = point.metrics["p99"]     # ConfidenceInterval
        print(point.params["strategy"], point.params["utilization"],
              f"p99 = {p99.mean:.1f} ± {p99.halfwidth:.1f} ms (n={point.n})")

    rerun = runner.run(spec)           # identical spec ⇒ pure cache hits
    assert rerun.executed == 0 and rerun.cached == 30
    assert rerun.trial_digests() == result.trial_digests()

The same machinery backs the ``c3-repro sweep`` CLI command and (via
:func:`repro.experiments.common.sweep_flat`) the multi-seed figure
experiments, so serial, pooled, CLI and experiment execution paths all
produce byte-identical measurements for a given spec.
"""

from .cache import TrialCache
from .checkpoint import CheckpointMismatch, SweepCheckpoint, checkpoint_path_for
from .results import GridPointAggregate, SweepResult, TrialResult, aggregate_trials
from .runner import SweepRunner, execute_trial
from .search import (
    RungResult,
    SearchResult,
    candidate_digest,
    dense_argmin,
    rung_schedule,
    successive_halving,
)
from .spec import (
    SweepSpec,
    TrialSpec,
    canonical_json,
    config_to_payload,
    content_hash,
    payload_to_config,
    seed_range,
)

__all__ = [
    "CheckpointMismatch",
    "GridPointAggregate",
    "RungResult",
    "SearchResult",
    "SweepCheckpoint",
    "SweepRunner",
    "SweepResult",
    "SweepSpec",
    "TrialCache",
    "TrialResult",
    "TrialSpec",
    "aggregate_trials",
    "candidate_digest",
    "canonical_json",
    "checkpoint_path_for",
    "config_to_payload",
    "content_hash",
    "dense_argmin",
    "execute_trial",
    "payload_to_config",
    "rung_schedule",
    "seed_range",
    "successive_halving",
]
