"""On-disk JSON cache of trial results, keyed by config content hash.

Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps directory
listings manageable for large sweeps).  Writes are atomic — a temp file in
the same directory followed by ``os.replace`` — so a crashed or parallel
writer can never leave a half-written entry; corrupt or unreadable entries
behave as misses and are overwritten by the next run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["TrialCache"]


class TrialCache:
    """A content-addressed store of per-trial result payloads."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
