"""Per-trial summaries and their reduction into per-grid-point aggregates.

A :class:`TrialResult` is the JSON-serializable distillation of one
:class:`~repro.simulator.metrics.SimulationResult`: the latency summary, the
throughput, the bookkeeping counters, and a content digest of the full
measurement (so determinism can be asserted across serial and process-pool
execution without shipping latency arrays between processes).

:func:`aggregate_trials` groups replicated trials by grid point and reduces
each metric across seeds into a mean with a confidence interval
(:mod:`repro.analysis.aggregate`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..analysis.aggregate import ConfidenceInterval, aggregate_metric_samples
from .spec import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..simulator.metrics import SimulationResult
    from .spec import TrialSpec

__all__ = ["TrialResult", "GridPointAggregate", "SweepResult", "aggregate_trials"]

#: Metrics reduced across seeds, in report-column order.
AGGREGATE_METRICS = ("mean", "median", "p95", "p99", "p999", "throughput_rps")


@dataclass(frozen=True)
class TrialResult:
    """The persisted summary of one executed trial."""

    params: dict
    seed: int
    strategy: str
    key: str
    summary: dict
    throughput_rps: float
    completed_requests: int
    issued_requests: int
    duplicate_requests: int
    backpressure_events: int
    duration_ms: float
    result_digest: str
    wall_time_s: float
    from_cache: bool = False

    @classmethod
    def from_simulation(
        cls, trial: "TrialSpec", result: "SimulationResult", wall_time_s: float
    ) -> "TrialResult":
        """Distill a full simulation result into its persisted summary."""
        return cls(
            params=dict(trial.params),
            seed=trial.seed,
            strategy=result.strategy or trial.config.strategy,
            key=trial.key,
            summary=result.summary.as_dict(),
            throughput_rps=result.throughput_rps,
            completed_requests=result.completed_requests,
            issued_requests=result.issued_requests,
            duplicate_requests=result.duplicate_requests,
            backpressure_events=result.backpressure_events,
            duration_ms=result.duration_ms,
            result_digest=result.digest(),
            wall_time_s=wall_time_s,
        )

    def metric(self, name: str) -> float:
        """One aggregatable metric value (summary stat or throughput)."""
        if name == "throughput_rps":
            return float(self.throughput_rps)
        if name == "p999":
            return float(self.summary["p99.9"])
        return float(self.summary[name])

    def to_dict(self) -> dict:
        """JSON-serializable view (``from_cache`` is runtime state, excluded)."""
        return {
            "params": self.params,
            "seed": self.seed,
            "strategy": self.strategy,
            "key": self.key,
            "summary": self.summary,
            "throughput_rps": self.throughput_rps,
            "completed_requests": self.completed_requests,
            "issued_requests": self.issued_requests,
            "duplicate_requests": self.duplicate_requests,
            "backpressure_events": self.backpressure_events,
            "duration_ms": self.duration_ms,
            "result_digest": self.result_digest,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "TrialResult":
        """Rebuild from :meth:`to_dict` output (e.g. a cache entry)."""
        return cls(from_cache=from_cache, **payload)


@dataclass(frozen=True)
class GridPointAggregate:
    """One grid point's metrics reduced across its seed replicates."""

    params: dict
    n: int
    seeds: tuple[int, ...]
    metrics: dict[str, ConfidenceInterval]

    def to_dict(self) -> dict:
        return {
            "params": self.params,
            "n": self.n,
            "seeds": list(self.seeds),
            "metrics": {name: ci.as_dict() for name, ci in self.metrics.items()},
        }


def aggregate_trials(
    trials: Iterable[TrialResult], confidence: float = 0.95
) -> list[GridPointAggregate]:
    """Group trials by grid point and reduce each metric across seeds.

    Grid points appear in first-seen order, which for runner output matches
    the spec's expansion order regardless of parallel completion order.
    """
    groups: dict[str, list[TrialResult]] = {}
    for trial in trials:
        groups.setdefault(canonical_json(trial.params), []).append(trial)
    aggregates = []
    for members in groups.values():
        samples = {name: [t.metric(name) for t in members] for name in AGGREGATE_METRICS}
        aggregates.append(
            GridPointAggregate(
                params=dict(members[0].params),
                n=len(members),
                seeds=tuple(t.seed for t in members),
                metrics=aggregate_metric_samples(samples, confidence),
            )
        )
    return aggregates


@dataclass
class SweepResult:
    """Everything one :class:`~repro.runner.SweepRunner.run` produced."""

    spec_key: str
    trials: list[TrialResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    wall_time_s: float = 0.0

    def aggregates(self, confidence: float = 0.95) -> list[GridPointAggregate]:
        """Per-grid-point reductions across seeds (spec expansion order)."""
        return aggregate_trials(self.trials, confidence)

    def trial_digests(self) -> list[str]:
        """The measurement digests in expansion order (determinism checks)."""
        return [t.result_digest for t in self.trials]

    def to_dict(self) -> dict:
        return {
            "spec_key": self.spec_key,
            "executed": self.executed,
            "cached": self.cached,
            "wall_time_s": self.wall_time_s,
            "trials": [t.to_dict() for t in self.trials],
            "aggregates": [a.to_dict() for a in self.aggregates()],
        }

    def save(self, path: str | Path) -> Path:
        """Persist the sweep (trials + aggregates) as a JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`save` output."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            spec_key=payload["spec_key"],
            trials=[TrialResult.from_dict(t) for t in payload["trials"]],
            executed=payload["executed"],
            cached=payload["cached"],
            wall_time_s=payload["wall_time_s"],
        )
