"""Per-trial summaries and their reduction into per-grid-point aggregates.

A :class:`TrialResult` is the JSON-serializable distillation of one
:class:`~repro.simulator.metrics.SimulationResult`: the latency summary, the
throughput, the bookkeeping counters, and a content digest of the full
measurement (so determinism can be asserted across serial and process-pool
execution without shipping latency arrays between processes).

:func:`aggregate_trials` groups replicated trials by grid point and reduces
each metric across seeds into a mean with a confidence interval
(:mod:`repro.analysis.aggregate`).

Streaming-mode trials (``metrics_mode="streaming"``) also carry their
serialized latency histograms; aggregation then *additionally* pools the
replicates by bucket-wise histogram merge, yielding union-of-samples
percentiles per grid point without ever concatenating raw latency arrays —
the scale-mode replacement for mean-of-per-seed-percentiles when a single
pooled distribution is wanted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..analysis.aggregate import (
    ConfidenceInterval,
    aggregate_metric_samples,
    pooled_histogram_summary,
)
from .spec import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..simulator.metrics import SimulationResult
    from .spec import TrialSpec

__all__ = ["TrialResult", "GridPointAggregate", "SweepResult", "aggregate_trials"]

#: Metrics reduced across seeds, in report-column order.
AGGREGATE_METRICS = ("mean", "median", "p95", "p99", "p999", "throughput_rps")


@dataclass(frozen=True)
class TrialResult:
    """The persisted summary of one executed trial."""

    params: dict
    seed: int
    strategy: str
    key: str
    summary: dict
    throughput_rps: float
    completed_requests: int
    issued_requests: int
    duplicate_requests: int
    backpressure_events: int
    duration_ms: float
    result_digest: str
    wall_time_s: float
    from_cache: bool = False
    metrics_mode: str = "exact"
    histograms: dict | None = None

    @classmethod
    def from_simulation(
        cls, trial: "TrialSpec", result: "SimulationResult", wall_time_s: float
    ) -> "TrialResult":
        """Distill a full simulation result into its persisted summary.

        Streaming-mode results keep their latency histograms (serialized,
        JSON-safe) so downstream aggregation can pool replicates by
        bucket-merge; exact-mode results carry none (``histograms=None``).
        """
        histograms = None
        if result.metrics_mode == "streaming" and result.latency_histogram is not None:
            histograms = {
                "all": result.latency_histogram.to_dict(),
                "read": (
                    result.read_latency_histogram.to_dict()
                    if result.read_latency_histogram is not None
                    else None
                ),
                "write": (
                    result.write_latency_histogram.to_dict()
                    if result.write_latency_histogram is not None
                    else None
                ),
            }
        return cls(
            params=dict(trial.params),
            seed=trial.seed,
            strategy=result.strategy or trial.config.strategy,
            key=trial.key,
            summary=result.summary.as_dict(),
            throughput_rps=result.throughput_rps,
            completed_requests=result.completed_requests,
            issued_requests=result.issued_requests,
            duplicate_requests=result.duplicate_requests,
            backpressure_events=result.backpressure_events,
            duration_ms=result.duration_ms,
            result_digest=result.digest(),
            wall_time_s=wall_time_s,
            metrics_mode=result.metrics_mode,
            histograms=histograms,
        )

    def metric(self, name: str) -> float:
        """One aggregatable metric value (summary stat or throughput)."""
        if name == "throughput_rps":
            return float(self.throughput_rps)
        if name == "p999":
            return float(self.summary["p99.9"])
        return float(self.summary[name])

    def to_dict(self) -> dict:
        """JSON-serializable view (``from_cache`` is runtime state, excluded)."""
        return {
            "params": self.params,
            "seed": self.seed,
            "strategy": self.strategy,
            "key": self.key,
            "summary": self.summary,
            "throughput_rps": self.throughput_rps,
            "completed_requests": self.completed_requests,
            "issued_requests": self.issued_requests,
            "duplicate_requests": self.duplicate_requests,
            "backpressure_events": self.backpressure_events,
            "duration_ms": self.duration_ms,
            "result_digest": self.result_digest,
            "wall_time_s": self.wall_time_s,
            "metrics_mode": self.metrics_mode,
            "histograms": self.histograms,
        }

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "TrialResult":
        """Rebuild from :meth:`to_dict` output (e.g. a cache entry).

        Entries written before streaming mode existed lack the
        ``metrics_mode`` / ``histograms`` keys; they default to exact mode.
        """
        payload = dict(payload)
        payload.setdefault("metrics_mode", "exact")
        payload.setdefault("histograms", None)
        return cls(from_cache=from_cache, **payload)


@dataclass(frozen=True)
class GridPointAggregate:
    """One grid point's metrics reduced across its seed replicates.

    ``pooled`` is the bucket-merged latency summary across the replicates'
    streaming histograms (union-of-samples percentiles at histogram
    resolution); ``None`` for exact-mode trials, which carry no histograms.
    """

    params: dict
    n: int
    seeds: tuple[int, ...]
    metrics: dict[str, ConfidenceInterval]
    pooled: dict | None = None

    def to_dict(self) -> dict:
        return {
            "params": self.params,
            "n": self.n,
            "seeds": list(self.seeds),
            "metrics": {name: ci.as_dict() for name, ci in self.metrics.items()},
            "pooled": self.pooled,
        }


def aggregate_trials(
    trials: Iterable[TrialResult], confidence: float = 0.95
) -> list[GridPointAggregate]:
    """Group trials by grid point and reduce each metric across seeds.

    Grid points appear in first-seen order, which for runner output matches
    the spec's expansion order regardless of parallel completion order.
    """
    groups: dict[str, list[TrialResult]] = {}
    for trial in trials:
        groups.setdefault(canonical_json(trial.params), []).append(trial)
    aggregates = []
    for members in groups.values():
        samples = {name: [t.metric(name) for t in members] for name in AGGREGATE_METRICS}
        payloads = [t.histograms["all"] for t in members if t.histograms is not None]
        pooled = pooled_histogram_summary(payloads) if len(payloads) == len(members) else None
        aggregates.append(
            GridPointAggregate(
                params=dict(members[0].params),
                n=len(members),
                seeds=tuple(t.seed for t in members),
                metrics=aggregate_metric_samples(samples, confidence),
                pooled=pooled,
            )
        )
    return aggregates


@dataclass
class SweepResult:
    """Everything one :class:`~repro.runner.SweepRunner.run` produced.

    ``total_trials`` is the spec's full trial count; a budget-capped
    (``max_trials``) run completes only a subset, leaving ``trials`` shorter
    than ``total_trials`` and :attr:`complete` False.  ``None`` (legacy
    payloads) means "assume complete".
    """

    spec_key: str
    trials: list[TrialResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    wall_time_s: float = 0.0
    total_trials: int | None = None

    @property
    def complete(self) -> bool:
        """Whether every trial of the spec is present."""
        return self.total_trials is None or len(self.trials) == self.total_trials

    def aggregates(self, confidence: float = 0.95) -> list[GridPointAggregate]:
        """Per-grid-point reductions across seeds (spec expansion order)."""
        return aggregate_trials(self.trials, confidence)

    def trial_digests(self) -> list[str]:
        """The measurement digests in expansion order (determinism checks)."""
        return [t.result_digest for t in self.trials]

    def digest(self) -> str:
        """Content hash of the deterministic portion of the result.

        Covers the spec key and, per trial, everything a re-run must
        reproduce: params, seed, cache key, latency summary, counters, and
        the measurement digest.  Excludes wall-clock times and
        executed/cached provenance, so a sweep served from cache — or
        interrupted and resumed across any number of invocations — hashes
        identically to one uninterrupted run of the same spec.
        """
        from .spec import content_hash  # local import to avoid a cycle at load

        stripped = []
        for trial in self.trials:
            payload = trial.to_dict()
            del payload["wall_time_s"]
            stripped.append(payload)
        return content_hash({"spec_key": self.spec_key, "trials": stripped})

    def to_dict(self) -> dict:
        return {
            "spec_key": self.spec_key,
            "executed": self.executed,
            "cached": self.cached,
            "wall_time_s": self.wall_time_s,
            "total_trials": self.total_trials if self.total_trials is not None else len(self.trials),
            "trials": [t.to_dict() for t in self.trials],
            "aggregates": [a.to_dict() for a in self.aggregates()],
        }

    def save(self, path: str | Path) -> Path:
        """Persist the sweep (trials + aggregates) as a JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`save` output."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            spec_key=payload["spec_key"],
            trials=[TrialResult.from_dict(t) for t in payload["trials"]],
            executed=payload["executed"],
            cached=payload["cached"],
            wall_time_s=payload["wall_time_s"],
            total_trials=payload.get("total_trials"),
        )
