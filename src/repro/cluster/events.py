"""Background maintenance events: compactions and GC pauses.

The operators the authors interviewed name periodic SSTable compaction and
garbage collection as the dominant sources of latency spikes (§2.1).  Both
are modelled as per-node background processes:

* a **compaction** raises the node's iowait and multiplies its read service
  times for its duration;
* a **GC pause** stalls request service entirely for a short interval (the
  node keeps accepting requests, they just queue up).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..simulator.engine import EventLoop

__all__ = ["CompactionProcess", "GCPauseProcess"]


class CompactionProcess:
    """Poisson-arriving compactions on each node.

    Parameters
    ----------
    loop:
        Event loop.
    nodes:
        Objects exposing ``begin_compaction()`` / ``end_compaction()``.
    mean_interarrival_ms:
        Mean time between compactions on one node.
    mean_duration_ms:
        Mean compaction duration.
    rng:
        Random generator.
    """

    def __init__(
        self,
        loop: EventLoop,
        nodes: Sequence,
        mean_interarrival_ms: float = 20_000.0,
        mean_duration_ms: float = 2_000.0,
        rng: np.random.Generator | None = None,
        on_event: Callable[[object, float, float], None] | None = None,
    ) -> None:
        if mean_interarrival_ms <= 0 or mean_duration_ms <= 0:
            raise ValueError("durations must be positive")
        self.loop = loop
        self.nodes = list(nodes)
        self.mean_interarrival_ms = float(mean_interarrival_ms)
        self.mean_duration_ms = float(mean_duration_ms)
        self.rng = rng or np.random.default_rng()
        self.on_event = on_event
        self.compactions_started = 0

    def start(self) -> None:
        """Schedule the first compaction on every node."""
        for node in self.nodes:
            self._schedule_next(node)

    def _schedule_next(self, node) -> None:
        gap = float(self.rng.exponential(self.mean_interarrival_ms))
        self.loop.schedule(gap, self._begin, node)

    def _begin(self, node) -> None:
        duration = float(self.rng.exponential(self.mean_duration_ms))
        node.begin_compaction()
        self.compactions_started += 1
        if self.on_event is not None:
            self.on_event(node, self.loop.now, duration)
        self.loop.schedule(duration, self._end, node)

    def _end(self, node) -> None:
        node.end_compaction()
        self._schedule_next(node)


class GCPauseProcess:
    """Poisson-arriving stop-the-world GC pauses on each node.

    During a pause the node's service is stalled: its storage server is
    slowed by a large factor (effectively freezing in-service requests), and
    the pause is short (tens to a couple of hundred milliseconds) but sharp —
    exactly the sub-second fluctuation C3 must absorb.
    """

    def __init__(
        self,
        loop: EventLoop,
        nodes: Sequence,
        mean_interarrival_ms: float = 10_000.0,
        mean_pause_ms: float = 120.0,
        rng: np.random.Generator | None = None,
        on_event: Callable[[object, float, float], None] | None = None,
    ) -> None:
        if mean_interarrival_ms <= 0 or mean_pause_ms <= 0:
            raise ValueError("durations must be positive")
        self.loop = loop
        self.nodes = list(nodes)
        self.mean_interarrival_ms = float(mean_interarrival_ms)
        self.mean_pause_ms = float(mean_pause_ms)
        self.rng = rng or np.random.default_rng()
        self.on_event = on_event
        self.pauses = 0

    def start(self) -> None:
        """Schedule the first pause on every node."""
        for node in self.nodes:
            self._schedule_next(node)

    def _schedule_next(self, node) -> None:
        gap = float(self.rng.exponential(self.mean_interarrival_ms))
        self.loop.schedule(gap, self._begin, node)

    def _begin(self, node) -> None:
        pause = float(self.rng.exponential(self.mean_pause_ms))
        node.begin_gc_pause()
        self.pauses += 1
        if self.on_event is not None:
            self.on_event(node, self.loop.now, pause)
        self.loop.schedule(pause, self._end, node)

    def _end(self, node) -> None:
        node.end_gc_pause()
        self._schedule_next(node)
