"""Cluster assembly: a Cassandra-like deployment on the event-loop substrate.

:class:`ClusterConfig` describes one deployment + workload scenario (number
of nodes, disk type, snitching strategy, generator groups, background
maintenance, …) and :class:`CassandraCluster` wires everything together and
runs it: token ring, storage nodes, coordinators with their selectors,
gossip, compaction and GC processes, and closed-loop YCSB generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Mapping

import numpy as np

from ..controls import ControlSpec
from ..core.config import C3Config
from ..simulator.engine import EventLoop
from ..simulator.network import ConstantLatency, NetworkModel
from ..simulator.metrics import SimulationResult
from ..simulator.request import Request
from ..strategies import StrategySpec
from ..workloads.records import FixedRecordSize, ZipfSkewedRecordSize
from ..workloads.ycsb import YCSBWorkload
from .coordinator import Coordinator, SpeculativeRetryPolicy
from .disk import DiskProfile, HDD_PROFILE, SSD_PROFILE
from .events import CompactionProcess, GCPauseProcess
from .gossip import GossipService
from .metrics import ClusterMetrics
from .node import ClusterNode
from .ring import TokenRing
from .storage import StorageEngine
from .workload_bridge import ClosedLoopGenerator

__all__ = ["GeneratorGroup", "ClusterConfig", "CassandraCluster", "run_cluster"]


@dataclass(slots=True)
class GeneratorGroup:
    """A group of identically-configured closed-loop generators.

    Attributes
    ----------
    count:
        Number of generator "threads" in the group.
    mix:
        Workload mix name (``read_heavy`` / ``update_heavy`` / ``read_only``).
    start_at_ms:
        When the group starts issuing (used by the Figure 11 experiment where
        update-heavy generators join an already-running read-heavy workload).
    label:
        Label attached to the group's operations (defaults to the mix name).
    skewed_record_sizes:
        When True, record sizes follow the Zipf-skewed model instead of fixed
        1 KB records (the §5 "skewed record sizes" experiment).
    """

    count: int
    mix: str = "read_heavy"
    start_at_ms: float = 0.0
    label: str = ""
    skewed_record_sizes: bool = False

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.start_at_ms < 0:
            raise ValueError("start_at_ms must be non-negative")
        if not self.label:
            self.label = self.mix


@dataclass(slots=True)
class ClusterConfig:
    """Parameters of one cluster run (scaled-down §5 deployment by default).

    ``strategy`` accepts the same forms as
    :attr:`~repro.simulator.simulation.SimulationConfig.strategy` — bare
    names, parameterized spec strings, mappings, or a
    :class:`~repro.strategies.StrategySpec` — and is normalized to the
    canonical spec string at construction.

    Hedged reads can be configured two equivalent ways:
    ``speculative_retry_percentile`` (the legacy Cassandra-style spelling,
    e.g. ``99.0``) or ``hedging`` (a control spec such as
    ``"hedge:quantile=0.99"``, which additionally exposes ``max_extra``).
    Setting both is an error.
    """

    num_nodes: int = 15
    replication_factor: int = 3
    disk: str = "hdd"
    cache_hit_probability: float = 0.1
    node_concurrency: int = 8
    strategy: "str | Mapping[str, Any] | StrategySpec" = "C3"
    c3_config: C3Config | None = None
    num_generators: int = 40
    workload_mix: str = "read_heavy"
    generator_groups: list[GeneratorGroup] | None = None
    duration_ms: float = 2_000.0
    drain_timeout_ms: float = 10_000.0
    num_keys: int = 10_000
    zipf_theta: float = 0.99
    read_repair_probability: float = 0.1
    speculative_retry_percentile: float | None = None
    hedging: "str | Mapping[str, Any] | ControlSpec | None" = None
    network_delay_ms: float = 0.25
    gossip_interval_ms: float = 1_000.0
    compaction_enabled: bool = True
    compaction_interarrival_ms: float = 15_000.0
    compaction_duration_ms: float = 1_500.0
    gc_enabled: bool = True
    gc_interarrival_ms: float = 8_000.0
    gc_pause_ms: float = 100.0
    window_ms: float = 100.0
    record_rate_history: bool = False
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.strategy = StrategySpec.parse(self.strategy).canonical()
        if self.hedging is not None:
            if self.speculative_retry_percentile is not None:
                raise ValueError(
                    "speculative_retry_percentile and hedging configure the same "
                    "mechanism; set only one"
                )
            self.hedging = ControlSpec.parse(self.hedging, kind="hedge").canonical()
        if self.num_nodes < self.replication_factor:
            raise ValueError("num_nodes must be >= replication_factor")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.num_generators < 1 and not self.generator_groups:
            raise ValueError("need at least one generator")
        if self.disk not in ("hdd", "ssd"):
            raise ValueError("disk must be 'hdd' or 'ssd'")

    @property
    def disk_profile(self) -> DiskProfile:
        """The configured disk profile."""
        return HDD_PROFILE if self.disk == "hdd" else SSD_PROFILE

    @property
    def strategy_spec(self) -> StrategySpec:
        """The canonical :class:`StrategySpec` of this run's strategy."""
        return StrategySpec.parse(self.strategy)

    @property
    def hedging_spec(self) -> ControlSpec | None:
        """The canonical :class:`ControlSpec` of the hedging policy, if any."""
        if self.hedging is None:
            return None
        return ControlSpec.parse(self.hedging, kind="hedge")

    def groups(self) -> list[GeneratorGroup]:
        """The generator groups (a single default group when none given)."""
        if self.generator_groups:
            return list(self.generator_groups)
        return [GeneratorGroup(count=self.num_generators, mix=self.workload_mix)]

    def copy(self, **overrides) -> "ClusterConfig":
        """A copy of this config with ``overrides`` applied."""
        return replace(self, **overrides)


class CassandraCluster:
    """Builds and runs one cluster scenario."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.loop = EventLoop()
        self.rng = np.random.default_rng(config.seed)
        self.metrics = ClusterMetrics(window_ms=config.window_ms)
        self.network: NetworkModel = ConstantLatency(config.network_delay_ms)

        self.node_ids = list(range(config.num_nodes))
        self.ring = TokenRing(self.node_ids, config.replication_factor)
        self.gossip = GossipService(self.loop, interval_ms=config.gossip_interval_ms)
        self.nodes: dict[Hashable, ClusterNode] = {}
        self.coordinators: dict[Hashable, Coordinator] = {}
        self.generators: list[ClosedLoopGenerator] = []
        self.compaction: CompactionProcess | None = None
        self.gc: GCPauseProcess | None = None
        self._build()

    # ------------------------------------------------------------------ assembly
    def _build(self) -> None:
        cfg = self.config
        for node_id in self.node_ids:
            storage = StorageEngine(
                profile=cfg.disk_profile,
                cache_hit_probability=cfg.cache_hit_probability,
                rng=np.random.default_rng(self.rng.integers(2**63)),
            )
            node = ClusterNode(
                loop=self.loop,
                node_id=node_id,
                storage=storage,
                concurrency=cfg.node_concurrency,
                on_complete=self._route_response,
                rng=np.random.default_rng(self.rng.integers(2**63)),
            )
            self.nodes[node_id] = node
            self.gossip.register(node_id, lambda n=node: n.iowait)

        c3_config = cfg.c3_config or C3Config().with_clients(cfg.num_nodes)
        strategy_spec = cfg.strategy_spec
        hedging_spec = cfg.hedging_spec
        spec_policy = None
        for node_id in self.node_ids:
            selector = strategy_spec.build(
                rng=np.random.default_rng(self.rng.integers(2**63)),
                server_state_fn=self._node_state,
                iowait_fn=self.gossip.latest_iowait,
                record_rate_history=cfg.record_rate_history,
                c3_config=c3_config,
            )
            if cfg.speculative_retry_percentile is not None:
                spec_policy = SpeculativeRetryPolicy(percentile=cfg.speculative_retry_percentile)
            elif hedging_spec is not None:
                spec_policy = hedging_spec.build()
            coordinator = Coordinator(
                loop=self.loop,
                node_id=node_id,
                ring=self.ring,
                selector=selector,
                nodes=self.nodes,
                network=self.network,
                metrics=self.metrics,
                read_repair_probability=cfg.read_repair_probability,
                speculative_retry=spec_policy,
                rng=np.random.default_rng(self.rng.integers(2**63)),
            )
            spec_policy = None
            self.coordinators[node_id] = coordinator

        self._build_generators()

        if cfg.compaction_enabled:
            self.compaction = CompactionProcess(
                loop=self.loop,
                nodes=list(self.nodes.values()),
                mean_interarrival_ms=cfg.compaction_interarrival_ms,
                mean_duration_ms=cfg.compaction_duration_ms,
                rng=np.random.default_rng(self.rng.integers(2**63)),
            )
        if cfg.gc_enabled:
            self.gc = GCPauseProcess(
                loop=self.loop,
                nodes=list(self.nodes.values()),
                mean_interarrival_ms=cfg.gc_interarrival_ms,
                mean_pause_ms=cfg.gc_pause_ms,
                rng=np.random.default_rng(self.rng.integers(2**63)),
            )

    def _build_generators(self) -> None:
        cfg = self.config
        generator_id = 0
        for group in cfg.groups():
            for _ in range(group.count):
                record_sizes = (
                    ZipfSkewedRecordSize(rng=np.random.default_rng(self.rng.integers(2**63)))
                    if group.skewed_record_sizes
                    else FixedRecordSize(1024)
                )
                workload = YCSBWorkload(
                    mix=group.mix,
                    num_keys=cfg.num_keys,
                    zipf_theta=cfg.zipf_theta,
                    record_sizes=record_sizes,
                    rng=np.random.default_rng(self.rng.integers(2**63)),
                )
                coordinator = self.coordinators[self.node_ids[generator_id % len(self.node_ids)]]
                generator = ClosedLoopGenerator(
                    loop=self.loop,
                    generator_id=generator_id,
                    workload=workload,
                    coordinator=coordinator,
                    group_label=group.label,
                    start_at_ms=group.start_at_ms,
                    stop_issuing_at_ms=cfg.duration_ms,
                )
                self.generators.append(generator)
                generator_id += 1

    # ------------------------------------------------------------------- routing
    def _route_response(self, request: Request, feedback, service_time: float) -> None:
        coordinator = self.coordinators[request.client_id]
        if request.server_id == coordinator.node_id:
            delay = 0.02
        else:
            delay = self.network.one_way_delay(request.server_id, coordinator.node_id)
        self.loop.schedule(delay, coordinator.on_remote_response, request, feedback, service_time)

    def _node_state(self, node_id: Hashable) -> tuple[float, float]:
        node = self.nodes[node_id]
        return (node.pending_requests, node.current_service_time_ms)

    # ----------------------------------------------------------------------- run
    def pending_operations(self) -> int:
        """Client operations currently in flight across all coordinators."""
        return sum(c.pending_operations for c in self.coordinators.values())

    def run(self) -> SimulationResult:
        """Run the scenario and return the collected metrics."""
        cfg = self.config
        self.gossip.start()
        if self.compaction is not None:
            self.compaction.start()
        if self.gc is not None:
            self.gc.start()
        for generator in self.generators:
            generator.start()

        # Main phase: generators issue operations until duration_ms.
        slice_ms = max(50.0, cfg.window_ms)
        while self.loop.now < cfg.duration_ms:
            self.loop.run(until=self.loop.now + slice_ms)
        # Drain phase: let in-flight operations finish.
        drain_deadline = cfg.duration_ms + cfg.drain_timeout_ms
        while self.pending_operations() > 0 and self.loop.now < drain_deadline:
            self.loop.run(until=self.loop.now + slice_ms)

        duration = self.loop.now
        extra = {
            "config": cfg,
            "generators": len(self.generators),
            "nodes": len(self.nodes),
            "compactions": self.compaction.compactions_started if self.compaction else 0,
            "gc_pauses": self.gc.pauses if self.gc else 0,
            "node_stats": {nid: node.stats() for nid, node in self.nodes.items()},
        }
        return self.metrics.result(duration_ms=duration, strategy=cfg.strategy, extra=extra)


def run_cluster(config: ClusterConfig) -> SimulationResult:
    """Convenience helper: build and run a cluster scenario in one call."""
    return CassandraCluster(config).run()
