"""Metric collection for cluster runs.

Unlike the flat simulator (where a request *is* an operation), the cluster
substrate separates the two: a client operation may fan out into several
request copies (read-repair, write replication, speculative retries), and the
operation completes when its first copy responds.  The collector therefore
tracks load per response and latency per operation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..simulator.metrics import SimulationResult, WindowedCounter

__all__ = ["OperationSample", "ClusterMetrics"]


@dataclass(frozen=True, slots=True)
class OperationSample:
    """One completed client operation."""

    completed_at: float
    latency_ms: float
    is_read: bool
    group: str


class ClusterMetrics:
    """Accumulates operation latencies and per-node load for a cluster run."""

    def __init__(self, window_ms: float = 100.0) -> None:
        self.window_ms = float(window_ms)
        self.samples: list[OperationSample] = []
        self._per_node_windows: dict[Hashable, WindowedCounter] = {}
        self._per_node_completed: dict[Hashable, int] = defaultdict(int)
        self.operations_issued = 0
        self.copies_issued = 0
        self.backpressure_events = 0
        self.speculative_retries = 0
        self.read_repairs = 0

    # ---------------------------------------------------------------- recording
    def record_issue(self) -> None:
        """Record a new client operation entering the system."""
        self.operations_issued += 1

    def record_copy(self, kind: str = "copy") -> None:
        """Record an extra request copy (read repair, write replica, retry)."""
        self.copies_issued += 1
        if kind == "speculative":
            self.speculative_retries += 1
        elif kind == "read_repair":
            self.read_repairs += 1

    def record_backpressure(self) -> None:
        """Record one backpressure event at a coordinator."""
        self.backpressure_events += 1

    def record_load(self, node_id: Hashable, now: float) -> None:
        """Record one request served by ``node_id`` at time ``now``."""
        counter = self._per_node_windows.get(node_id)
        if counter is None:
            counter = WindowedCounter(self.window_ms)
            self._per_node_windows[node_id] = counter
        counter.record(now)
        self._per_node_completed[node_id] += 1

    def record_operation(self, latency_ms: float, is_read: bool, completed_at: float, group: str = "") -> None:
        """Record a completed client operation."""
        if latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        self.samples.append(OperationSample(completed_at, latency_ms, is_read, group))

    # ------------------------------------------------------------------ queries
    @property
    def operations_completed(self) -> int:
        """Number of completed operations."""
        return len(self.samples)

    def latencies(self, reads_only: bool = False, group: str | None = None) -> np.ndarray:
        """Latency samples, optionally filtered by kind and generator group."""
        values = [
            s.latency_ms
            for s in self.samples
            if (not reads_only or s.is_read) and (group is None or s.group == group)
        ]
        return np.asarray(values, dtype=float)

    def latency_series(self, group: str | None = None, reads_only: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """``(completion_times, latencies)`` for time-series plots (Fig. 11)."""
        filtered = [
            s
            for s in self.samples
            if (not reads_only or s.is_read) and (group is None or s.group == group)
        ]
        filtered.sort(key=lambda s: s.completed_at)
        times = np.asarray([s.completed_at for s in filtered], dtype=float)
        values = np.asarray([s.latency_ms for s in filtered], dtype=float)
        return times, values

    # -------------------------------------------------------------------- result
    def result(self, duration_ms: float, strategy: str = "", extra: dict | None = None) -> SimulationResult:
        """Freeze the collected metrics into a :class:`SimulationResult`."""
        reads = self.latencies(reads_only=True)
        all_lat = self.latencies(reads_only=False)
        writes = np.asarray([s.latency_ms for s in self.samples if not s.is_read], dtype=float)
        merged_extra = {
            "operations_issued": self.operations_issued,
            "copies_issued": self.copies_issued,
            "speculative_retries": self.speculative_retries,
            "read_repairs": self.read_repairs,
            "operation_samples": list(self.samples),
        }
        merged_extra.update(extra or {})
        return SimulationResult(
            latencies_ms=all_lat,
            read_latencies_ms=reads,
            write_latencies_ms=writes,
            duration_ms=float(duration_ms),
            completed_requests=self.operations_completed,
            issued_requests=self.operations_issued,
            duplicate_requests=self.copies_issued,
            backpressure_events=self.backpressure_events,
            server_load_series={
                nid: counter.counts(duration_ms) for nid, counter in self._per_node_windows.items()
            },
            window_ms=self.window_ms,
            per_server_completed=dict(self._per_node_completed),
            strategy=strategy,
            extra=merged_extra,
        )
