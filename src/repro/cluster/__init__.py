"""A Cassandra-like cluster substrate for the paper's §2/§5 experiments."""

from .cluster import CassandraCluster, ClusterConfig, GeneratorGroup, run_cluster
from .coordinator import Coordinator, SpeculativeRetryPolicy
from .disk import DiskModel, DiskProfile, HDD_PROFILE, SSD_PROFILE
from .events import CompactionProcess, GCPauseProcess
from .gossip import GossipEntry, GossipService
from .metrics import ClusterMetrics, OperationSample
from .node import ClusterNode
from .ring import TokenRing
from .storage import StorageEngine
from .workload_bridge import ClosedLoopGenerator

__all__ = [
    "CassandraCluster",
    "ClosedLoopGenerator",
    "ClusterConfig",
    "ClusterMetrics",
    "ClusterNode",
    "CompactionProcess",
    "Coordinator",
    "DiskModel",
    "DiskProfile",
    "GCPauseProcess",
    "GeneratorGroup",
    "GossipEntry",
    "GossipService",
    "HDD_PROFILE",
    "OperationSample",
    "SSD_PROFILE",
    "SpeculativeRetryPolicy",
    "StorageEngine",
    "TokenRing",
    "run_cluster",
]
