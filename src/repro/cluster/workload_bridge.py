"""Closed-loop workload generators driving the cluster substrate.

YCSB generators are closed-loop: each generator thread issues an operation,
waits for it to complete, then immediately issues the next one.  Throughput
is therefore determined by latency — which is exactly how better replica
selection translates into the higher read throughput of Figure 7.
"""

from __future__ import annotations


from ..simulator.engine import EventLoop
from ..simulator.request import Request
from ..workloads.ycsb import YCSBWorkload
from .coordinator import Coordinator

__all__ = ["ClosedLoopGenerator"]


class ClosedLoopGenerator:
    """One YCSB-style generator thread bound to a coordinator.

    Parameters
    ----------
    loop:
        Shared event loop.
    generator_id:
        Stable identifier.
    workload:
        The operation stream (mix, key skew, record sizes).
    coordinator:
        The coordinator node this generator's connection terminates at.
    group_label:
        Label attached to every operation (used to slice latency series per
        generator group, e.g. in the Figure 11 experiment).
    start_at_ms / stop_issuing_at_ms:
        When the generator starts and stops issuing new operations.
    max_operations:
        Optional cap on the number of operations issued.
    think_time_ms:
        Delay between receiving a response and issuing the next operation
        (0 = full closed loop, as YCSB runs at maximum attainable throughput).
    """

    def __init__(
        self,
        loop: EventLoop,
        generator_id: int,
        workload: YCSBWorkload,
        coordinator: Coordinator,
        group_label: str = "",
        start_at_ms: float = 0.0,
        stop_issuing_at_ms: float | None = None,
        max_operations: int | None = None,
        think_time_ms: float = 0.0,
    ) -> None:
        if start_at_ms < 0:
            raise ValueError("start_at_ms must be non-negative")
        if think_time_ms < 0:
            raise ValueError("think_time_ms must be non-negative")
        self.loop = loop
        self.generator_id = generator_id
        self.workload = workload
        self.coordinator = coordinator
        self.group_label = group_label or workload.name
        self.start_at_ms = float(start_at_ms)
        self.stop_issuing_at_ms = stop_issuing_at_ms
        self.max_operations = max_operations
        self.think_time_ms = float(think_time_ms)

        self.operations_issued = 0
        self.operations_completed = 0
        self.total_latency_ms = 0.0
        self.stopped = False

    # --------------------------------------------------------------------- run
    def start(self) -> None:
        """Schedule the generator's first operation."""
        self.loop.schedule_at(max(self.start_at_ms, self.loop.now), self._issue_next)

    def stop(self) -> None:
        """Stop issuing new operations (in-flight ones still complete)."""
        self.stopped = True

    def _should_stop(self) -> bool:
        if self.stopped:
            return True
        if self.max_operations is not None and self.operations_issued >= self.max_operations:
            return True
        if self.stop_issuing_at_ms is not None and self.loop.now >= self.stop_issuing_at_ms:
            return True
        return False

    def _issue_next(self) -> None:
        if self._should_stop():
            self.stopped = True
            return
        operation = self.workload.next_operation()
        self.operations_issued += 1
        self.coordinator.execute(operation, self._on_done, group_label=self.group_label)

    def _on_done(self, request: Request, latency_ms: float) -> None:
        self.operations_completed += 1
        self.total_latency_ms += latency_ms
        if self._should_stop():
            self.stopped = True
            return
        self.loop.schedule(self.think_time_ms, self._issue_next)

    # ------------------------------------------------------------- observation
    @property
    def mean_latency_ms(self) -> float:
        """Mean latency over this generator's completed operations."""
        if self.operations_completed == 0:
            return 0.0
        return self.total_latency_ms / self.operations_completed

    def stats(self) -> dict:
        """Per-generator counters."""
        return {
            "generator_id": self.generator_id,
            "group": self.group_label,
            "issued": self.operations_issued,
            "completed": self.operations_completed,
            "mean_latency_ms": self.mean_latency_ms,
            "stopped": self.stopped,
        }
