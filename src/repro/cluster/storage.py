"""Per-node storage engine model.

A Cassandra node serves a read either from memory (memtable / row cache) or
from one or more SSTables on disk; it serves writes by appending to the
commit log and memtable (cheap).  Background compactions temporarily inflate
read costs and I/O wait.  This model captures the pieces replica selection
cares about: the service-time distribution, its dependence on concurrency and
record size, and the iowait signal that gets gossiped.
"""

from __future__ import annotations

import numpy as np

from ..core.ewma import EWMA
from .disk import DiskModel, DiskProfile, HDD_PROFILE

__all__ = ["StorageEngine"]


class StorageEngine:
    """Storage model for one node.

    Parameters
    ----------
    profile:
        Disk profile (HDD/SSD).
    cache_hit_probability:
        Probability a read is served from memory.  The paper's dataset (500 M
        × 1 KB records) is much larger than RAM, so the default is low.
    rng:
        Random generator.
    deterministic:
        Propagated to the disk model (exact means, for unit tests).
    """

    def __init__(
        self,
        profile: DiskProfile = HDD_PROFILE,
        cache_hit_probability: float = 0.1,
        rng: np.random.Generator | None = None,
        deterministic: bool = False,
    ) -> None:
        if not 0.0 <= cache_hit_probability <= 1.0:
            raise ValueError("cache_hit_probability must be in [0, 1]")
        self.rng = rng or np.random.default_rng()
        self.disk = DiskModel(profile, rng=self.rng, deterministic=deterministic)
        self.cache_hit_probability = float(cache_hit_probability)
        self.compacting = False
        self.compactions = 0
        self.reads_served = 0
        self.writes_served = 0
        # Smoothed read activity, used as the "organic" component of iowait.
        self._activity = EWMA(alpha=0.2, initial=0.0)

    # ------------------------------------------------------------- compaction
    def begin_compaction(self) -> None:
        """Mark the start of a compaction (raises iowait, slows reads)."""
        self.compacting = True
        self.compactions += 1

    def end_compaction(self) -> None:
        """Mark the end of a compaction."""
        self.compacting = False

    # ------------------------------------------------------------ service time
    @staticmethod
    def _size_factor(record_size: int) -> float:
        if record_size <= 0:
            return 1.0
        return max(0.25, record_size / 1024.0)

    def read_service_time(self, concurrent_reads: int, record_size: int = 1024) -> float:
        """Sample the service time of one read, in milliseconds."""
        self.reads_served += 1
        self._activity.update(min(1.0, concurrent_reads / 16.0))
        cache_hit = self.rng.random() < self.cache_hit_probability
        return self.disk.read_time(
            concurrent_reads=max(0, concurrent_reads),
            compacting=self.compacting,
            cache_hit=cache_hit,
            size_factor=self._size_factor(record_size),
        )

    def write_service_time(self, record_size: int = 1024) -> float:
        """Sample the service time of one write, in milliseconds."""
        self.writes_served += 1
        return self.disk.write_time(
            compacting=self.compacting, size_factor=self._size_factor(record_size)
        )

    # ----------------------------------------------------------------- signals
    @property
    def iowait(self) -> float:
        """Current iowait fraction in [0, 1] — the signal gossip publishes.

        Compaction dominates (as it does on real nodes); otherwise the value
        tracks recent read concurrency on the disk.
        """
        if self.compacting:
            return min(1.0, 0.6 + 0.4 * self._activity.value)
        return min(0.5, 0.5 * self._activity.value)

    def stats(self) -> dict:
        """Counters for reporting."""
        return {
            "reads_served": self.reads_served,
            "writes_served": self.writes_served,
            "compactions": self.compactions,
            "compacting": self.compacting,
            "iowait": self.iowait,
            "disk_profile": self.disk.profile.name,
        }
