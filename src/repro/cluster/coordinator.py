"""The coordinator — Cassandra's read/write path with pluggable snitching.

A client can contact any node; that node becomes the *coordinator* for the
operation and internally fetches the record from a replica (§2.3).  The
coordinator is the C3 client in the paper's implementation: it runs replica
ranking, rate control and backpressure for reads, issues read-repair
duplicates (10 % of reads go to every replica), fans writes out to all
replicas, and optionally speculatively retries slow reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

import numpy as np

from ..controls.hedging import QuantileHedging
from ..core.feedback import ServerFeedback
from ..simulator.engine import Event, EventLoop
from ..simulator.network import NetworkModel
from ..simulator.request import Request, RequestKind
from ..strategies.base import ReplicaSelector
from ..workloads.ycsb import Operation
from .metrics import ClusterMetrics
from .node import ClusterNode
from .ring import TokenRing

__all__ = ["SpeculativeRetryPolicy", "Coordinator"]

#: Minimum delay before re-checking a backpressured backlog (ms).
_MIN_RETRY_MS = 0.1
#: Loop-back delay for a coordinator reading from its own storage (ms).
_LOCAL_DELAY_MS = 0.02


class SpeculativeRetryPolicy(QuantileHedging):
    """Cassandra-style percentile speculative retry.

    After dispatching a read, the coordinator waits until the configured
    percentile of recently observed read latencies before re-issuing the read
    to a different replica (§5 "Comparison against request reissues").

    This is the legacy, percentile-spelled face of the generalized
    :class:`~repro.controls.hedging.QuantileHedging` policy:
    ``SpeculativeRetryPolicy(percentile=p)`` is exactly
    ``QuantileHedging(quantile=p / 100, max_extra=1)``.  (``p / 100`` and
    ``quantile * 100`` are both exact for the percentiles in use, so the
    estimated thresholds — and therefore pinned digests — are unchanged.)

    Parameters
    ----------
    percentile:
        The trigger percentile (99.0 reproduces the paper's configuration).
    min_samples:
        Number of latency samples required before speculation activates.
    history:
        Size of the sliding latency window used to estimate the percentile.
    """

    def __init__(self, percentile: float = 99.0, min_samples: int = 50, history: int = 1000) -> None:
        if not 0.0 < percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        if min_samples < 1 or history < min_samples:
            raise ValueError("invalid sample window configuration")
        super().__init__(
            quantile=float(percentile) / 100.0,
            max_extra=1,
            min_samples=min_samples,
            history=history,
        )
        self.percentile = float(percentile)


@dataclass(slots=True)
class _PendingOperation:
    """Book-keeping for one in-flight client operation."""

    op_id: int
    primary: Request
    issued_at: float
    is_read: bool
    group_label: str
    on_done: Callable[[Request, float], None]
    copy_ids: set = field(default_factory=set)
    completed: bool = False
    speculation_event: Event | None = None
    speculations: int = 0
    speculation_targets: set = field(default_factory=set)

    @property
    def speculated(self) -> bool:
        """Whether at least one speculative copy has been issued."""
        return self.speculations > 0


class Coordinator:
    """One node's coordinator role.

    Parameters
    ----------
    loop / node_id / ring / selector:
        Event loop, owning node id, token ring and the replica-selection
        strategy instance this coordinator uses.
    nodes:
        Mapping from node id to :class:`ClusterNode` for dispatching.
    network:
        Inter-node network latency model.
    metrics:
        Shared :class:`ClusterMetrics`.
    read_repair_probability:
        Fraction of reads duplicated to every replica (Cassandra default 0.1).
    speculative_retry:
        Optional hedging policy — any
        :class:`~repro.controls.hedging.QuantileHedging` (of which the
        legacy :class:`SpeculativeRetryPolicy` is a subclass); its
        ``max_extra`` bounds the extra copies issued per read.
    rng:
        Random generator.
    """

    def __init__(
        self,
        loop: EventLoop,
        node_id: Hashable,
        ring: TokenRing,
        selector: ReplicaSelector,
        nodes: Mapping[Hashable, ClusterNode],
        network: NetworkModel,
        metrics: ClusterMetrics,
        read_repair_probability: float = 0.1,
        speculative_retry: QuantileHedging | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= read_repair_probability <= 1.0:
            raise ValueError("read_repair_probability must be in [0, 1]")
        self.loop = loop
        self.node_id = node_id
        self.ring = ring
        self.selector = selector
        self.nodes = nodes
        self.network = network
        self.metrics = metrics
        self.read_repair_probability = read_repair_probability
        self.speculative_retry = speculative_retry
        self.rng = rng or np.random.default_rng()

        self._pending: dict[int, _PendingOperation] = {}
        self._pending_by_copy: dict[int, _PendingOperation] = {}
        self._retry_event: Event | None = None
        self.operations_executed = 0
        self.reads_executed = 0
        self.writes_executed = 0
        self.speculations_fired = 0

    # --------------------------------------------------------------- entry point
    def execute(
        self,
        operation: Operation,
        on_done: Callable[[Request, float], None],
        group_label: str = "",
    ) -> Request:
        """Execute one client operation; ``on_done(request, latency)`` fires
        when the operation completes."""
        now = self.loop.now
        group = self.ring.replicas_for(operation.key)
        kind = RequestKind.READ if operation.is_read else RequestKind.WRITE
        request = Request.create(
            client_id=self.node_id,
            replica_group=group,
            created_at=now,
            kind=kind,
            key=operation.key,
            record_size=operation.record_size,
        )
        pending = _PendingOperation(
            op_id=request.request_id,
            primary=request,
            issued_at=now,
            is_read=operation.is_read,
            group_label=group_label,
            on_done=on_done,
        )
        pending.copy_ids.add(request.request_id)
        self._pending[request.request_id] = pending
        self._pending_by_copy[request.request_id] = pending
        self.operations_executed += 1
        self.metrics.record_issue()

        if operation.is_read:
            self.reads_executed += 1
            self._submit_read(request, pending)
        else:
            self.writes_executed += 1
            self._execute_write(request, pending)
        return request

    # --------------------------------------------------------------------- reads
    def _submit_read(self, request: Request, pending: _PendingOperation) -> None:
        now = self.loop.now
        decision = self.selector.submit(request, request.replica_group, now)
        if decision.sent:
            self._dispatch(request, decision.server_id)
            self._maybe_read_repair(request, pending)
            self._maybe_schedule_speculation(pending)
        else:
            request.backpressured = True
            self.metrics.record_backpressure()
            self._schedule_retry(decision.retry_after_ms)

    def _maybe_read_repair(self, request: Request, pending: _PendingOperation) -> None:
        if self.read_repair_probability <= 0.0:
            return
        if self.rng.random() >= self.read_repair_probability:
            return
        for node_id in request.replica_group:
            if node_id == request.server_id:
                continue
            duplicate = self._make_copy(request, RequestKind.READ_REPAIR)
            pending.copy_ids.add(duplicate.request_id)
            self._pending_by_copy[duplicate.request_id] = pending
            self.metrics.record_copy("read_repair")
            self.selector.on_duplicate_send(node_id, self.loop.now)
            self._dispatch(duplicate, node_id)

    def _maybe_schedule_speculation(self, pending: _PendingOperation) -> None:
        if self.speculative_retry is None or not pending.is_read:
            return
        if pending.speculations >= self.speculative_retry.max_extra:
            return
        threshold = self.speculative_retry.threshold_ms()
        if threshold is None:
            return
        pending.speculation_event = self.loop.schedule(threshold, self._speculate, pending.op_id)

    def _speculate(self, op_id: int) -> None:
        pending = self._pending.get(op_id)
        if pending is None or pending.completed:
            return
        policy = self.speculative_retry
        if policy is None or pending.speculations >= policy.max_extra:
            return
        pending.speculations += 1
        primary = pending.primary
        exclude = {primary.server_id} | pending.speculation_targets
        candidates = [nid for nid in primary.replica_group if nid not in exclude]
        if not candidates:
            return
        target = candidates[int(self.rng.integers(len(candidates)))]
        pending.speculation_targets.add(target)
        duplicate = self._make_copy(primary, RequestKind.SPECULATIVE)
        pending.copy_ids.add(duplicate.request_id)
        self._pending_by_copy[duplicate.request_id] = pending
        self.metrics.record_copy("speculative")
        self.speculations_fired += 1
        self.selector.on_duplicate_send(target, self.loop.now)
        self._dispatch(duplicate, target)
        # With max_extra > 1 the hedge timer re-arms for the next extra copy.
        if pending.speculations < policy.max_extra:
            threshold = policy.threshold_ms()
            if threshold is not None:
                pending.speculation_event = self.loop.schedule(threshold, self._speculate, op_id)

    # -------------------------------------------------------------------- writes
    def _execute_write(self, request: Request, pending: _PendingOperation) -> None:
        """Fan the write out to every replica; the op completes on first ack."""
        group = list(request.replica_group)
        primary_target = group[int(self.rng.integers(len(group)))]
        self.selector.on_duplicate_send(primary_target, self.loop.now)
        self._dispatch(request, primary_target)
        for node_id in group:
            if node_id == primary_target:
                continue
            copy = self._make_copy(request, RequestKind.WRITE)
            pending.copy_ids.add(copy.request_id)
            self._pending_by_copy[copy.request_id] = pending
            self.metrics.record_copy("write_replica")
            self.selector.on_duplicate_send(node_id, self.loop.now)
            self._dispatch(copy, node_id)

    # ------------------------------------------------------------------ plumbing
    def _make_copy(self, request: Request, kind: str) -> Request:
        return Request.create(
            client_id=self.node_id,
            replica_group=request.replica_group,
            created_at=self.loop.now,
            kind=kind,
            key=request.key,
            record_size=request.record_size,
            parent_id=request.request_id,
        )

    def _dispatch(self, request: Request, node_id: Hashable) -> None:
        now = self.loop.now
        request.mark_dispatched(now, node_id)
        delay = (
            _LOCAL_DELAY_MS
            if node_id == self.node_id
            else self.network.one_way_delay(self.node_id, node_id)
        )
        self.loop.schedule(delay, self.nodes[node_id].enqueue, request)

    # ------------------------------------------------------------------ responses
    def on_remote_response(self, request: Request, feedback: ServerFeedback, service_time: float) -> None:
        """Handle a response for any request copy this coordinator dispatched."""
        now = self.loop.now
        request.mark_completed(now)
        self.metrics.record_load(request.server_id, now)
        response_time = (
            now - request.dispatched_at if request.dispatched_at is not None else now - request.created_at
        )
        released = self.selector.on_response(request.server_id, feedback, response_time, now)
        for pending_request, server_id in released:
            self._dispatch(pending_request, server_id)
            rel_pending = self._pending_by_copy.get(pending_request.request_id)
            if rel_pending is not None:
                self._maybe_read_repair(pending_request, rel_pending)
                self._maybe_schedule_speculation(rel_pending)
        if self.selector.pending_backlog() > 0:
            self._schedule_retry(self.selector.next_retry_ms(now) or _MIN_RETRY_MS)

        pending = self._pending_by_copy.get(request.request_id)
        if pending is not None and not pending.completed:
            self._complete_operation(pending, now)

    def _complete_operation(self, pending: _PendingOperation, now: float) -> None:
        pending.completed = True
        if pending.speculation_event is not None:
            pending.speculation_event.cancel()
        latency = now - pending.issued_at
        if pending.is_read and self.speculative_retry is not None:
            self.speculative_retry.record(latency)
        self.metrics.record_operation(latency, pending.is_read, now, pending.group_label)
        pending.on_done(pending.primary, latency)
        # Keep the _pending_by_copy entries for late copies (they are cheap
        # and let stragglers be recognised); drop the primary index.
        self._pending.pop(pending.op_id, None)

    # -------------------------------------------------------------------- retries
    def _schedule_retry(self, delay_ms: float) -> None:
        if self._retry_event is not None and not self._retry_event.cancelled:
            return
        delay = max(float(delay_ms), _MIN_RETRY_MS)
        self._retry_event = self.loop.schedule(delay, self._retry_backlog)

    def _retry_backlog(self) -> None:
        self._retry_event = None
        now = self.loop.now
        released = self.selector.drain_backlog(now)
        for request, server_id in released:
            self._dispatch(request, server_id)
            pending = self._pending_by_copy.get(request.request_id)
            if pending is not None:
                self._maybe_read_repair(request, pending)
                self._maybe_schedule_speculation(pending)
        if self.selector.pending_backlog() > 0:
            retry = self.selector.next_retry_ms(now)
            self._schedule_retry(retry if retry is not None else 1.0)

    # ---------------------------------------------------------------- observation
    @property
    def pending_operations(self) -> int:
        """Number of client operations still awaiting their first response."""
        return len(self._pending)

    def stats(self) -> dict:
        """Coordinator counters plus the selector's own statistics."""
        return {
            "node_id": self.node_id,
            "operations": self.operations_executed,
            "reads": self.reads_executed,
            "writes": self.writes_executed,
            "speculations": self.speculations_fired,
            "pending": len(self._pending),
            "selector": self.selector.stats(),
        }
