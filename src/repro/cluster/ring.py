"""Consistent-hashing token ring with replication (Cassandra data placement).

Cassandra servers organise themselves into a one-hop distributed hash table:
each node owns one token (the paper assigns tokens so that nodes own equal
segments of the keyspace) and a key is stored on the node owning the first
token ≥ hash(key), plus the next ``RF - 1`` distinct nodes clockwise around
the ring.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Sequence

__all__ = ["TokenRing"]

_RING_SIZE = 2**64


def _hash_key(key) -> int:
    """64-bit position of a key on the ring (stable across runs)."""
    data = repr(key).encode("utf-8")
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big") % _RING_SIZE


class TokenRing:
    """Equal-ownership token ring with ``replication_factor`` replicas per key.

    Parameters
    ----------
    nodes:
        The node identifiers participating in the ring, in ring order.
    replication_factor:
        Number of distinct replicas per key (3 throughout the paper).
    """

    def __init__(self, nodes: Sequence[Hashable], replication_factor: int = 3) -> None:
        node_list = list(nodes)
        if not node_list:
            raise ValueError("the ring needs at least one node")
        if len(set(node_list)) != len(node_list):
            raise ValueError("node identifiers must be unique")
        if not 1 <= replication_factor <= len(node_list):
            raise ValueError("replication_factor must be in [1, number of nodes]")
        self.nodes = node_list
        self.replication_factor = int(replication_factor)
        # Tokens evenly spaced → every node owns an equal keyspace segment,
        # matching the paper's token assignment.
        spacing = _RING_SIZE // len(node_list)
        self._tokens = [i * spacing for i in range(len(node_list))]
        self._token_to_node = dict(zip(self._tokens, node_list))

    # ------------------------------------------------------------------ lookup
    def primary_for(self, key) -> Hashable:
        """The node owning the token range that ``key`` hashes into."""
        position = _hash_key(key)
        idx = bisect.bisect_left(self._tokens, position)
        if idx == len(self._tokens):
            idx = 0
        return self._token_to_node[self._tokens[idx]]

    def replicas_for(self, key) -> tuple[Hashable, ...]:
        """The replica group (RF distinct nodes) responsible for ``key``."""
        position = _hash_key(key)
        idx = bisect.bisect_left(self._tokens, position)
        if idx == len(self._tokens):
            idx = 0
        group = []
        for offset in range(self.replication_factor):
            node = self._token_to_node[self._tokens[(idx + offset) % len(self._tokens)]]
            group.append(node)
        return tuple(group)

    def replica_groups(self) -> list[tuple[Hashable, ...]]:
        """All distinct replica groups (one per token range)."""
        groups = []
        n = len(self.nodes)
        for i in range(n):
            groups.append(tuple(self.nodes[(i + o) % n] for o in range(self.replication_factor)))
        return groups

    def ownership_fraction(self, node: Hashable) -> float:
        """Fraction of the keyspace a node is the primary for."""
        if node not in self._token_to_node.values():
            raise KeyError(f"{node!r} is not in the ring")
        return 1.0 / len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self.nodes
