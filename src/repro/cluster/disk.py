"""Disk service-time models for the cluster substrate.

The paper evaluates two storage back-ends on EC2: a RAID0 array of four
spinning-head ephemeral disks (``m1.xlarge``) and a RAID0 pair of SSDs
(``m3.xlarge``).  Spinning disks suffer from random seeks whose cost grows
with the number of concurrent readers (which is why the read-only workload is
slower than the read-heavy one in Figure 6), while SSDs are roughly an order
of magnitude faster and far less sensitive to concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiskProfile", "HDD_PROFILE", "SSD_PROFILE", "DiskModel"]


@dataclass(frozen=True, slots=True)
class DiskProfile:
    """Parameters of a storage back-end.

    Attributes
    ----------
    name:
        Profile name ("hdd", "ssd", …).
    read_ms:
        Mean service time of a random read that misses the cache.
    write_ms:
        Mean service time of a write (commit log + memtable append).
    seek_penalty_ms:
        Extra mean latency added per concurrent in-flight read beyond the
        first (head contention on spinning media).
    compaction_read_factor:
        Multiplier applied to read service times while a compaction is
        running on the node.
    cache_hit_ms:
        Service time of a read served from the row cache / memtable.
    """

    name: str
    read_ms: float
    write_ms: float
    seek_penalty_ms: float
    compaction_read_factor: float
    cache_hit_ms: float

    def __post_init__(self) -> None:
        if min(self.read_ms, self.write_ms, self.cache_hit_ms) <= 0:
            raise ValueError("service times must be positive")
        if self.seek_penalty_ms < 0:
            raise ValueError("seek_penalty_ms must be non-negative")
        if self.compaction_read_factor < 1.0:
            raise ValueError("compaction_read_factor must be >= 1")


#: Spinning-disk RAID0 (m1.xlarge ephemeral storage).
HDD_PROFILE = DiskProfile(
    name="hdd",
    read_ms=4.0,
    write_ms=0.5,
    seek_penalty_ms=0.6,
    compaction_read_factor=2.5,
    cache_hit_ms=0.3,
)

#: SSD RAID0 (m3.xlarge instance storage).
SSD_PROFILE = DiskProfile(
    name="ssd",
    read_ms=0.8,
    write_ms=0.3,
    seek_penalty_ms=0.05,
    compaction_read_factor=1.5,
    cache_hit_ms=0.15,
)


class DiskModel:
    """Samples I/O service times for one node's storage.

    Parameters
    ----------
    profile:
        The :class:`DiskProfile` to draw from.
    rng:
        Random generator.
    deterministic:
        When True, samples equal their means (unit tests).
    """

    def __init__(
        self,
        profile: DiskProfile = HDD_PROFILE,
        rng: np.random.Generator | None = None,
        deterministic: bool = False,
    ) -> None:
        self.profile = profile
        self.rng = rng or np.random.default_rng()
        self.deterministic = deterministic
        self.reads_sampled = 0
        self.writes_sampled = 0

    def _draw(self, mean_ms: float) -> float:
        if self.deterministic:
            return mean_ms
        return float(self.rng.exponential(mean_ms))

    def read_time(
        self,
        concurrent_reads: int = 0,
        compacting: bool = False,
        cache_hit: bool = False,
        size_factor: float = 1.0,
    ) -> float:
        """Sample the service time of one read, in milliseconds.

        Parameters
        ----------
        concurrent_reads:
            Number of *other* reads currently in flight on this disk; each
            adds ``seek_penalty_ms`` of expected head-contention latency on
            spinning media.
        compacting:
            Whether a compaction is running (multiplies the disk component).
        cache_hit:
            Whether the read was served from memory (memtable / row cache).
        size_factor:
            Record-size multiplier (1.0 for the 1 KB baseline).
        """
        if concurrent_reads < 0:
            raise ValueError("concurrent_reads must be non-negative")
        if size_factor <= 0:
            raise ValueError("size_factor must be positive")
        self.reads_sampled += 1
        if cache_hit:
            return self._draw(self.profile.cache_hit_ms * size_factor)
        mean = self.profile.read_ms + self.profile.seek_penalty_ms * concurrent_reads
        if compacting:
            mean *= self.profile.compaction_read_factor
        return self._draw(mean * size_factor)

    def write_time(self, compacting: bool = False, size_factor: float = 1.0) -> float:
        """Sample the service time of one write, in milliseconds."""
        if size_factor <= 0:
            raise ValueError("size_factor must be positive")
        self.writes_sampled += 1
        mean = self.profile.write_ms * size_factor
        if compacting:
            mean *= 1.5
        return self._draw(mean)
