"""A Cassandra-like storage node: FIFO read/write stage + feedback.

Every node in the cluster is both a storage server (this class) and a
coordinator (see :mod:`repro.cluster.coordinator`).  The storage stage mirrors
Cassandra's read stage: a bounded pool of worker threads pulls requests off a
queue, service times come from the node's :class:`StorageEngine`, and the
response carries C3's piggy-backed feedback.  GC pauses stall the stage; the
queue keeps growing while the node is paused.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

import numpy as np

from ..core.ewma import EWMA
from ..core.feedback import ServerFeedback
from ..simulator.engine import EventLoop
from ..simulator.request import Request, RequestKind
from .storage import StorageEngine

__all__ = ["ClusterNode"]


class ClusterNode:
    """The storage half of a Cassandra-like node.

    Parameters
    ----------
    loop:
        Shared event loop.
    node_id:
        Stable identifier (also the coordinator id of the co-located
        coordinator).
    storage:
        The node's storage engine.
    concurrency:
        Read-stage worker count (Cassandra's ``concurrent_reads`` is 32 by
        default; the model uses a smaller pool because it does not model the
        OS page cache absorbing most of those threads).
    on_complete:
        Callback ``(request, feedback, service_time)`` invoked when a request
        finishes service.
    rng:
        Random generator.
    """

    def __init__(
        self,
        loop: EventLoop,
        node_id: Hashable,
        storage: StorageEngine,
        concurrency: int = 8,
        on_complete: Callable[[Request, ServerFeedback, float], None] | None = None,
        feedback_alpha: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.loop = loop
        self.node_id = node_id
        self.storage = storage
        self.concurrency = int(concurrency)
        self.on_complete = on_complete
        self.rng = rng or np.random.default_rng()

        self._queue: deque[Request] = deque()
        self._in_service = 0
        self._gc_paused = False
        self._slowdown = 1.0
        self._service_time_ewma = EWMA(feedback_alpha, initial=1.0)

        self.requests_received = 0
        self.requests_completed = 0
        self.reads_completed = 0
        self.writes_completed = 0
        self.busy_time_ms = 0.0
        self.max_queue_length = 0
        self.gc_pauses = 0

    # ------------------------------------------------------------- properties
    @property
    def queue_length(self) -> int:
        """Requests waiting for a worker (excludes in-service)."""
        return len(self._queue)

    @property
    def pending_requests(self) -> int:
        """Waiting plus in-service requests (the queue-size feedback)."""
        return len(self._queue) + self._in_service

    @property
    def in_service(self) -> int:
        """Requests currently being serviced."""
        return self._in_service

    @property
    def gc_paused(self) -> bool:
        """Whether a stop-the-world pause is in progress."""
        return self._gc_paused

    @property
    def smoothed_service_time(self) -> float:
        """EWMA of recent service times (ms) — the 1/μ feedback."""
        return self._service_time_ewma.value

    @property
    def iowait(self) -> float:
        """The node's current iowait (delegated to the storage engine)."""
        return self.storage.iowait

    @property
    def slowdown(self) -> float:
        """The currently applied scripted slowdown factor (1.0 = none)."""
        return self._slowdown

    @property
    def current_service_time_ms(self) -> float:
        """An oracle view of the node's expected service time right now."""
        base = self.smoothed_service_time * self._slowdown
        if self.storage.compacting:
            base *= self.storage.disk.profile.compaction_read_factor
        if self._gc_paused:
            base *= 10.0
        return max(base, 1e-3)

    # ----------------------------------------------------------- scripted slowdown
    def set_slowdown(self, factor: float) -> None:
        """Multiply all service times by ``factor`` (tc-style latency inflation).

        Used by the Figure 13 experiment, which artificially inflates a
        tracked node's latencies three times during a run.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        self._slowdown = float(factor)

    def clear_slowdown(self) -> None:
        """Remove any scripted slowdown."""
        self._slowdown = 1.0

    # --------------------------------------------------------------- GC pauses
    def begin_gc_pause(self) -> None:
        """Stall the read stage (newly queued requests wait)."""
        self._gc_paused = True
        self.gc_pauses += 1

    def end_gc_pause(self) -> None:
        """Resume the read stage and drain whatever queued up."""
        self._gc_paused = False
        self._try_start_service()

    # --------------------------------------------------------------- compaction
    def begin_compaction(self) -> None:
        """Forward a compaction start to the storage engine."""
        self.storage.begin_compaction()

    def end_compaction(self) -> None:
        """Forward a compaction end to the storage engine."""
        self.storage.end_compaction()

    # ------------------------------------------------------------ request path
    def enqueue(self, request: Request) -> None:
        """Accept a request arriving at this node."""
        self.requests_received += 1
        self._queue.append(request)
        self.max_queue_length = max(self.max_queue_length, self.pending_requests)
        self._try_start_service()

    def _try_start_service(self) -> None:
        while not self._gc_paused and self._in_service < self.concurrency and self._queue:
            request = self._queue.popleft()
            self._in_service += 1
            request.started_service_at = self.loop.now
            service_time = self._draw_service_time(request)
            request.service_time = service_time
            self.loop.schedule(service_time, self._finish_service, request, service_time)

    def _draw_service_time(self, request: Request) -> float:
        if request.kind == RequestKind.WRITE:
            base = self.storage.write_service_time(record_size=request.record_size)
        else:
            base = self.storage.read_service_time(
                concurrent_reads=self._in_service - 1, record_size=request.record_size
            )
        return base * self._slowdown

    def _finish_service(self, request: Request, service_time: float) -> None:
        self._in_service -= 1
        self.requests_completed += 1
        if request.kind == RequestKind.WRITE:
            self.writes_completed += 1
        else:
            self.reads_completed += 1
        self.busy_time_ms += service_time
        self._service_time_ewma.update(service_time)
        feedback = ServerFeedback(
            queue_size=self.pending_requests,
            service_time=max(self.smoothed_service_time, 1e-3),
            server_id=self.node_id,
        )
        self._try_start_service()
        if self.on_complete is not None:
            self.on_complete(request, feedback, service_time)

    # ------------------------------------------------------------ observation
    def stats(self) -> dict:
        """Per-node counters for reporting."""
        return {
            "node_id": self.node_id,
            "received": self.requests_received,
            "completed": self.requests_completed,
            "reads": self.reads_completed,
            "writes": self.writes_completed,
            "pending": self.pending_requests,
            "max_queue_length": self.max_queue_length,
            "gc_pauses": self.gc_pauses,
            "storage": self.storage.stats(),
        }
