"""Gossiped node health — the iowait signal Dynamic Snitching consumes.

Cassandra nodes gossip one-second averages of their ``iowait`` so that peers
can avoid nodes that are busy compacting (§2.3).  The model here is a shared
bus: every node periodically publishes its current iowait fraction and every
coordinator reads the latest published value when recomputing snitch scores.
The propagation delay (gossip interval) is exactly what makes the signal
stale and over-weighted — the weakness the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..simulator.engine import EventLoop

__all__ = ["GossipEntry", "GossipService"]


@dataclass(slots=True)
class GossipEntry:
    """The latest gossiped health record for one node."""

    iowait: float = 0.0
    published_at: float = -float("inf")
    updates: int = 0


class GossipService:
    """A cluster-wide gossip bus for iowait averages.

    Parameters
    ----------
    loop:
        The event loop (used for the periodic publish timers).
    interval_ms:
        How often each node publishes (Cassandra gossips every second).
    """

    def __init__(self, loop: EventLoop, interval_ms: float = 1000.0) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.loop = loop
        self.interval_ms = float(interval_ms)
        self._entries: dict[Hashable, GossipEntry] = {}
        self._sources: dict[Hashable, Callable[[], float]] = {}
        self.total_publishes = 0
        self._started = False

    # ------------------------------------------------------------ registration
    def register(self, node_id: Hashable, iowait_source: Callable[[], float]) -> None:
        """Register a node with a callable returning its current iowait."""
        self._sources[node_id] = iowait_source
        self._entries.setdefault(node_id, GossipEntry())

    def start(self) -> None:
        """Begin the periodic publish cycle for every registered node."""
        if self._started:
            return
        self._started = True
        self._publish_all()

    # ---------------------------------------------------------------- publish
    def _publish_all(self) -> None:
        for node_id in self._sources:
            self.publish(node_id)
        self.loop.schedule(self.interval_ms, self._publish_all)

    def publish(self, node_id: Hashable, iowait: float | None = None) -> None:
        """Publish a node's iowait immediately (outside the periodic cycle)."""
        if iowait is None:
            source = self._sources.get(node_id)
            iowait = float(source()) if source is not None else 0.0
        iowait = min(max(float(iowait), 0.0), 1.0)
        entry = self._entries.setdefault(node_id, GossipEntry())
        entry.iowait = iowait
        entry.published_at = self.loop.now
        entry.updates += 1
        self.total_publishes += 1

    # ------------------------------------------------------------------- reads
    def latest_iowait(self, node_id: Hashable) -> float:
        """The most recently gossiped iowait for a node (0 when unknown)."""
        entry = self._entries.get(node_id)
        return 0.0 if entry is None else entry.iowait

    def staleness_ms(self, node_id: Hashable) -> float:
        """How old the latest gossip entry for a node is."""
        entry = self._entries.get(node_id)
        if entry is None or entry.published_at == -float("inf"):
            return float("inf")
        return self.loop.now - entry.published_at

    def snapshot(self) -> dict[Hashable, float]:
        """Mapping of node id → latest gossiped iowait."""
        return {node_id: entry.iowait for node_id, entry in self._entries.items()}
