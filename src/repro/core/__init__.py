"""The C3 core: replica ranking, rate control, backpressure, and scheduling.

This subpackage contains the paper's primary contribution, decoupled from any
simulation substrate so it can be unit-tested and reused directly.
"""

from .backpressure import BacklogEntry, BacklogQueue, BackpressureQueues
from .config import C3Config
from .cubic import cubic_inflection_ms, gamma_for_saddle
from .ewma import EWMA, TimeDecayedEWMA
from .feedback import ServerFeedback
from .rate_control import (
    CubicRateController,
    PerServerRateControl,
    RateLimiter,
    ReceiveRateTracker,
    cubic_rate,
)
from .scheduler import C3Scheduler, ScheduleDecision
from .scoring import ReplicaScorer, ServerStats, cubic_score

__all__ = [
    "BacklogEntry",
    "BacklogQueue",
    "BackpressureQueues",
    "C3Config",
    "C3Scheduler",
    "CubicRateController",
    "EWMA",
    "PerServerRateControl",
    "RateLimiter",
    "ReceiveRateTracker",
    "ReplicaScorer",
    "ScheduleDecision",
    "ServerFeedback",
    "ServerStats",
    "TimeDecayedEWMA",
    "cubic_inflection_ms",
    "cubic_rate",
    "cubic_score",
    "gamma_for_saddle",
]
