"""The C3 replica-selection scheduler (Algorithms 1 and 2, §3.3).

:class:`C3Scheduler` combines the three core mechanisms:

* replica ranking via :class:`~repro.core.scoring.ReplicaScorer`;
* per-server rate limiting and CUBIC adaptation via
  :class:`~repro.core.rate_control.PerServerRateControl`;
* per-replica-group backpressure via
  :class:`~repro.core.backpressure.BackpressureQueues`.

The scheduler is transport-agnostic: a caller (the flat simulator's client,
the cluster substrate's coordinator, or a real client library) submits
requests with explicit timestamps and receives either the chosen server id or
a "backpressured" outcome, and later reports responses with the piggy-backed
feedback.  All time values are milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from .backpressure import BackpressureQueues, BacklogEntry
from .config import C3Config
from .feedback import ServerFeedback
from .rate_control import PerServerRateControl
from .scoring import ReplicaScorer

__all__ = ["ScheduleDecision", "C3Scheduler"]


@dataclass(frozen=True, slots=True)
class ScheduleDecision:
    """Result of submitting one request to the scheduler.

    Attributes
    ----------
    server_id:
        The chosen server, or ``None`` when the request was backpressured.
    backpressured:
        Whether the request is waiting in a backlog queue.
    ranking:
        The scored ordering of the replica group at decision time; useful for
        tracing and tests.
    retry_after_ms:
        When backpressured, a hint of how long until a permit frees up.
    """

    server_id: Hashable | None
    backpressured: bool
    ranking: tuple
    retry_after_ms: float = 0.0

    @property
    def sent(self) -> bool:
        """True when a server was selected for immediate dispatch."""
        return self.server_id is not None


class C3Scheduler:
    """Client-side C3: ranking + rate control + backpressure.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.C3Config` to operate under.
    record_rate_history:
        When True, every rate increase/decrease is recorded (used to
        regenerate the Figure 13 trace).
    """

    def __init__(self, config: C3Config | None = None, record_rate_history: bool = False) -> None:
        self.config = config or C3Config()
        self.scorer = ReplicaScorer(self.config)
        self.rate_control = PerServerRateControl(self.config, record_history=record_rate_history)
        self.backlog = BackpressureQueues()
        self.requests_submitted = 0
        self.requests_sent = 0
        self.requests_backpressured = 0
        self.responses_received = 0

    # -------------------------------------------------------------- send path
    def submit(
        self,
        request: object,
        replica_group: Sequence[Hashable],
        now: float,
    ) -> ScheduleDecision:
        """Algorithm 1: pick a replica for ``request`` or apply backpressure.

        The replica group is ranked by the cubic score; the first replica
        whose rate limiter admits the request receives it.  When no replica is
        within its rate the request is parked in the group's backlog queue
        (only if rate control is enabled — otherwise the best-ranked replica
        is always used).
        """
        group = tuple(replica_group)
        if not group:
            raise ValueError("replica_group must not be empty")
        self.requests_submitted += 1
        ranking = tuple(self.scorer.rank(group))

        if not self.config.rate_control_enabled:
            chosen = ranking[0]
            self.scorer.on_send(chosen, now)
            self.requests_sent += 1
            return ScheduleDecision(server_id=chosen, backpressured=False, ranking=ranking)

        for server_id in ranking:
            if self.rate_control.try_acquire(server_id, now):
                self.scorer.on_send(server_id, now)
                self.requests_sent += 1
                return ScheduleDecision(server_id=server_id, backpressured=False, ranking=ranking)

        # Backpressure: every candidate replica exceeded its rate.
        self.backlog.enqueue(request, group, now)
        self.requests_backpressured += 1
        retry_after = self.rate_control.earliest_availability(group, now)
        return ScheduleDecision(
            server_id=None,
            backpressured=True,
            ranking=ranking,
            retry_after_ms=retry_after,
        )

    # ----------------------------------------------------------- receive path
    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float,
    ) -> list[tuple[BacklogEntry, Hashable]]:
        """Algorithm 2: record a response and release any unblocked backlog.

        Returns the backlog entries (paired with their chosen servers) that
        became dispatchable as a result of this response; the caller is
        responsible for actually transmitting them.
        """
        self.responses_received += 1
        self.scorer.on_response(server_id, feedback, response_time, now)
        if self.config.rate_control_enabled:
            self.rate_control.on_response(server_id, now)
            return self.drain_backlog(now)
        return []

    def on_timeout(self, server_id: Hashable, now: float, penalty_ms: float | None = None) -> None:
        """Record a request that will never complete (lost response)."""
        self.scorer.on_timeout(server_id, penalty_ms)

    # ------------------------------------------------------------- backlog ops
    def drain_backlog(
        self, now: float, max_requests: int | None = None
    ) -> list[tuple[BacklogEntry, Hashable]]:
        """Release backlogged requests whose groups now have available permits.

        Each released entry has already had its send accounted (permit
        consumed, outstanding count incremented); the caller just dispatches.
        """
        if not self.config.rate_control_enabled:
            return []

        def can_place(entry: BacklogEntry, at: float) -> Hashable | None:
            ranking = self.scorer.rank(entry.replica_group)
            for server_id in ranking:
                if self.rate_control.try_acquire(server_id, at):
                    self.scorer.on_send(server_id, at)
                    self.requests_sent += 1
                    return server_id
            return None

        return self.backlog.drain_ready(now, can_place, max_requests=max_requests)

    def pending_backlog(self) -> int:
        """Number of requests currently held by backpressure."""
        return self.backlog.pending()

    def next_backlog_retry_ms(self, now: float) -> float | None:
        """Earliest wait until any backlogged group may obtain a permit.

        Returns ``None`` when no requests are backlogged.
        """
        queues = self.backlog.nonempty_queues()
        if not queues:
            return None
        waits = [
            self.rate_control.earliest_availability(tuple(q.group_key), now) for q in queues
        ]
        return min(waits)

    # ------------------------------------------------------------- observation
    def sending_rates(self) -> dict[Hashable, float]:
        """Current per-server sending rates (requests per δ window)."""
        return self.rate_control.rates()

    def stats(self) -> dict:
        """Aggregate scheduler statistics for reporting and tests."""
        return {
            "submitted": self.requests_submitted,
            "sent": self.requests_sent,
            "backpressured": self.requests_backpressured,
            "responses": self.responses_received,
            "pending_backlog": self.pending_backlog(),
            "backlog": self.backlog.stats(),
            "scorer": self.scorer.counters.as_dict(),
        }
